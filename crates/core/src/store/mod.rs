//! Versioned on-disk **analysis store** — the persistence layer between the
//! batch pipeline and the resident query daemon.
//!
//! A store is a directory of `*.store` files, one (or, for incrementally
//! ingested runs, several partial) slice(s) per year. Each file carries the
//! same envelope as the PR 5 checkpoints — `magic | version | payload len |
//! FxHash-64 checksum | payload` — with its own magic (`SYNSTORE`) and its
//! own version counter, and is written atomically (temp → fsync → rename) so
//! a crash mid-write can never destroy a previous slice.
//!
//! The payload is two sections:
//!
//! 1. an **index** (year, window, totals, sorted port list, sorted source
//!    list, campaign count) that can be read without decoding the body, and
//! 2. the full [`YearAnalysis`] **body**, every map serialized in sorted key
//!    order so encoding is deterministic: encode → decode → encode is
//!    byte-identical, which is what the equivalence suites lean on.
//!
//! On the read side, [`StoreImage`] is the compact in-memory image the
//! `synscan-serve` daemon holds resident: all slices loaded, same-year
//! partials recombined through [`YearAnalysis::merge_partials`], years
//! ascending. [`ImageCell`] publishes an image to N reader threads with an
//! `Arc`-swap-style protocol: readers pay one atomic load per query in the
//! steady state and only touch a lock when the installed generation has
//! actually changed; a single writer installs reloaded images.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::fs;
use std::hash::Hasher;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use synscan_scanners::traits::ToolKind;

use crate::analysis::collect::{WeekCell, YearAnalysis};
use crate::campaign::{Campaign, NoiseStats};
use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use crate::fasthash::FxHasher;

pub mod query;

/// Magic prefix of every analysis-store slice file.
pub const STORE_MAGIC: [u8; 8] = *b"SYNSTORE";

/// Store format **major** version: bumped on incompatible layout changes.
/// Readers reject any other major with a typed error instead of misparsing.
pub const STORE_FORMAT_MAJOR: u16 = 1;

/// Store format **minor** version: bumped on backward-compatible additions
/// (new sections appended to the body). Readers accept any minor of their
/// major — sections introduced after their own minor are tolerated as
/// trailing bytes, so a slice written by a *newer* minor still loads.
/// Minor 1 appended the presence-tagged heavy-hitter sketch section.
pub const STORE_FORMAT_MINOR: u16 = 1;

/// The packed version word written to the envelope: major in the low 16
/// bits, minor in the high 16 bits. The pre-minor era wrote a bare `1`,
/// which under this packing reads back naturally as (major 1, minor 0).
pub const STORE_VERSION: u32 = (STORE_FORMAT_MAJOR as u32) | ((STORE_FORMAT_MINOR as u32) << 16);

/// Split an envelope version word into `(major, minor)`.
fn split_version(word: u32) -> (u16, u16) {
    ((word & 0xffff) as u16, (word >> 16) as u16)
}

/// Fixed envelope prefix: magic (8) + version (4) + payload len (8) +
/// checksum (8).
const ENVELOPE_LEN: usize = 28;

/// Everything that can go wrong writing, reading, or decoding a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem-level failure (path context + OS error in the message).
    Io(String),
    /// The file does not start with [`STORE_MAGIC`].
    BadMagic,
    /// The file's format major version (low 16 bits of the carried word) is
    /// not [`STORE_FORMAT_MAJOR`].
    UnsupportedVersion(u32),
    /// The payload hash does not match the stored checksum.
    ChecksumMismatch,
    /// The file ended before the announced payload length.
    Truncated,
    /// Structurally invalid slice contents.
    Corrupt(String),
    /// A year was requested that no slice in the store covers.
    MissingYear(u16),
    /// The store directory holds no slices at all.
    Empty,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "store I/O error: {msg}"),
            StoreError::BadMagic => write!(f, "not an analysis store file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                let (major, minor) = split_version(*v);
                write!(
                    f,
                    "unsupported store version {major}.{minor} (reader is \
                     {STORE_FORMAT_MAJOR}.{STORE_FORMAT_MINOR})"
                )
            }
            StoreError::ChecksumMismatch => write!(f, "store checksum mismatch"),
            StoreError::Truncated => write!(f, "store file truncated"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store slice: {msg}"),
            StoreError::MissingYear(y) => write!(f, "no store slice covers year {y}"),
            StoreError::Empty => write!(f, "store directory holds no slices"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CheckpointError> for StoreError {
    fn from(err: CheckpointError) -> Self {
        match err {
            CheckpointError::Truncated => StoreError::Truncated,
            other => StoreError::Corrupt(other.to_string()),
        }
    }
}

/// FxHash of a payload — the same seedless, process-independent integrity
/// checksum the checkpoint envelope uses.
fn payload_checksum(payload: &[u8]) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write(payload);
    hasher.finish()
}

/// Wrap a payload in the `SYNSTORE` envelope.
fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_LEN + payload.len());
    out.extend_from_slice(&STORE_MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload_checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verify the envelope and return the writer's minor version plus the
/// payload, or a typed error. Never panics on hostile bytes.
fn unseal(bytes: &[u8]) -> Result<(u16, &[u8]), StoreError> {
    if bytes.len() < ENVELOPE_LEN {
        return Err(StoreError::Truncated);
    }
    if bytes[..8] != STORE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    let (major, minor) = split_version(version);
    if major != STORE_FORMAT_MAJOR {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8-byte slice"));
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8-byte slice"));
    let payload = &bytes[ENVELOPE_LEN..];
    if payload.len() as u64 != len {
        return Err(StoreError::Truncated);
    }
    if payload_checksum(payload) != checksum {
        return Err(StoreError::ChecksumMismatch);
    }
    Ok((minor, payload))
}

/// The decoded index section of one slice file — enough to route queries
/// and group partials without decoding the (much larger) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceMeta {
    /// Calendar year the slice covers.
    pub year: u16,
    /// Telescope size the campaign thresholds were computed against.
    pub monitored: u64,
    /// First admitted timestamp (µs).
    pub start_micros: u64,
    /// Last admitted timestamp (µs).
    pub end_micros: u64,
    /// Admitted packets in the slice.
    pub total_packets: u64,
    /// Distinct scanning sources in the slice.
    pub distinct_sources: u64,
    /// Campaigns identified in the slice.
    pub campaigns: u64,
    /// Every targeted port, ascending.
    pub ports: Vec<u16>,
    /// Every scanning source (host-order IPv4), ascending.
    pub sources: Vec<u32>,
    /// Format major version the slice file was written with (from the
    /// envelope, not the payload; [`read_meta`] fills it).
    pub format_major: u16,
    /// Format minor version the slice file was written with.
    pub format_minor: u16,
    /// Whole slice-file size in bytes, envelope included.
    pub file_bytes: u64,
}

fn encode_meta(w: &mut SnapWriter, analysis: &YearAnalysis) {
    w.put_u16(analysis.year);
    w.put_u64(analysis.monitored);
    w.put_u64(analysis.start_micros);
    w.put_u64(analysis.end_micros);
    w.put_u64(analysis.total_packets);
    w.put_u64(analysis.distinct_sources);
    w.put_u64(analysis.campaigns.len() as u64);
    // port_packets is a BTreeMap: keys come out ascending.
    w.put_u64(analysis.port_packets.len() as u64);
    for port in analysis.port_packets.keys() {
        w.put_u16(*port);
    }
    let mut sources: Vec<u32> = analysis.source_packets.keys().copied().collect();
    sources.sort_unstable();
    w.put_u64(sources.len() as u64);
    for src in sources {
        w.put_u32(src);
    }
}

fn decode_meta(r: &mut SnapReader<'_>) -> Result<SliceMeta, StoreError> {
    let year = r.take_u16()?;
    let monitored = r.take_u64()?;
    let start_micros = r.take_u64()?;
    let end_micros = r.take_u64()?;
    let total_packets = r.take_u64()?;
    let distinct_sources = r.take_u64()?;
    let campaigns = r.take_u64()?;
    let port_count = r.take_len(2)?;
    let mut ports = Vec::with_capacity(port_count);
    for _ in 0..port_count {
        ports.push(r.take_u16()?);
    }
    let source_count = r.take_len(4)?;
    let mut sources = Vec::with_capacity(source_count);
    for _ in 0..source_count {
        sources.push(r.take_u32()?);
    }
    Ok(SliceMeta {
        year,
        monitored,
        start_micros,
        end_micros,
        total_packets,
        distinct_sources,
        campaigns,
        ports,
        sources,
        // Envelope-level facts; the caller (read_meta) fills them in.
        format_major: 0,
        format_minor: 0,
        file_bytes: 0,
    })
}

/// Serialize a [`YearAnalysis`] to complete slice-file bytes (envelope
/// included). Every map is emitted in sorted key order, so the encoding is
/// a pure function of the analysis value: equal analyses produce
/// byte-identical files regardless of hash-map iteration order or which
/// pipeline mode produced them.
pub fn encode_year(analysis: &YearAnalysis) -> Vec<u8> {
    let mut w = SnapWriter::new();
    encode_meta(&mut w, analysis);

    w.put_u64(analysis.port_packets.len() as u64);
    for (&port, &packets) in &analysis.port_packets {
        w.put_u16(port);
        w.put_u64(packets);
    }
    w.put_u64(analysis.port_sources.len() as u64);
    for (&port, &sources) in &analysis.port_sources {
        w.put_u16(port);
        w.put_u64(sources);
    }

    let mut source_ports: Vec<(u32, u32)> = analysis
        .source_port_counts
        .iter()
        .map(|(&s, &n)| (s, n))
        .collect();
    source_ports.sort_unstable();
    w.put_u64(source_ports.len() as u64);
    for (src, ports) in source_ports {
        w.put_u32(src);
        w.put_u32(ports);
    }

    let mut source_packets: Vec<(u32, u64)> = analysis
        .source_packets
        .iter()
        .map(|(&s, &n)| (s, n))
        .collect();
    source_packets.sort_unstable();
    w.put_u64(source_packets.len() as u64);
    for (src, packets) in source_packets {
        w.put_u32(src);
        w.put_u64(packets);
    }

    let mut port_sets: Vec<(u16, Vec<u32>)> = analysis
        .port_source_sets
        .iter()
        .map(|(&port, set)| {
            let mut members: Vec<u32> = set.iter().copied().collect();
            members.sort_unstable();
            (port, members)
        })
        .collect();
    port_sets.sort_unstable_by_key(|(port, _)| *port);
    w.put_u64(port_sets.len() as u64);
    for (port, members) in port_sets {
        w.put_u16(port);
        w.put_u64(members.len() as u64);
        for src in members {
            w.put_u32(src);
        }
    }

    let mut day_ports: Vec<(u32, u16, u64)> = analysis
        .day_port_packets
        .iter()
        .map(|(&(day, port), &n)| (day, port, n))
        .collect();
    day_ports.sort_unstable();
    w.put_u64(day_ports.len() as u64);
    for (day, port, packets) in day_ports {
        w.put_u32(day);
        w.put_u16(port);
        w.put_u64(packets);
    }

    let mut tool_ports: Vec<(Option<ToolKind>, u16, u64)> = analysis
        .tool_port_packets
        .iter()
        .map(|(&(tool, port), &n)| (tool, port, n))
        .collect();
    tool_ports.sort_unstable();
    w.put_u64(tool_ports.len() as u64);
    for (tool, port, packets) in tool_ports {
        match tool {
            Some(t) => {
                w.put_u8(1);
                w.put_tool(t);
            }
            None => w.put_u8(0),
        }
        w.put_u16(port);
        w.put_u64(packets);
    }

    let mut weeks: Vec<(u32, u16, WeekCell)> = analysis
        .week_blocks
        .iter()
        .map(|(&(week, block), cell)| (week, block, cell.clone()))
        .collect();
    weeks.sort_unstable_by_key(|(week, block, _)| (*week, *block));
    w.put_u64(weeks.len() as u64);
    for (week, block, cell) in weeks {
        w.put_u32(week);
        w.put_u16(block);
        w.put_u64(cell.sources);
        w.put_u64(cell.packets);
        w.put_u64(cell.campaigns);
    }

    w.put_u64(analysis.campaigns.len() as u64);
    for campaign in &analysis.campaigns {
        campaign.snapshot_to(&mut w);
    }
    analysis.noise.snapshot_to(&mut w);

    // Minor-1 section: the heavy-hitter sketch state, presence-tagged.
    // Appended after everything a minor-0 reader knows, so older sections
    // keep their offsets.
    match &analysis.heavy {
        None => w.put_u8(0),
        Some(heavy) => {
            w.put_u8(1);
            heavy.snapshot_to(&mut w);
        }
    }

    seal(&w.into_bytes())
}

/// Read just the index section of slice-file bytes, plus the envelope-level
/// facts (format version, file size) the `stats` query reports.
pub fn read_meta(bytes: &[u8]) -> Result<SliceMeta, StoreError> {
    let (minor, payload) = unseal(bytes)?;
    let mut r = SnapReader::new(payload);
    let mut meta = decode_meta(&mut r)?;
    meta.format_major = STORE_FORMAT_MAJOR;
    meta.format_minor = minor;
    meta.file_bytes = bytes.len() as u64;
    Ok(meta)
}

/// Decode complete slice-file bytes back into a [`YearAnalysis`].
///
/// Corrupted, truncated, or wrong-version input yields a typed
/// [`StoreError`]; this function never panics on hostile bytes.
pub fn decode_year(bytes: &[u8]) -> Result<YearAnalysis, StoreError> {
    let (minor, payload) = unseal(bytes)?;
    let mut r = SnapReader::new(payload);
    let meta = decode_meta(&mut r)?;

    let port_packet_count = r.take_len(10)?;
    let mut port_packets = BTreeMap::new();
    for _ in 0..port_packet_count {
        let port = r.take_u16()?;
        let packets = r.take_u64()?;
        port_packets.insert(port, packets);
    }
    let port_source_count = r.take_len(10)?;
    let mut port_sources = BTreeMap::new();
    for _ in 0..port_source_count {
        let port = r.take_u16()?;
        let sources = r.take_u64()?;
        port_sources.insert(port, sources);
    }

    let source_port_len = r.take_len(8)?;
    let mut source_port_counts = HashMap::with_capacity(source_port_len);
    for _ in 0..source_port_len {
        let src = r.take_u32()?;
        let ports = r.take_u32()?;
        source_port_counts.insert(src, ports);
    }
    let source_packet_len = r.take_len(12)?;
    let mut source_packets = HashMap::with_capacity(source_packet_len);
    for _ in 0..source_packet_len {
        let src = r.take_u32()?;
        let packets = r.take_u64()?;
        source_packets.insert(src, packets);
    }

    let set_count = r.take_len(10)?;
    let mut port_source_sets: HashMap<u16, HashSet<u32>> = HashMap::with_capacity(set_count);
    for _ in 0..set_count {
        let port = r.take_u16()?;
        let members = r.take_len(4)?;
        let mut set = HashSet::with_capacity(members);
        for _ in 0..members {
            set.insert(r.take_u32()?);
        }
        port_source_sets.insert(port, set);
    }

    let day_count = r.take_len(14)?;
    let mut day_port_packets = HashMap::with_capacity(day_count);
    for _ in 0..day_count {
        let day = r.take_u32()?;
        let port = r.take_u16()?;
        let packets = r.take_u64()?;
        day_port_packets.insert((day, port), packets);
    }

    let tool_count = r.take_len(11)?;
    let mut tool_port_packets = HashMap::with_capacity(tool_count);
    for _ in 0..tool_count {
        let tool = match r.take_u8()? {
            0 => None,
            1 => Some(r.take_tool()?),
            t => return Err(StoreError::Corrupt(format!("tool tag {t}"))),
        };
        let port = r.take_u16()?;
        let packets = r.take_u64()?;
        tool_port_packets.insert((tool, port), packets);
    }

    let week_count = r.take_len(30)?;
    let mut week_blocks = HashMap::with_capacity(week_count);
    for _ in 0..week_count {
        let week = r.take_u32()?;
        let block = r.take_u16()?;
        let cell = WeekCell {
            sources: r.take_u64()?,
            packets: r.take_u64()?,
            campaigns: r.take_u64()?,
        };
        week_blocks.insert((week, block), cell);
    }

    let campaign_count = r.take_len(37)?;
    if campaign_count as u64 != meta.campaigns {
        return Err(StoreError::Corrupt(format!(
            "body carries {campaign_count} campaigns, index announced {}",
            meta.campaigns
        )));
    }
    let mut campaigns = Vec::with_capacity(campaign_count);
    for _ in 0..campaign_count {
        campaigns.push(Campaign::restore_from(&mut r)?);
    }
    let noise = NoiseStats::restore_from(&mut r)?;

    // Minor-1 section: heavy-hitter sketch state. A minor-0 slice simply
    // does not have it.
    let heavy = if minor >= 1 {
        match r.take_u8()? {
            0 => None,
            1 => Some(crate::sketch::HeavyHitters::restore_from(&mut r)?),
            t => return Err(StoreError::Corrupt(format!("heavy tag {t}"))),
        }
    } else {
        None
    };

    // A slice written by a *newer* minor of our major may append sections
    // we do not know; tolerate the trailing bytes (the checksum already
    // vouched for them). For our own minor and older, trailing bytes mean
    // corruption.
    if minor <= STORE_FORMAT_MINOR && r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after slice body",
            r.remaining()
        )));
    }

    Ok(YearAnalysis {
        year: meta.year,
        start_micros: meta.start_micros,
        end_micros: meta.end_micros,
        total_packets: meta.total_packets,
        distinct_sources: meta.distinct_sources,
        port_packets,
        port_sources,
        source_port_counts,
        source_packets,
        port_source_sets,
        day_port_packets,
        tool_port_packets,
        week_blocks,
        campaigns,
        noise,
        monitored: meta.monitored,
        heavy,
    })
}

/// A handle on a store directory. Creating the handle creates the directory
/// (it is valid for a store to start empty and be populated run by run).
#[derive(Debug, Clone)]
pub struct AnalysisStore {
    dir: PathBuf,
}

impl AnalysisStore {
    /// Open (creating if needed) the store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| StoreError::Io(format!("create dir {}: {e}", dir.display())))?;
        Ok(Self { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the full (promoted) slice for `year`.
    pub fn slice_path(&self, year: u16) -> PathBuf {
        self.dir.join(format!("year-{year}.store"))
    }

    /// Path of a partial slice for `year` tagged `label` (e.g. a shard or
    /// worker id) — the incremental-ingest unit merged at load time.
    pub fn partial_path(&self, year: u16, label: &str) -> PathBuf {
        self.dir.join(format!("year-{year}.part-{label}.store"))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let io_err = |what: &str, p: &Path, e: std::io::Error| {
            StoreError::Io(format!("{what} {}: {e}", p.display()))
        };
        let tmp = path.with_extension("store.tmp");
        {
            let mut file = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            file.write_all(bytes)
                .map_err(|e| io_err("write", &tmp, e))?;
            file.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
        }
        fs::rename(&tmp, path).map_err(|e| io_err("rename", &tmp, e))?;
        Ok(())
    }

    /// Atomically write the full slice for `analysis.year`, then retire any
    /// partial slices for the same year (the full slice supersedes them —
    /// keeping both would double-count at load time).
    pub fn write_year(&self, analysis: &YearAnalysis) -> Result<PathBuf, StoreError> {
        let path = self.slice_path(analysis.year);
        self.write_atomic(&path, &encode_year(analysis))?;
        let partial_prefix = format!("year-{}.part-", analysis.year);
        for file in self.slice_files()? {
            let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with(&partial_prefix) {
                fs::remove_file(&file)
                    .map_err(|e| StoreError::Io(format!("remove {}: {e}", file.display())))?;
            }
        }
        Ok(path)
    }

    /// Atomically write a partial slice (one shard / worker / ingest batch
    /// of a year). Same-year partials are recombined bit-identically at
    /// load time via [`YearAnalysis::merge_partials`].
    pub fn write_partial(
        &self,
        analysis: &YearAnalysis,
        label: &str,
    ) -> Result<PathBuf, StoreError> {
        if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            return Err(StoreError::Corrupt(format!(
                "partial label {label:?} must be non-empty alphanumeric/dash"
            )));
        }
        let path = self.partial_path(analysis.year, label);
        self.write_atomic(&path, &encode_year(analysis))?;
        Ok(path)
    }

    /// Every slice file currently in the store, sorted by file name.
    pub fn slice_files(&self) -> Result<Vec<PathBuf>, StoreError> {
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| StoreError::Io(format!("read dir {}: {e}", self.dir.display())))?;
        let mut files = Vec::new();
        for entry in entries {
            let entry =
                entry.map_err(|e| StoreError::Io(format!("scan {}: {e}", self.dir.display())))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("store") {
                files.push(path);
            }
        }
        files.sort();
        Ok(files)
    }

    /// Index every slice without decoding bodies: `(path, meta)` pairs in
    /// file-name order.
    pub fn index(&self) -> Result<Vec<(PathBuf, SliceMeta)>, StoreError> {
        let mut out = Vec::new();
        for path in self.slice_files()? {
            let bytes = fs::read(&path)
                .map_err(|e| StoreError::Io(format!("read {}: {e}", path.display())))?;
            let meta = read_meta(&bytes).map_err(|e| annotate_slice_error(e, &path))?;
            out.push((path, meta));
        }
        Ok(out)
    }

    /// Distinct years covered by the store, ascending.
    pub fn years(&self) -> Result<Vec<u16>, StoreError> {
        let mut years: Vec<u16> = self.index()?.into_iter().map(|(_, m)| m.year).collect();
        years.sort_unstable();
        years.dedup();
        Ok(years)
    }

    /// Load one year, merging same-year partial slices bit-identically.
    pub fn load_year(&self, year: u16) -> Result<YearAnalysis, StoreError> {
        let mut partials = Vec::new();
        for (path, meta) in self.index()? {
            if meta.year == year {
                let bytes = fs::read(&path)
                    .map_err(|e| StoreError::Io(format!("read {}: {e}", path.display())))?;
                partials.push(decode_year(&bytes).map_err(|e| annotate_slice_error(e, &path))?);
            }
        }
        match partials.len() {
            0 => Err(StoreError::MissingYear(year)),
            1 => Ok(partials.pop().expect("one partial")),
            _ => Ok(YearAnalysis::merge_partials(partials)),
        }
    }

    /// Load every year in the store, ascending, partials merged.
    pub fn load_all(&self) -> Result<Vec<YearAnalysis>, StoreError> {
        let mut by_year: BTreeMap<u16, Vec<YearAnalysis>> = BTreeMap::new();
        for (path, _) in self.index()? {
            let bytes = fs::read(&path)
                .map_err(|e| StoreError::Io(format!("read {}: {e}", path.display())))?;
            let analysis = decode_year(&bytes).map_err(|e| annotate_slice_error(e, &path))?;
            by_year.entry(analysis.year).or_default().push(analysis);
        }
        Ok(by_year
            .into_values()
            .map(|mut partials| {
                if partials.len() == 1 {
                    partials.pop().expect("one partial")
                } else {
                    YearAnalysis::merge_partials(partials)
                }
            })
            .collect())
    }
}

/// Attach the offending file path to a decode error's message.
fn annotate_slice_error(err: StoreError, path: &Path) -> StoreError {
    match err {
        StoreError::Corrupt(msg) => StoreError::Corrupt(format!("{}: {msg}", path.display())),
        other => other,
    }
}

/// Per-year slice accounting the `stats` query reports: how many files back
/// the year, their combined on-disk size, and the format version they were
/// written with (the newest minor among the year's files).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct YearSliceStat {
    /// Calendar year the slices cover.
    pub year: u16,
    /// Slice files (1 for a promoted year, more for unmerged partials).
    pub files: u64,
    /// Combined slice-file bytes, envelopes included.
    pub bytes: u64,
    /// Format major version of the year's slices.
    pub format_major: u16,
    /// Newest format minor among the year's slice files.
    pub format_minor: u16,
}

/// The read-mostly in-memory image the daemon serves from: every year in
/// the store, decoded and merged, ascending.
#[derive(Debug, Clone, Default)]
pub struct StoreImage {
    /// Monotonic install counter, assigned by [`ImageCell`] (0 = never
    /// installed).
    pub generation: u64,
    /// Number of slice files the image was built from.
    pub slice_files: usize,
    /// Per-year slice accounting (files, bytes, format version), ascending
    /// by year.
    pub slices: Vec<YearSliceStat>,
    /// Per-year analyses, ascending by year.
    pub years: Vec<YearAnalysis>,
}

impl StoreImage {
    /// An image with no years (a daemon may start over an empty store and
    /// be fed by later `reload`s).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build an image from everything currently in `store`.
    pub fn load(store: &AnalysisStore) -> Result<Self, StoreError> {
        let index = store.index()?;
        let slice_files = index.len();
        let mut by_year: BTreeMap<u16, YearSliceStat> = BTreeMap::new();
        for (_, meta) in &index {
            let stat = by_year.entry(meta.year).or_insert(YearSliceStat {
                year: meta.year,
                files: 0,
                bytes: 0,
                format_major: meta.format_major,
                format_minor: 0,
            });
            stat.files += 1;
            stat.bytes += meta.file_bytes;
            stat.format_minor = stat.format_minor.max(meta.format_minor);
        }
        let years = store.load_all()?;
        Ok(Self {
            generation: 0,
            slice_files,
            slices: by_year.into_values().collect(),
            years,
        })
    }

    /// The slice accounting for `year`, if present.
    pub fn slice_stat(&self, year: u16) -> Option<&YearSliceStat> {
        self.slices.iter().find(|s| s.year == year)
    }

    /// The analysis for `year`, if present.
    pub fn year(&self, year: u16) -> Option<&YearAnalysis> {
        self.years.iter().find(|a| a.year == year)
    }

    /// The years covered, ascending.
    pub fn year_list(&self) -> Vec<u16> {
        self.years.iter().map(|a| a.year).collect()
    }
}

/// Publication point between the daemon's single writer and its N reader
/// threads.
///
/// The protocol is `Arc`-swap in safe Rust: the current image lives in a
/// mutex-guarded `Arc` slot next to an atomic generation counter. Readers
/// hold an [`ImageReader`] that caches `(generation, Arc)`; per query they
/// do one `Acquire` load of the counter and touch the mutex only when the
/// counter moved — i.e. only on the (rare) reload, so the steady-state read
/// path takes zero locks. The writer clones nothing: it swaps the slot and
/// then bumps the counter with `Release`, so a reader that observes the new
/// generation is guaranteed to find the new image in the slot.
#[derive(Debug)]
pub struct ImageCell {
    generation: AtomicU64,
    slot: Mutex<Arc<StoreImage>>,
}

impl ImageCell {
    /// Create a cell publishing `image` as generation 1.
    pub fn new(mut image: StoreImage) -> Arc<Self> {
        image.generation = 1;
        Arc::new(Self {
            generation: AtomicU64::new(1),
            slot: Mutex::new(Arc::new(image)),
        })
    }

    /// Install a freshly loaded image, returning the generation it was
    /// published as. Writer-side only.
    pub fn install(&self, mut image: StoreImage) -> u64 {
        let mut slot = self.slot.lock().expect("image slot poisoned");
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        image.generation = generation;
        *slot = Arc::new(image);
        // Bump after the slot swap: a reader seeing the new generation must
        // find the new image.
        self.generation.store(generation, Ordering::Release);
        generation
    }

    /// The currently installed image (locks the slot; reader threads should
    /// go through [`ImageReader`] instead).
    pub fn current(&self) -> Arc<StoreImage> {
        self.slot.lock().expect("image slot poisoned").clone()
    }

    /// The current generation counter.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A per-thread cached reader handle.
    pub fn reader(self: &Arc<Self>) -> ImageReader {
        ImageReader {
            cached: self.current(),
            seen: self.generation(),
            cell: Arc::clone(self),
        }
    }
}

/// One reader thread's cached view of an [`ImageCell`] — see the cell docs
/// for the locking protocol.
#[derive(Debug)]
pub struct ImageReader {
    cell: Arc<ImageCell>,
    seen: u64,
    cached: Arc<StoreImage>,
}

impl ImageReader {
    /// The current image: one atomic load in the steady state, a slot
    /// refresh only when the writer installed a new generation.
    pub fn image(&mut self) -> &StoreImage {
        let current = self.cell.generation.load(Ordering::Acquire);
        if current != self.seen {
            self.cached = self.cell.current();
            self.seen = self.cached.generation;
        }
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::collect::YearCollector;
    use crate::campaign::CampaignConfig;
    use synscan_wire::{Ipv4Address, ProbeRecord, TcpFlags};

    fn record(src: u32, dst: u32, port: u16, ts: u64) -> ProbeRecord {
        ProbeRecord {
            ts_micros: ts,
            src_ip: Ipv4Address(src),
            dst_ip: Ipv4Address(dst),
            src_port: 40_000,
            dst_port: port,
            seq: 7,
            ip_id: 54_321,
            ttl: 55,
            flags: TcpFlags::SYN,
            window: 1024,
        }
    }

    fn analysis(year: u16) -> YearAnalysis {
        let cfg = CampaignConfig {
            min_distinct_dests: 5,
            min_rate_pps: 1.0,
            expiry_secs: 3600.0,
            monitored_addresses: 1 << 16,
        };
        let mut collector = YearCollector::new(year, cfg);
        for i in 0..40u32 {
            collector.offer(&record(10, 100 + i, 443, u64::from(i) * 250_000));
        }
        for i in 0..12u32 {
            collector.offer(&record(11, 200 + i, 22, u64::from(i) * 900_000 + 3));
        }
        collector.offer(&record(12, 300, 80, 5));
        collector.finish()
    }

    #[test]
    fn roundtrip_is_identity_and_deterministic() {
        let original = analysis(2019);
        let bytes = encode_year(&original);
        let decoded = decode_year(&bytes).expect("decodes");
        assert_eq!(decoded, original);
        // Deterministic: re-encoding the decoded value is byte-identical.
        assert_eq!(encode_year(&decoded), bytes);
    }

    #[test]
    fn meta_matches_body() {
        let original = analysis(2021);
        let bytes = encode_year(&original);
        let meta = read_meta(&bytes).expect("meta reads");
        assert_eq!(meta.year, 2021);
        assert_eq!(meta.total_packets, original.total_packets);
        assert_eq!(meta.distinct_sources, original.distinct_sources);
        assert_eq!(meta.campaigns, original.campaigns.len() as u64);
        assert_eq!(
            meta.ports,
            original.port_packets.keys().copied().collect::<Vec<_>>()
        );
        assert_eq!(meta.sources.len() as u64, original.distinct_sources);
    }

    #[test]
    fn corruption_yields_typed_errors_never_panics() {
        let bytes = encode_year(&analysis(2017));
        // Truncated at every prefix length: typed error, no panic.
        for cut in [0, 7, 8, 12, 20, 27, 28, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_year(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode_year(&bad), Err(StoreError::BadMagic));
        // Unsupported major version (byte 8 is the major's low byte).
        let mut bad = bytes.clone();
        bad[8] = 99;
        match decode_year(&bad) {
            Err(StoreError::UnsupportedVersion(word)) => {
                assert_eq!(split_version(word).0, 99);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // Flipped payload byte → checksum mismatch.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(decode_year(&bad), Err(StoreError::ChecksumMismatch));
    }

    /// Re-seal `payload` with an arbitrary (major, minor) version word.
    fn seal_as(payload: &[u8], major: u16, minor: u16) -> Vec<u8> {
        let mut bytes = seal(payload);
        let word = (major as u32) | ((minor as u32) << 16);
        bytes[8..12].copy_from_slice(&word.to_le_bytes());
        bytes
    }

    #[test]
    fn version_word_packs_major_low_minor_high() {
        assert_eq!(split_version(STORE_VERSION), (1, 1));
        // The pre-minor era wrote a bare 1: reads back as major 1, minor 0.
        assert_eq!(split_version(1), (1, 0));
    }

    #[test]
    fn legacy_minor_zero_slices_still_load() {
        // A minor-0 slice is today's encoding minus the heavy section.
        let original = analysis(2016);
        let sealed = encode_year(&original);
        let payload = &sealed[ENVELOPE_LEN..];
        assert_eq!(payload.last(), Some(&0u8), "heavy absent ⇒ tag byte 0");
        let legacy = seal_as(&payload[..payload.len() - 1], 1, 0);
        let decoded = decode_year(&legacy).expect("minor-0 slice loads");
        assert_eq!(decoded, original);
        let meta = read_meta(&legacy).expect("meta reads");
        assert_eq!((meta.format_major, meta.format_minor), (1, 0));
        assert_eq!(meta.file_bytes, legacy.len() as u64);
    }

    #[test]
    fn higher_minor_slices_load_with_trailing_sections_tolerated() {
        // A slice written by minor 2 of our major: today's body plus an
        // unknown appended section. It must load (the new section is
        // skipped), not error.
        let original = analysis(2022);
        let sealed = encode_year(&original);
        let mut payload = sealed[ENVELOPE_LEN..].to_vec();
        payload.extend_from_slice(b"future-section-bytes");
        let newer = seal_as(&payload, 1, STORE_FORMAT_MINOR + 1);
        let decoded = decode_year(&newer).expect("higher-minor slice loads");
        assert_eq!(decoded, original);
        // The same trailing bytes under our *own* minor are corruption.
        let same_minor = seal_as(&payload, 1, STORE_FORMAT_MINOR);
        assert!(matches!(
            decode_year(&same_minor),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn heavy_state_round_trips_through_the_slice() {
        use crate::sketch::HeavyHitterConfig;
        let cfg = CampaignConfig {
            min_distinct_dests: 5,
            min_rate_pps: 1.0,
            expiry_secs: 3600.0,
            monitored_addresses: 1 << 16,
        };
        let mut collector = YearCollector::new(2024, cfg);
        collector.enable_heavy_hitters(HeavyHitterConfig::with_k(8));
        for i in 0..60u32 {
            collector.offer(&record(10 + (i % 5), 100 + i, 443, u64::from(i) * 250_000));
        }
        let original = collector.finish();
        assert!(original.heavy.is_some());
        let bytes = encode_year(&original);
        let decoded = decode_year(&bytes).expect("decodes");
        assert_eq!(decoded, original);
        assert_eq!(encode_year(&decoded), bytes);
    }

    #[test]
    fn store_write_load_year() {
        let dir = std::env::temp_dir().join(format!("synstore-t1-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = AnalysisStore::open(&dir).expect("open");
        let original = analysis(2020);
        store.write_year(&original).expect("write");
        assert_eq!(store.years().expect("years"), vec![2020]);
        assert_eq!(store.load_year(2020).expect("load"), original);
        assert_eq!(store.load_year(2021), Err(StoreError::MissingYear(2021)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partials_merge_and_full_slice_supersedes() {
        let dir = std::env::temp_dir().join(format!("synstore-t2-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = AnalysisStore::open(&dir).expect("open");

        // Two disjoint-source partials of the same year.
        let cfg = CampaignConfig {
            min_distinct_dests: 5,
            min_rate_pps: 1.0,
            expiry_secs: 3600.0,
            monitored_addresses: 1 << 16,
        };
        let mut c1 = YearCollector::new(2018, cfg.clone());
        let mut c2 = YearCollector::new(2018, cfg);
        for i in 0..20u32 {
            c1.offer(&record(21, 400 + i, 443, u64::from(i) * 100_000));
            c2.offer(&record(22, 500 + i, 23, u64::from(i) * 100_000 + 1));
        }
        let p1 = c1.finish();
        let p2 = c2.finish();
        let merged = YearAnalysis::merge_partials(vec![p1.clone(), p2.clone()]);

        store.write_partial(&p1, "shard0").expect("p1");
        store.write_partial(&p2, "shard1").expect("p2");
        assert_eq!(store.slice_files().expect("files").len(), 2);
        assert_eq!(store.load_year(2018).expect("merged"), merged);

        // Promoting the full slice retires the partials.
        store.write_year(&merged).expect("promote");
        assert_eq!(store.slice_files().expect("files").len(), 1);
        assert_eq!(store.load_year(2018).expect("full"), merged);

        assert!(store.write_partial(&merged, "bad label").is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    fn tiny_cfg() -> CampaignConfig {
        CampaignConfig {
            min_distinct_dests: 5,
            min_rate_pps: 1.0,
            expiry_secs: 3600.0,
            monitored_addresses: 1 << 16,
        }
    }

    #[test]
    fn empty_partials_merge_as_identity() {
        // A shard that admitted nothing still writes a (valid, empty)
        // partial; loading the year must merge it away without disturbing
        // the busy partial's analysis.
        let dir = std::env::temp_dir().join(format!("synstore-t3-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = AnalysisStore::open(&dir).expect("open");

        let mut busy = YearCollector::with_origin(2019, tiny_cfg(), 7.0, 0);
        for i in 0..25u32 {
            busy.offer(&record(31, 700 + i, 443, u64::from(i) * 90_000));
        }
        let busy = busy.finish();
        let empty = YearCollector::with_origin(2019, tiny_cfg(), 7.0, 0).finish();
        assert_eq!(empty.total_packets, 0);

        store.write_partial(&busy, "shard0").expect("busy partial");
        store
            .write_partial(&empty, "shard1")
            .expect("empty partial");
        let loaded = store.load_year(2019).expect("merged");
        assert_eq!(
            loaded,
            YearAnalysis::merge_partials(vec![busy.clone(), empty])
        );
        assert_eq!(loaded.total_packets, busy.total_packets);
        assert_eq!(loaded.campaigns, busy.campaigns);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn many_duplicate_year_partials_merge_to_one_year() {
        // Several partials of the same year — more than the usual two, with
        // an empty one mixed in — must collapse into one merged analysis,
        // and `years()` must report the year exactly once.
        let dir = std::env::temp_dir().join(format!("synstore-t4-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = AnalysisStore::open(&dir).expect("open");

        let shard = |src: u32, n: u32| {
            let mut c = YearCollector::with_origin(2021, tiny_cfg(), 7.0, 0);
            for i in 0..n {
                c.offer(&record(src, 100 + i, 80, u64::from(i) * 120_000));
            }
            c.finish()
        };
        let parts = vec![
            shard(41, 15),
            shard(42, 10),
            shard(43, 20),
            YearCollector::with_origin(2021, tiny_cfg(), 7.0, 0).finish(),
        ];
        for (i, p) in parts.iter().enumerate() {
            store.write_partial(p, &format!("w{i}")).expect("partial");
        }
        assert_eq!(store.slice_files().expect("files").len(), 4);
        assert_eq!(store.years().expect("years"), vec![2021]);
        let loaded = store.load_year(2021).expect("merged");
        assert_eq!(loaded, YearAnalysis::merge_partials(parts));
        assert_eq!(loaded.total_packets, 45);
        assert_eq!(loaded.distinct_sources, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn higher_minor_partial_loads_through_the_store() {
        // A partial written by a future minor of our major (e.g. a newer
        // worker build) must load and merge, not error out the whole year.
        let dir = std::env::temp_dir().join(format!("synstore-t5-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = AnalysisStore::open(&dir).expect("open");

        let mut c = YearCollector::with_origin(2023, tiny_cfg(), 7.0, 0);
        for i in 0..30u32 {
            c.offer(&record(51, 100 + i, 22, u64::from(i) * 100_000));
        }
        let part = c.finish();
        store.write_partial(&part, "old").expect("current partial");

        // Hand-craft the future-minor sibling: a disjoint-source shard's
        // body plus an unknown appended section, version word minor+1.
        let mut c = YearCollector::with_origin(2023, tiny_cfg(), 7.0, 0);
        for i in 0..10u32 {
            c.offer(&record(52, 300 + i, 22, u64::from(i) * 100_000 + 7));
        }
        let future_part = c.finish();
        let sealed = encode_year(&future_part);
        let mut payload = sealed[ENVELOPE_LEN..].to_vec();
        payload.extend_from_slice(&[0xAB; 9]);
        let newer = seal_as(&payload, STORE_FORMAT_MAJOR, STORE_FORMAT_MINOR + 1);
        std::fs::write(store.partial_path(2023, "new"), &newer).expect("write future partial");

        let index = store.index().expect("index reads both");
        assert_eq!(index.len(), 2);
        let minors: Vec<u16> = index.iter().map(|(_, m)| m.format_minor).collect();
        assert!(minors.contains(&STORE_FORMAT_MINOR));
        assert!(minors.contains(&(STORE_FORMAT_MINOR + 1)));

        let loaded = store.load_year(2023).expect("future-minor partial loads");
        assert_eq!(
            loaded,
            YearAnalysis::merge_partials(vec![part, future_part])
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn image_carries_per_year_slice_stats() {
        let dir = std::env::temp_dir().join(format!("synstore-t6-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = AnalysisStore::open(&dir).expect("open");
        store.write_year(&analysis(2015)).expect("write 2015");
        let p = analysis(2016);
        store.write_partial(&p, "a").expect("partial a");
        store.write_partial(&p, "b").expect("partial b");

        let image = StoreImage::load(&store).expect("image");
        assert_eq!(image.slice_files, 3);
        assert_eq!(image.slices.len(), 2);
        let s2015 = image.slice_stat(2015).expect("2015 stat");
        assert_eq!(s2015.files, 1);
        assert_eq!(
            s2015.bytes,
            fs::metadata(store.slice_path(2015)).expect("meta").len()
        );
        assert_eq!(
            (s2015.format_major, s2015.format_minor),
            (STORE_FORMAT_MAJOR, STORE_FORMAT_MINOR)
        );
        let s2016 = image.slice_stat(2016).expect("2016 stat");
        assert_eq!(s2016.files, 2);
        assert_eq!(s2016.bytes, 2 * encode_year(&p).len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn image_cell_swap_protocol() {
        let mut image = StoreImage::empty();
        image.years = vec![analysis(2015)];
        let cell = ImageCell::new(image);
        let mut reader = cell.reader();
        assert_eq!(reader.image().generation, 1);
        assert_eq!(reader.image().year_list(), vec![2015]);

        let mut next = StoreImage::empty();
        next.years = vec![analysis(2015), analysis(2016)];
        let generation = cell.install(next);
        assert_eq!(generation, 2);
        assert_eq!(reader.image().generation, 2);
        assert_eq!(reader.image().year_list(), vec![2015, 2016]);
    }
}
