//! The serve query protocol: line-delimited JSON requests answered from a
//! [`StoreImage`].
//!
//! One request per line, one response per line. Requests are JSON objects
//! with an `"op"` field; responses are `{"ok":true,"body":"…"}` with the
//! rendered artifact embedded as a JSON string, or
//! `{"ok":false,"error":"…"}`. Embedding the artifact as a *string* (not a
//! nested object) is deliberate: the body bytes are produced by the same
//! `report` renderers the batch binaries use, so extracting `body` from a
//! daemon response and `diff`ing it against the batch file is an exact
//! byte comparison — no JSON re-serialization in between to perturb float
//! formatting or key order.
//!
//! Data ops (answered by any reader thread, lock-free):
//!
//! | request | body |
//! |---|---|
//! | `{"op":"ping"}` | `pong` |
//! | `{"op":"years"}` | compact JSON year array |
//! | `{"op":"stats"}` | image stats (generation, slices, totals) |
//! | `{"op":"table1"}` | `DecadeReport` pretty JSON (= `out/table1.json`) |
//! | `{"op":"summary","year":Y}` | that year's `YearSummary` pretty JSON |
//! | `{"op":"source","ip":"A.B.C.D"}` | `SourceHistory` pretty JSON |
//! | `{"op":"port","port":N}` | `PortTrend` pretty JSON |
//! | `{"op":"campaigns","ip":"A.B.C.D"}` | `CampaignLookup` pretty JSON |
//! | `{"op":"heavy","year":Y}` | that year's `NetworkImpact` pretty JSON |
//! | `{"op":"health"}` | daemon health (generation, uptime, gate counters) |
//!
//! `stats` additionally reports per-year slice accounting (file count,
//! on-disk bytes, format version) next to the aggregate totals. `heavy` is
//! an error for years whose run did not enable `--heavy-hitters`.
//!
//! Admin ops (`{"op":"reload"}`, `{"op":"shutdown"}`) parse here too but
//! are intercepted by the daemon's connection loop — the single writer
//! thread applies reloads; [`answer`] treats them as no-ops so the offline
//! (`--store-dir --query`) client stays a drop-in stand-in for a daemon.

use serde::Serialize;

use synscan_wire::Ipv4Address;

use super::StoreImage;
use crate::analysis::yearly::summarize;
use crate::report::{
    campaign_lookup, network_impact_json, network_impact_of, port_trend, source_history,
    DecadeReport,
};

/// Ranking depth for table/summary bodies — the paper prints 5, and the
/// batch `repro` artifacts use the same depth, which the byte-equivalence
/// guarantee depends on.
pub const TOP_N: usize = 5;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// List the years the image covers.
    Years,
    /// Image statistics (generation, slice count, totals).
    Stats,
    /// The full Table 1 report as pretty JSON.
    Table1,
    /// One year's summary.
    Summary {
        /// The requested calendar year.
        year: u16,
    },
    /// Per-source decade history.
    Source {
        /// The source address.
        ip: Ipv4Address,
    },
    /// Per-port yearly trend.
    Port {
        /// The destination port.
        port: u16,
    },
    /// Campaign lookup for a source.
    Campaigns {
        /// The source address.
        ip: Ipv4Address,
    },
    /// One year's heavy-hitter network-impact section.
    Heavy {
        /// The requested calendar year.
        year: u16,
    },
    /// Daemon health: image generation plus the admission-gate counters.
    Health,
    /// Ask the writer thread to reload the store from disk.
    Reload,
    /// Ask the daemon to exit.
    Shutdown,
}

/// Live daemon counters surfaced by the `health` op. The daemon fills these
/// from its admission gate; offline contexts (the `--store-dir --query`
/// client, tests) answer with the zeroed [`Default`] — the image fields are
/// real either way.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HealthCounters {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Connections currently queued or being served.
    pub in_flight: u64,
    /// Connections served to completion since start.
    pub served: u64,
    /// Connections shed by the admission gate since start.
    pub shed: u64,
    /// Whether the daemon is draining (refusing new connections).
    pub draining: bool,
}

/// The `health` body: image identity next to the live gate counters.
#[derive(Debug, Serialize)]
struct HealthBody {
    generation: u64,
    years: usize,
    uptime_ms: u64,
    in_flight: u64,
    served: u64,
    shed: u64,
    draining: bool,
}

/// Render the `health` response line from an image and live counters.
pub fn health_line(image: &StoreImage, live: &HealthCounters) -> String {
    let body = HealthBody {
        generation: image.generation,
        years: image.year_list().len(),
        uptime_ms: live.uptime_ms,
        in_flight: live.in_flight,
        served: live.served,
        shed: live.shed,
        draining: live.draining,
    };
    ok_line(&serde_json::to_string_pretty(&body).expect("health serializes"))
}

#[derive(Serialize)]
struct OkResponse<'a> {
    ok: bool,
    body: &'a str,
}

#[derive(Serialize)]
struct ErrResponse<'a> {
    ok: bool,
    error: &'a str,
}

/// A single-line success response with `body` embedded as a JSON string.
pub fn ok_line(body: &str) -> String {
    serde_json::to_string(&OkResponse { ok: true, body }).expect("response serializes")
}

/// A single-line error response.
pub fn err_line(error: &str) -> String {
    serde_json::to_string(&ErrResponse { ok: false, error }).expect("response serializes")
}

/// Extract the `body` string from a response line produced by [`ok_line`].
/// Returns `None` for error responses or non-protocol lines — used by the
/// client's `--bodies` mode and the CI diff scripts.
pub fn body_of(line: &str) -> Option<String> {
    let value: serde_json::Value = serde_json::from_str(line).ok()?;
    if value.get("ok")?.as_bool()? {
        Some(value.get("body")?.as_str()?.to_string())
    } else {
        None
    }
}

/// Parse one request line. Errors are human-readable strings ready for
/// [`err_line`] — a malformed request must never take the daemon down.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value: serde_json::Value =
        serde_json::from_str(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let op = value
        .get("op")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "request has no \"op\" field".to_string())?;
    let year_field = |value: &serde_json::Value| -> Result<u16, String> {
        value
            .get("year")
            .and_then(|v| v.as_u64())
            .filter(|y| *y <= u64::from(u16::MAX))
            .map(|y| y as u16)
            .ok_or_else(|| format!("op {op:?} needs a \"year\" field"))
    };
    let ip_field = |value: &serde_json::Value| -> Result<Ipv4Address, String> {
        let text = value
            .get("ip")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("op {op:?} needs an \"ip\" field"))?;
        text.parse::<Ipv4Address>()
            .map_err(|_| format!("bad IPv4 address {text:?}"))
    };
    match op {
        "ping" => Ok(Request::Ping),
        "years" => Ok(Request::Years),
        "stats" => Ok(Request::Stats),
        "table1" => Ok(Request::Table1),
        "summary" => Ok(Request::Summary {
            year: year_field(&value)?,
        }),
        "heavy" => Ok(Request::Heavy {
            year: year_field(&value)?,
        }),
        "source" => Ok(Request::Source {
            ip: ip_field(&value)?,
        }),
        "port" => {
            let port = value
                .get("port")
                .and_then(|v| v.as_u64())
                .filter(|p| *p <= u64::from(u16::MAX))
                .ok_or_else(|| "op \"port\" needs a \"port\" field (0-65535)".to_string())?;
            Ok(Request::Port { port: port as u16 })
        }
        "campaigns" => Ok(Request::Campaigns {
            ip: ip_field(&value)?,
        }),
        "health" => Ok(Request::Health),
        "reload" => Ok(Request::Reload),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// One year's slice accounting inside the `stats` body.
#[derive(Debug, Serialize)]
struct SliceStatRow {
    year: u16,
    files: u64,
    bytes: u64,
    /// Format version the year's slices were written with, `major.minor`.
    version: String,
}

/// Image statistics for the `stats` op.
#[derive(Debug, Serialize)]
struct ImageStats {
    generation: u64,
    slice_files: usize,
    years: Vec<u16>,
    total_packets: u64,
    distinct_sources: u64,
    campaigns: u64,
    /// Per-year slice accounting (file count, on-disk bytes, version).
    slices: Vec<SliceStatRow>,
}

/// Answer a data request from an image, returning the full response line.
///
/// Admin requests ([`Request::Reload`], [`Request::Shutdown`]) get a no-op
/// acknowledgement here; the daemon intercepts them before calling this.
pub fn answer(image: &StoreImage, request: &Request) -> String {
    match request {
        Request::Ping => ok_line("pong"),
        Request::Years => {
            let body = serde_json::to_string(&image.year_list()).expect("years serialize");
            ok_line(&body)
        }
        Request::Stats => {
            let stats = ImageStats {
                generation: image.generation,
                slice_files: image.slice_files,
                years: image.year_list(),
                total_packets: image.years.iter().map(|y| y.total_packets).sum(),
                distinct_sources: image.years.iter().map(|y| y.distinct_sources).sum(),
                campaigns: image.years.iter().map(|y| y.campaigns.len() as u64).sum(),
                slices: image
                    .slices
                    .iter()
                    .map(|s| SliceStatRow {
                        year: s.year,
                        files: s.files,
                        bytes: s.bytes,
                        version: format!("{}.{}", s.format_major, s.format_minor),
                    })
                    .collect(),
            };
            let body = serde_json::to_string_pretty(&stats).expect("stats serialize");
            ok_line(&body)
        }
        Request::Table1 => ok_line(&DecadeReport::from_years(&image.years, TOP_N).to_json()),
        Request::Summary { year } => match image.year(*year) {
            Some(analysis) => {
                let body = serde_json::to_string_pretty(&summarize(analysis, TOP_N))
                    .expect("summary serializes");
                ok_line(&body)
            }
            None => err_line(&format!("no store slice covers year {year}")),
        },
        Request::Source { ip } => ok_line(&source_history(&image.years, *ip).to_json()),
        Request::Port { port } => ok_line(&port_trend(&image.years, *port).to_json()),
        Request::Campaigns { ip } => ok_line(&campaign_lookup(&image.years, *ip).to_json()),
        Request::Heavy { year } => match image.year(*year) {
            Some(analysis) => match network_impact_of(analysis) {
                Some(impact) => ok_line(&network_impact_json(&impact)),
                None => err_line(&format!(
                    "year {year} was analyzed without --heavy-hitters; re-run with the flag \
                     to enable the network-impact section"
                )),
            },
            None => err_line(&format!("no store slice covers year {year}")),
        },
        Request::Health => health_line(image, &HealthCounters::default()),
        Request::Reload => ok_line("reload: no-op (no daemon writer on this path)"),
        Request::Shutdown => ok_line("shutdown: no-op (no daemon on this path)"),
    }
}

/// Parse + answer one raw line: the whole per-line protocol for contexts
/// without a daemon (the offline client, tests, benches).
pub fn answer_line(image: &StoreImage, line: &str) -> String {
    match parse_request(line) {
        Ok(request) => answer(image, &request),
        Err(error) => err_line(&error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{}").is_err());
        assert!(parse_request("{\"op\":\"nope\"}").is_err());
        assert!(parse_request("{\"op\":\"port\"}").is_err());
        assert!(parse_request("{\"op\":\"port\",\"port\":70000}").is_err());
        assert!(parse_request("{\"op\":\"source\",\"ip\":\"1.2.3\"}").is_err());
    }

    #[test]
    fn parse_accepts_every_op() {
        assert_eq!(parse_request("{\"op\":\"ping\"}"), Ok(Request::Ping));
        assert_eq!(
            parse_request("{\"op\":\"summary\",\"year\":2020}"),
            Ok(Request::Summary { year: 2020 })
        );
        assert_eq!(
            parse_request("{\"op\":\"source\",\"ip\":\"10.0.0.1\"}"),
            Ok(Request::Source {
                ip: Ipv4Address::new(10, 0, 0, 1)
            })
        );
        assert_eq!(
            parse_request("{\"op\":\"port\",\"port\":443}"),
            Ok(Request::Port { port: 443 })
        );
        assert_eq!(parse_request("{\"op\":\"reload\"}"), Ok(Request::Reload));
        assert_eq!(parse_request("{\"op\":\"health\"}"), Ok(Request::Health));
        assert_eq!(
            parse_request("{\"op\":\"heavy\",\"year\":2020}"),
            Ok(Request::Heavy { year: 2020 })
        );
        assert!(parse_request("{\"op\":\"heavy\"}").is_err());
    }

    #[test]
    fn stats_reports_per_year_slice_version_and_bytes() {
        use crate::store::{YearSliceStat, STORE_FORMAT_MAJOR, STORE_FORMAT_MINOR};
        let mut image = StoreImage::empty();
        image.slice_files = 3;
        image.slices = vec![
            YearSliceStat {
                year: 2019,
                files: 1,
                bytes: 4096,
                format_major: STORE_FORMAT_MAJOR,
                format_minor: STORE_FORMAT_MINOR,
            },
            YearSliceStat {
                year: 2020,
                files: 2,
                bytes: 8192,
                format_major: STORE_FORMAT_MAJOR,
                format_minor: STORE_FORMAT_MINOR,
            },
        ];
        let line = answer_line(&image, "{\"op\":\"stats\"}");
        let body = body_of(&line).expect("stats body");
        let value: serde_json::Value = serde_json::from_str(&body).expect("stats JSON");
        let slices = value
            .get("slices")
            .and_then(|v| v.as_array())
            .expect("stats body has a slices array");
        assert_eq!(slices.len(), 2);
        let expect_version = format!("{STORE_FORMAT_MAJOR}.{STORE_FORMAT_MINOR}");
        for (row, (year, files, bytes)) in slices.iter().zip([(2019, 1, 4096), (2020, 2, 8192)]) {
            assert_eq!(row.get("year").and_then(|v| v.as_u64()), Some(year));
            assert_eq!(row.get("files").and_then(|v| v.as_u64()), Some(files));
            assert_eq!(row.get("bytes").and_then(|v| v.as_u64()), Some(bytes));
            assert_eq!(
                row.get("version").and_then(|v| v.as_str()),
                Some(expect_version.as_str())
            );
        }
    }

    #[test]
    fn heavy_without_sketch_state_is_an_error_response() {
        let image = StoreImage::empty();
        let line = answer_line(&image, "{\"op\":\"heavy\",\"year\":2020}");
        assert!(line.starts_with("{\"ok\":false"));
    }

    #[test]
    fn responses_are_single_lines_and_bodies_extract() {
        let image = StoreImage::empty();
        let line = answer_line(&image, "{\"op\":\"ping\"}");
        assert!(!line.contains('\n'));
        assert_eq!(body_of(&line).as_deref(), Some("pong"));
        let err = answer_line(&image, "junk");
        assert!(err.starts_with("{\"ok\":false"));
        assert_eq!(body_of(&err), None);
        // A pretty-JSON body round-trips through the envelope byte-exactly.
        let table = answer_line(&image, "{\"op\":\"table1\"}");
        assert!(!table.contains('\n'));
        assert_eq!(
            body_of(&table).as_deref(),
            Some(DecadeReport::from_years(&[], TOP_N).to_json().as_str())
        );
    }

    #[test]
    fn health_answers_offline_with_zeroed_counters() {
        let image = StoreImage::empty();
        let line = answer_line(&image, "{\"op\":\"health\"}");
        let body = body_of(&line).expect("health body");
        let value: serde_json::Value = serde_json::from_str(&body).expect("health JSON");
        assert!(value.get("generation").is_some());
        assert_eq!(value.get("in_flight").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(value.get("shed").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(value.get("draining").and_then(|v| v.as_bool()), Some(false));
    }

    #[test]
    fn missing_year_is_an_error_response() {
        let image = StoreImage::empty();
        let line = answer_line(&image, "{\"op\":\"summary\",\"year\":2020}");
        assert!(line.starts_with("{\"ok\":false"));
    }
}
