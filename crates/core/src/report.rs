//! Report assembly and rendering: turns analysis results into the tables the
//! paper prints and into JSON artifacts for EXPERIMENTS.md.
//!
//! Every renderer here is a **pure reader of store slices**: the inputs are
//! [`YearAnalysis`] values exactly as `core::store` persists and reloads
//! them, so batch runs (`repro`/`analyze`) and the resident `synscan-serve`
//! daemon produce byte-identical artifacts by construction — both call
//! these functions on the same decoded slices.

use std::fmt::Write as _;

use synscan_wire::Ipv4Address;

use crate::analysis::collect::YearAnalysis;
use crate::analysis::yearly::{summarize, YearSummary};
use crate::campaign::NoiseStats;

/// A multi-year (Table 1 style) report.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct DecadeReport {
    /// One summary per simulated year, ascending.
    pub years: Vec<YearSummary>,
}

impl DecadeReport {
    /// Assemble the Table 1 report from per-year store slices (ascending),
    /// ranking `top_n` ports per dimension (the paper prints 5).
    pub fn from_years(years: &[YearAnalysis], top_n: usize) -> Self {
        Self {
            years: years.iter().map(|y| summarize(y, top_n)).collect(),
        }
    }

    /// Growth factor of packets/day between the first and last year —
    /// the paper's headline "30-fold over ten years".
    pub fn packets_per_day_growth(&self) -> Option<f64> {
        let first = self.years.first()?;
        let last = self.years.last()?;
        if first.packets_per_day <= 0.0 {
            return None;
        }
        Some(last.packets_per_day / first.packets_per_day)
    }

    /// Growth factor of campaigns/month between the first and last year
    /// (paper: ×39).
    pub fn scans_per_month_growth(&self) -> Option<f64> {
        let first = self.years.first()?;
        let last = self.years.last()?;
        if first.scans_per_month <= 0.0 {
            return None;
        }
        Some(last.scans_per_month / first.scans_per_month)
    }

    /// Render the Table 1 reproduction as fixed-width text.
    pub fn render_table1(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:>14} {:>12} {:>10}  {:<28} {:<28} {:<40}",
            "year",
            "packets/day",
            "scans/month",
            "sources",
            "top ports (packets)",
            "top ports (sources)",
            "tool shares by scans"
        );
        for year in &self.years {
            let fmt_ports = |ranking: &[(u16, f64)]| -> String {
                ranking
                    .iter()
                    .take(3)
                    .map(|(p, s)| format!("{p}({:.1}%)", s * 100.0))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let tools = ["masscan", "nmap", "mirai", "zmap"]
                .iter()
                .map(|t| {
                    format!(
                        "{t}:{:.1}%",
                        year.tool_scan_shares.get(*t).copied().unwrap_or(0.0) * 100.0
                    )
                })
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "{:<6} {:>14.0} {:>12.1} {:>10}  {:<28} {:<28} {:<40}",
                year.year,
                year.packets_per_day,
                year.scans_per_month,
                year.distinct_sources,
                fmt_ports(&year.top_ports_by_packets),
                fmt_ports(&year.top_ports_by_sources),
                tools
            );
        }
        out
    }

    /// Serialize the whole report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// Render noise/rejection statistics as an aligned text block. Rejection
/// reasons are kept as enum keys on the hot path; this is the one place
/// they become strings, so the rendered names stay byte-identical to the
/// old per-rejection `format!("{reason:?}")` output.
pub fn render_noise(noise: &NoiseStats) -> String {
    let mut out = format!("# noise ({} rejected packets)\n", noise.rejected_packets);
    for (reason, count) in &noise.rejected_sequences {
        let _ = writeln!(out, "{:>24}  {count}", reason.as_str());
    }
    out
}

/// Render any `(label, value)` series as an aligned two-column text block —
/// the benches use this to print figure series.
pub fn render_series<L: std::fmt::Display, V: std::fmt::Display>(
    title: &str,
    rows: impl IntoIterator<Item = (L, V)>,
) -> String {
    let mut out = format!("# {title}\n");
    for (label, value) in rows {
        let _ = writeln!(out, "{label:>16}  {value}");
    }
    out
}

/// One year of a single source's activity, for [`source_history`].
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SourceYear {
    /// Calendar year.
    pub year: u16,
    /// Packets this source sent at the telescope that year.
    pub packets: u64,
    /// Distinct destination ports it probed.
    pub ports: u32,
    /// Campaigns attributed to it.
    pub campaigns: u64,
    /// Its share of the year's admitted packets.
    pub packet_share: f64,
}

/// A source's decade history — the per-source view the paper's
/// Greynoise-shaped consumer asks for.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SourceHistory {
    /// Dotted-quad source address.
    pub source: String,
    /// Number of years the source was observed in.
    pub years_seen: usize,
    /// One row per year the source appeared, ascending.
    pub years: Vec<SourceYear>,
}

impl SourceHistory {
    /// Pretty JSON, the serve/batch artifact form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("source history serializes")
    }
}

/// Per-source history across store slices: one row for every year the
/// source sent at least one admitted packet.
pub fn source_history(years: &[YearAnalysis], source: Ipv4Address) -> SourceHistory {
    let mut rows = Vec::new();
    for analysis in years {
        let Some(&packets) = analysis.source_packets.get(&source.0) else {
            continue;
        };
        rows.push(SourceYear {
            year: analysis.year,
            packets,
            ports: analysis
                .source_port_counts
                .get(&source.0)
                .copied()
                .unwrap_or(0),
            campaigns: analysis
                .campaigns
                .iter()
                .filter(|c| c.src_ip == source)
                .count() as u64,
            packet_share: packets as f64 / analysis.total_packets.max(1) as f64,
        });
    }
    SourceHistory {
        source: source.to_string(),
        years_seen: rows.len(),
        years: rows,
    }
}

/// One year of a single port's targeting, for [`port_trend`].
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct PortYear {
    /// Calendar year.
    pub year: u16,
    /// Packets aimed at the port that year.
    pub packets: u64,
    /// Distinct sources that probed it.
    pub sources: u64,
    /// Its share of the year's admitted packets.
    pub packet_share: f64,
    /// Its share of the year's distinct sources.
    pub source_share: f64,
}

/// A port's yearly targeting trend across the decade.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct PortTrend {
    /// The destination port.
    pub port: u16,
    /// One row per store year (zero rows included, so trends keep their
    /// time axis), ascending.
    pub years: Vec<PortYear>,
}

impl PortTrend {
    /// Pretty JSON, the serve/batch artifact form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("port trend serializes")
    }
}

/// Per-port yearly trend across store slices.
pub fn port_trend(years: &[YearAnalysis], port: u16) -> PortTrend {
    let rows = years
        .iter()
        .map(|analysis| {
            let packets = analysis.port_packets.get(&port).copied().unwrap_or(0);
            let sources = analysis.port_sources.get(&port).copied().unwrap_or(0);
            PortYear {
                year: analysis.year,
                packets,
                sources,
                packet_share: packets as f64 / analysis.total_packets.max(1) as f64,
                source_share: sources as f64 / analysis.distinct_sources.max(1) as f64,
            }
        })
        .collect();
    PortTrend { port, years: rows }
}

/// One campaign attributed to a looked-up source, for [`campaign_lookup`].
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct CampaignHit {
    /// Calendar year the campaign ran in.
    pub year: u16,
    /// First probe timestamp (µs).
    pub first_ts_micros: u64,
    /// Last probe timestamp (µs).
    pub last_ts_micros: u64,
    /// Probes received at the telescope.
    pub packets: u64,
    /// Distinct telescope destinations hit.
    pub distinct_dests: u64,
    /// Distinct destination ports.
    pub ports: usize,
    /// Majority-vote tool attribution, if any tracked tool matched.
    pub tool: Option<String>,
}

/// Every campaign a source ran across the decade.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct CampaignLookup {
    /// Dotted-quad source address.
    pub source: String,
    /// Total campaigns across all years.
    pub total: usize,
    /// Campaign rows in (year, start time) order.
    pub campaigns: Vec<CampaignHit>,
}

impl CampaignLookup {
    /// Pretty JSON, the serve/batch artifact form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign lookup serializes")
    }
}

/// Campaign lookup across store slices: all campaigns attributed to
/// `source`, in (year, start time) order.
pub fn campaign_lookup(years: &[YearAnalysis], source: Ipv4Address) -> CampaignLookup {
    let mut hits = Vec::new();
    for analysis in years {
        for campaign in analysis.campaigns.iter().filter(|c| c.src_ip == source) {
            hits.push(CampaignHit {
                year: analysis.year,
                first_ts_micros: campaign.first_ts_micros,
                last_ts_micros: campaign.last_ts_micros,
                packets: campaign.packets,
                distinct_dests: campaign.distinct_dests,
                ports: campaign.distinct_ports(),
                tool: campaign.tool().map(|t| t.name().to_string()),
            });
        }
    }
    CampaignLookup {
        source: source.to_string(),
        total: hits.len(),
        campaigns: hits,
    }
}

/// Derive one year's "network impact" section from its heavy-hitter sketch
/// state, or `None` when the run did not enable `--heavy-hitters`.
///
/// Shared by the serve `heavy` op and the batch `repro`/`analyze` renderers
/// so both produce byte-identical artifacts: the rate window is the year's
/// observation window, and the percentile population is the year's distinct
/// source list (sorted internally for determinism).
pub fn network_impact_of(analysis: &YearAnalysis) -> Option<crate::sketch::NetworkImpact> {
    let heavy = analysis.heavy.as_ref()?;
    let window_secs = analysis.end_micros.saturating_sub(analysis.start_micros) as f64 / 1e6;
    let sources: Vec<u32> = analysis.source_packets.keys().copied().collect();
    Some(heavy.network_impact(analysis.year, window_secs, &sources))
}

/// Pretty-JSON form of [`network_impact_of`]'s result, the serve/batch
/// artifact bytes.
pub fn network_impact_json(impact: &crate::sketch::NetworkImpact) -> String {
    serde_json::to_string_pretty(impact).expect("network impact serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn summary(year: u16, ppd: f64, spm: f64) -> YearSummary {
        YearSummary {
            year,
            packets_per_day: ppd,
            distinct_sources: 100,
            scans_per_month: spm,
            total_scans: 10,
            top_ports_by_packets: vec![(22, 0.15), (8080, 0.087)],
            top_ports_by_sources: vec![(80, 0.33)],
            top_ports_by_scans: vec![(3389, 0.23)],
            tool_scan_shares: BTreeMap::from([
                ("masscan".into(), 0.005),
                ("nmap".into(), 0.317),
                ("mirai".into(), 0.0),
                ("zmap".into(), 0.021),
            ]),
            tool_packet_shares: BTreeMap::new(),
        }
    }

    #[test]
    fn growth_factors() {
        let report = DecadeReport {
            years: vec![summary(2015, 11e6, 33_000.0), summary(2024, 345e6, 1.3e6)],
        };
        let growth = report.packets_per_day_growth().unwrap();
        assert!((growth - 31.36).abs() < 0.1);
        let scans = report.scans_per_month_growth().unwrap();
        assert!((scans - 39.4).abs() < 0.1);
    }

    #[test]
    fn empty_report_has_no_growth() {
        assert!(DecadeReport::default().packets_per_day_growth().is_none());
    }

    #[test]
    fn noise_rendering_uses_debug_names() {
        use crate::campaign::RejectReason;
        let noise = NoiseStats {
            rejected_sequences: BTreeMap::from([
                (RejectReason::TooFewDestinations, 7),
                (RejectReason::TooSlow, 2),
            ]),
            rejected_packets: 41,
        };
        let text = render_noise(&noise);
        assert!(text.starts_with("# noise (41 rejected packets)\n"));
        assert!(text.contains("TooFewDestinations  7"));
        assert!(text.contains("TooSlow  2"));
    }

    #[test]
    fn table_renders_every_year() {
        let report = DecadeReport {
            years: vec![summary(2015, 11e6, 33_000.0), summary(2016, 19e6, 38_000.0)],
        };
        let table = report.render_table1();
        assert!(table.contains("2015"));
        assert!(table.contains("2016"));
        assert!(table.contains("22(15.0%)"));
        assert!(table.contains("nmap:31.7%"));
    }

    #[test]
    fn json_round_trips_structurally() {
        let report = DecadeReport {
            years: vec![summary(2020, 283e6, 222_000.0)],
        };
        let json = report.to_json();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["years"][0]["year"], 2020);
    }

    #[test]
    fn series_rendering() {
        let text = render_series("cdf", vec![(1, 0.5), (2, 1.0)]);
        assert!(text.starts_with("# cdf"));
        assert!(text.contains("1  0.5"));
    }

    fn collected_year(year: u16, src: u32, port: u16, packets: u32) -> YearAnalysis {
        use crate::analysis::collect::YearCollector;
        use crate::campaign::CampaignConfig;
        use synscan_wire::{ProbeRecord, TcpFlags};
        let cfg = CampaignConfig {
            min_distinct_dests: 5,
            min_rate_pps: 1.0,
            expiry_secs: 3600.0,
            monitored_addresses: 1 << 16,
        };
        let mut collector = YearCollector::new(year, cfg);
        for i in 0..packets {
            collector.offer(&ProbeRecord {
                ts_micros: u64::from(i) * 250_000,
                src_ip: Ipv4Address(src),
                dst_ip: Ipv4Address(0x0b00_0000 + i),
                src_port: 999,
                dst_port: port,
                seq: 1,
                ip_id: 3,
                ttl: 61,
                flags: TcpFlags::SYN,
                window: 512,
            });
        }
        collector.finish()
    }

    #[test]
    fn source_history_rows_only_for_seen_years() {
        let years = vec![
            collected_year(2015, 9, 443, 20),
            collected_year(2016, 8, 22, 10),
        ];
        let history = source_history(&years, Ipv4Address(9));
        assert_eq!(history.years_seen, 1);
        assert_eq!(history.years[0].year, 2015);
        assert_eq!(history.years[0].packets, 20);
        assert_eq!(history.years[0].campaigns, 1);
        assert!((history.years[0].packet_share - 1.0).abs() < 1e-12);
        assert_eq!(history.source, "0.0.0.9");
        assert_eq!(source_history(&years, Ipv4Address(77)).years_seen, 0);
    }

    #[test]
    fn port_trend_keeps_the_time_axis() {
        let years = vec![
            collected_year(2015, 9, 443, 20),
            collected_year(2016, 8, 22, 10),
        ];
        let trend = port_trend(&years, 443);
        assert_eq!(trend.years.len(), 2);
        assert_eq!(trend.years[0].packets, 20);
        assert_eq!(trend.years[1].packets, 0);
        assert!((trend.years[0].source_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn campaign_lookup_spans_years() {
        let years = vec![
            collected_year(2015, 9, 443, 20),
            collected_year(2016, 9, 22, 10),
        ];
        let lookup = campaign_lookup(&years, Ipv4Address(9));
        assert_eq!(lookup.total, 2);
        assert_eq!(lookup.campaigns[0].year, 2015);
        assert_eq!(lookup.campaigns[1].year, 2016);
        assert_eq!(lookup.campaigns[0].ports, 1);
        let json = lookup.to_json();
        assert!(json.contains("\"source\": \"0.0.0.9\""));
    }
}
