//! Report assembly and rendering: turns analysis results into the tables the
//! paper prints and into JSON artifacts for EXPERIMENTS.md.

use std::fmt::Write as _;

use crate::analysis::yearly::YearSummary;
use crate::campaign::NoiseStats;

/// A multi-year (Table 1 style) report.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct DecadeReport {
    /// One summary per simulated year, ascending.
    pub years: Vec<YearSummary>,
}

impl DecadeReport {
    /// Growth factor of packets/day between the first and last year —
    /// the paper's headline "30-fold over ten years".
    pub fn packets_per_day_growth(&self) -> Option<f64> {
        let first = self.years.first()?;
        let last = self.years.last()?;
        if first.packets_per_day <= 0.0 {
            return None;
        }
        Some(last.packets_per_day / first.packets_per_day)
    }

    /// Growth factor of campaigns/month between the first and last year
    /// (paper: ×39).
    pub fn scans_per_month_growth(&self) -> Option<f64> {
        let first = self.years.first()?;
        let last = self.years.last()?;
        if first.scans_per_month <= 0.0 {
            return None;
        }
        Some(last.scans_per_month / first.scans_per_month)
    }

    /// Render the Table 1 reproduction as fixed-width text.
    pub fn render_table1(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:>14} {:>12} {:>10}  {:<28} {:<28} {:<40}",
            "year",
            "packets/day",
            "scans/month",
            "sources",
            "top ports (packets)",
            "top ports (sources)",
            "tool shares by scans"
        );
        for year in &self.years {
            let fmt_ports = |ranking: &[(u16, f64)]| -> String {
                ranking
                    .iter()
                    .take(3)
                    .map(|(p, s)| format!("{p}({:.1}%)", s * 100.0))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let tools = ["masscan", "nmap", "mirai", "zmap"]
                .iter()
                .map(|t| {
                    format!(
                        "{t}:{:.1}%",
                        year.tool_scan_shares.get(*t).copied().unwrap_or(0.0) * 100.0
                    )
                })
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "{:<6} {:>14.0} {:>12.1} {:>10}  {:<28} {:<28} {:<40}",
                year.year,
                year.packets_per_day,
                year.scans_per_month,
                year.distinct_sources,
                fmt_ports(&year.top_ports_by_packets),
                fmt_ports(&year.top_ports_by_sources),
                tools
            );
        }
        out
    }

    /// Serialize the whole report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// Render noise/rejection statistics as an aligned text block. Rejection
/// reasons are kept as enum keys on the hot path; this is the one place
/// they become strings, so the rendered names stay byte-identical to the
/// old per-rejection `format!("{reason:?}")` output.
pub fn render_noise(noise: &NoiseStats) -> String {
    let mut out = format!("# noise ({} rejected packets)\n", noise.rejected_packets);
    for (reason, count) in &noise.rejected_sequences {
        let _ = writeln!(out, "{:>24}  {count}", reason.as_str());
    }
    out
}

/// Render any `(label, value)` series as an aligned two-column text block —
/// the benches use this to print figure series.
pub fn render_series<L: std::fmt::Display, V: std::fmt::Display>(
    title: &str,
    rows: impl IntoIterator<Item = (L, V)>,
) -> String {
    let mut out = format!("# {title}\n");
    for (label, value) in rows {
        let _ = writeln!(out, "{label:>16}  {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn summary(year: u16, ppd: f64, spm: f64) -> YearSummary {
        YearSummary {
            year,
            packets_per_day: ppd,
            distinct_sources: 100,
            scans_per_month: spm,
            total_scans: 10,
            top_ports_by_packets: vec![(22, 0.15), (8080, 0.087)],
            top_ports_by_sources: vec![(80, 0.33)],
            top_ports_by_scans: vec![(3389, 0.23)],
            tool_scan_shares: BTreeMap::from([
                ("masscan".into(), 0.005),
                ("nmap".into(), 0.317),
                ("mirai".into(), 0.0),
                ("zmap".into(), 0.021),
            ]),
            tool_packet_shares: BTreeMap::new(),
        }
    }

    #[test]
    fn growth_factors() {
        let report = DecadeReport {
            years: vec![summary(2015, 11e6, 33_000.0), summary(2024, 345e6, 1.3e6)],
        };
        let growth = report.packets_per_day_growth().unwrap();
        assert!((growth - 31.36).abs() < 0.1);
        let scans = report.scans_per_month_growth().unwrap();
        assert!((scans - 39.4).abs() < 0.1);
    }

    #[test]
    fn empty_report_has_no_growth() {
        assert!(DecadeReport::default().packets_per_day_growth().is_none());
    }

    #[test]
    fn noise_rendering_uses_debug_names() {
        use crate::campaign::RejectReason;
        let noise = NoiseStats {
            rejected_sequences: BTreeMap::from([
                (RejectReason::TooFewDestinations, 7),
                (RejectReason::TooSlow, 2),
            ]),
            rejected_packets: 41,
        };
        let text = render_noise(&noise);
        assert!(text.starts_with("# noise (41 rejected packets)\n"));
        assert!(text.contains("TooFewDestinations  7"));
        assert!(text.contains("TooSlow  2"));
    }

    #[test]
    fn table_renders_every_year() {
        let report = DecadeReport {
            years: vec![summary(2015, 11e6, 33_000.0), summary(2016, 19e6, 38_000.0)],
        };
        let table = report.render_table1();
        assert!(table.contains("2015"));
        assert!(table.contains("2016"));
        assert!(table.contains("22(15.0%)"));
        assert!(table.contains("nmap:31.7%"));
    }

    #[test]
    fn json_round_trips_structurally() {
        let report = DecadeReport {
            years: vec![summary(2020, 283e6, 222_000.0)],
        };
        let json = report.to_json();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["years"][0]["year"], 2020);
    }

    #[test]
    fn series_rendering() {
        let text = render_series("cdf", vec![(1, 0.5), (2, 1.0)]);
        assert!(text.starts_with("# cdf"));
        assert!(text.contains("1  0.5"));
    }
}
