//! Scanner-type classification (§6.6, Table 2).
//!
//! The paper labels each source IP institutional / hosting / enterprise /
//! residential / unknown by combining the Greynoise feed of known scanners
//! with AS-category matching and residential-space detection. Our
//! [`InternetRegistry`] substitutes for those data sources; the classifier
//! logic — known-org overlay first, then AS category, `Unknown` as the
//! fallback — is the same.

use synscan_netmodel::{InternetRegistry, ScannerClass};
use synscan_wire::Ipv4Address;

/// Classify one source address into the Table 2 label space.
pub fn classify_source(registry: &InternetRegistry, src: Ipv4Address) -> ScannerClass {
    // The registry already applies the precedence: known-org /24 overlay
    // (institutional) → /16 AS category → Unknown.
    registry.class(src)
}

/// Classify and also resolve the known organization, when one matches —
/// used by the institutional-scanner analysis (Figures 8–10).
pub fn classify_with_org(
    registry: &InternetRegistry,
    src: Ipv4Address,
) -> (ScannerClass, Option<&synscan_netmodel::KnownOrg>) {
    let org = registry.known_org(src);
    let class = if org.is_some() {
        ScannerClass::Institutional
    } else {
        registry.class(src)
    };
    (class, org)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use synscan_netmodel::Country;

    #[test]
    fn known_org_sources_are_institutional() {
        let registry = InternetRegistry::build(11, &[]);
        let org = &registry.orgs()[0];
        let ip = registry.org_source_ip(org.id, 0);
        let (class, resolved) = classify_with_org(&registry, ip);
        assert_eq!(class, ScannerClass::Institutional);
        assert_eq!(resolved.unwrap().id, org.id);
    }

    #[test]
    fn as_category_drives_the_label() {
        let registry = InternetRegistry::build(12, &[]);
        let mut rng = StdRng::seed_from_u64(1);
        for class in [
            ScannerClass::Hosting,
            ScannerClass::Enterprise,
            ScannerClass::Residential,
        ] {
            let ip = registry
                .sample_source(&mut rng, Country::Germany, class)
                .unwrap();
            assert_eq!(classify_source(&registry, ip), class);
        }
    }

    #[test]
    fn unassigned_space_is_unknown() {
        let registry = InternetRegistry::build(13, &[]);
        assert_eq!(
            classify_source(&registry, Ipv4Address::new(10, 0, 0, 1)),
            ScannerClass::Unknown
        );
    }
}
