//! Compact distinct-element sets for the per-record accumulation layer.
//!
//! The collector used to keep a heap-allocated `HashSet` behind every
//! port→sources and source→ports relation — one allocation plus one SipHash
//! probe per insert, with poor locality on iteration. With sources interned
//! to dense ids ([`crate::intern`]) both relations become sets of *small
//! dense integers*, for which two representations beat a hash set:
//!
//! * a **sorted inline vector** while the set is small (the common case:
//!   most sources touch a handful of ports, most ports see few sources),
//!   where insertion is a short `memmove` and membership a binary search;
//! * a **bitmap** once the set grows past the inline bound, where insertion
//!   and membership are single word operations and memory is `max_id/8`
//!   bytes — compact precisely because interned ids are dense.
//!
//! Both keep an exact element count, so cardinality queries (the only thing
//! most call sites need at `finish()` time) are O(1). Iteration is always
//! ascending, which makes the `finish()`-time conversion to the public
//! IP-keyed maps deterministic.

use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};

/// Inline capacity of [`IdSet`] before it spills to a bitmap.
const ID_SMALL_MAX: usize = 16;

/// Inline capacity of [`PortSet`] before it spills to a bitmap.
const PORT_SMALL_MAX: usize = 32;

/// Words in a full 16-bit port bitmap (65536 bits).
const PORT_WORDS: usize = 1 << 10;

/// A set of dense [`crate::intern::SourceId`]s (sorted small-vec / bitmap
/// hybrid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdSet {
    /// Sorted, deduplicated inline ids (≤ [`ID_SMALL_MAX`]).
    Small(Vec<u32>),
    /// Bitmap over ids, sized to the largest id seen.
    Bits {
        /// One bit per id, little-endian within each word.
        words: Vec<u64>,
        /// Exact number of set bits.
        len: u32,
    },
}

impl Default for IdSet {
    fn default() -> Self {
        IdSet::Small(Vec::new())
    }
}

impl IdSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `id`; returns `true` when it was not already present.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        match self {
            IdSet::Small(items) => match items.binary_search(&id) {
                Ok(_) => false,
                Err(pos) => {
                    if items.len() < ID_SMALL_MAX {
                        items.insert(pos, id);
                        return true;
                    }
                    let mut words = Vec::new();
                    let mut len = 0u32;
                    for &existing in items.iter() {
                        Self::set_bit(&mut words, existing);
                        len += 1;
                    }
                    Self::set_bit(&mut words, id);
                    len += 1;
                    *self = IdSet::Bits { words, len };
                    true
                }
            },
            IdSet::Bits { words, len } => {
                if Self::set_bit(words, id) {
                    *len += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Set one bit, growing the word vector on demand; returns `true` when
    /// the bit was previously clear.
    #[inline]
    fn set_bit(words: &mut Vec<u64>, id: u32) -> bool {
        let word = (id >> 6) as usize;
        if word >= words.len() {
            words.resize(word + 1, 0);
        }
        let mask = 1u64 << (id & 63);
        let was_clear = words[word] & mask == 0;
        words[word] |= mask;
        was_clear
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: u32) -> bool {
        match self {
            IdSet::Small(items) => items.binary_search(&id).is_ok(),
            IdSet::Bits { words, .. } => {
                let word = (id >> 6) as usize;
                word < words.len() && words[word] & (1u64 << (id & 63)) != 0
            }
        }
    }

    /// Number of distinct ids.
    pub fn len(&self) -> usize {
        match self {
            IdSet::Small(items) => items.len(),
            IdSet::Bits { len, .. } => *len as usize,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate ids in ascending order.
    pub fn iter(&self) -> IdSetIter<'_> {
        match self {
            IdSet::Small(items) => IdSetIter::Small(items.iter()),
            IdSet::Bits { words, .. } => IdSetIter::Bits {
                words,
                word: 0,
                current: words.first().copied().unwrap_or(0),
            },
        }
    }

    /// Serialize the exact representation (variant included, so a restored
    /// set is bit-identical, not just set-equal) for a pipeline checkpoint.
    pub fn snapshot_to(&self, w: &mut SnapWriter) {
        match self {
            IdSet::Small(items) => {
                w.put_u8(0);
                w.put_u64(items.len() as u64);
                for &id in items {
                    w.put_u32(id);
                }
            }
            IdSet::Bits { words, len } => {
                w.put_u8(1);
                w.put_u32(*len);
                w.put_u64(words.len() as u64);
                for &word in words {
                    w.put_u64(word);
                }
            }
        }
    }

    /// Rebuild a set written by [`IdSet::snapshot_to`].
    pub fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, CheckpointError> {
        match r.take_u8()? {
            0 => {
                let len = r.take_len(4)?;
                if len > ID_SMALL_MAX {
                    return Err(CheckpointError::Corrupt(format!(
                        "inline IdSet of {len} ids"
                    )));
                }
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(r.take_u32()?);
                }
                Ok(IdSet::Small(items))
            }
            1 => {
                let len = r.take_u32()?;
                let word_count = r.take_len(8)?;
                let mut words = Vec::with_capacity(word_count);
                for _ in 0..word_count {
                    words.push(r.take_u64()?);
                }
                let bits: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
                if bits != u64::from(len) {
                    return Err(CheckpointError::Corrupt(format!(
                        "IdSet bitmap has {bits} bits, recorded len {len}"
                    )));
                }
                Ok(IdSet::Bits { words, len })
            }
            t => Err(CheckpointError::Corrupt(format!("IdSet tag {t}"))),
        }
    }

    /// Merge `other` into `self` (set union) — the cross-shard combine for
    /// compact sets. Sorted inputs merge sequentially; bitmap pairs OR word
    /// by word.
    pub fn union_with(&mut self, other: &IdSet) {
        match (&mut *self, other) {
            (IdSet::Small(mine), IdSet::Small(theirs))
                if mine.len() + theirs.len() <= ID_SMALL_MAX =>
            {
                // Sorted two-pointer merge with dedup; the bound check above
                // guarantees the merged set still fits inline (it can only
                // shrink under dedup).
                let merged = sorted_union(mine, theirs);
                *mine = merged;
            }
            _ => {
                for id in other.iter() {
                    self.insert(id);
                }
            }
        }
    }
}

/// Union of two sorted, deduplicated slices, preserving both invariants.
fn sorted_union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Ascending iterator over an [`IdSet`].
#[derive(Debug)]
pub enum IdSetIter<'a> {
    /// Inline representation: iterate the sorted slice.
    Small(std::slice::Iter<'a, u32>),
    /// Bitmap representation: walk set bits word by word.
    Bits {
        /// The bitmap words.
        words: &'a [u64],
        /// Index of the word `current` was loaded from.
        word: usize,
        /// Remaining unvisited bits of the current word.
        current: u64,
    },
}

impl Iterator for IdSetIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            IdSetIter::Small(iter) => iter.next().copied(),
            IdSetIter::Bits {
                words,
                word,
                current,
            } => loop {
                if *current != 0 {
                    let bit = current.trailing_zeros();
                    *current &= *current - 1;
                    return Some((*word as u32) * 64 + bit);
                }
                *word += 1;
                if *word >= words.len() {
                    return None;
                }
                *current = words[*word];
            },
        }
    }
}

/// A set of 16-bit destination ports (sorted small-vec / fixed bitmap
/// hybrid). Only the cardinality is consumed at `finish()` time
/// (`source_port_counts`), so the bitmap variant keeps an exact counter and
/// never needs to iterate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortSet {
    /// Sorted, deduplicated inline ports (≤ [`PORT_SMALL_MAX`]).
    Small(Vec<u16>),
    /// Full 8 KiB port bitmap — only for the rare wide (vertical) scanners.
    Bits {
        /// 65536 bits, one per port.
        words: Box<[u64]>,
        /// Exact number of set bits.
        len: u32,
    },
}

impl Default for PortSet {
    fn default() -> Self {
        PortSet::Small(Vec::new())
    }
}

impl PortSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `port`; returns `true` when it was not already present.
    #[inline]
    pub fn insert(&mut self, port: u16) -> bool {
        match self {
            PortSet::Small(items) => match items.binary_search(&port) {
                Ok(_) => false,
                Err(pos) => {
                    if items.len() < PORT_SMALL_MAX {
                        items.insert(pos, port);
                        return true;
                    }
                    let mut words = vec![0u64; PORT_WORDS].into_boxed_slice();
                    for &existing in items.iter() {
                        words[usize::from(existing >> 6)] |= 1u64 << (existing & 63);
                    }
                    words[usize::from(port >> 6)] |= 1u64 << (port & 63);
                    *self = PortSet::Bits {
                        words,
                        len: PORT_SMALL_MAX as u32 + 1,
                    };
                    true
                }
            },
            PortSet::Bits { words, len } => {
                let word = &mut words[usize::from(port >> 6)];
                let mask = 1u64 << (port & 63);
                if *word & mask == 0 {
                    *word |= mask;
                    *len += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether `port` is in the set.
    pub fn contains(&self, port: u16) -> bool {
        match self {
            PortSet::Small(items) => items.binary_search(&port).is_ok(),
            PortSet::Bits { words, .. } => {
                words[usize::from(port >> 6)] & (1u64 << (port & 63)) != 0
            }
        }
    }

    /// Number of distinct ports.
    pub fn len(&self) -> usize {
        match self {
            PortSet::Small(items) => items.len(),
            PortSet::Bits { len, .. } => *len as usize,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize the exact representation for a pipeline checkpoint.
    pub fn snapshot_to(&self, w: &mut SnapWriter) {
        match self {
            PortSet::Small(items) => {
                w.put_u8(0);
                w.put_u64(items.len() as u64);
                for &port in items {
                    w.put_u16(port);
                }
            }
            PortSet::Bits { words, len } => {
                w.put_u8(1);
                w.put_u32(*len);
                for &word in words.iter() {
                    w.put_u64(word);
                }
            }
        }
    }

    /// Rebuild a set written by [`PortSet::snapshot_to`]. The bitmap variant
    /// is always exactly [`PORT_WORDS`] words, so only the inline length is
    /// encoded.
    pub fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, CheckpointError> {
        match r.take_u8()? {
            0 => {
                let len = r.take_len(2)?;
                if len > PORT_SMALL_MAX {
                    return Err(CheckpointError::Corrupt(format!(
                        "inline PortSet of {len} ports"
                    )));
                }
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(r.take_u16()?);
                }
                Ok(PortSet::Small(items))
            }
            1 => {
                let len = r.take_u32()?;
                let mut words = vec![0u64; PORT_WORDS].into_boxed_slice();
                for word in words.iter_mut() {
                    *word = r.take_u64()?;
                }
                let bits: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
                if bits != u64::from(len) {
                    return Err(CheckpointError::Corrupt(format!(
                        "PortSet bitmap has {bits} bits, recorded len {len}"
                    )));
                }
                Ok(PortSet::Bits { words, len })
            }
            t => Err(CheckpointError::Corrupt(format!("PortSet tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idset_inserts_dedups_and_counts() {
        let mut set = IdSet::new();
        assert!(set.is_empty());
        assert!(set.insert(5));
        assert!(set.insert(3));
        assert!(!set.insert(5), "duplicate rejected");
        assert_eq!(set.len(), 2);
        assert!(set.contains(3));
        assert!(!set.contains(4));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn idset_spills_to_bitmap_and_stays_exact() {
        let mut set = IdSet::new();
        // Duplicate-heavy stream around the spill boundary.
        for round in 0..3 {
            for id in 0..40u32 {
                let inserted = set.insert(id * 3);
                assert_eq!(inserted, round == 0, "id {id} round {round}");
            }
        }
        assert!(matches!(set, IdSet::Bits { .. }), "spilled past inline max");
        assert_eq!(set.len(), 40);
        assert_eq!(
            set.iter().collect::<Vec<_>>(),
            (0..40u32).map(|i| i * 3).collect::<Vec<_>>(),
            "bitmap iteration is ascending and exact"
        );
        assert!(set.contains(117));
        assert!(!set.contains(118));
    }

    #[test]
    fn idset_exact_boundary_spill() {
        let mut set = IdSet::new();
        for id in 0..16u32 {
            set.insert(id);
        }
        assert!(matches!(set, IdSet::Small(_)), "inline at the bound");
        set.insert(16);
        assert!(matches!(set, IdSet::Bits { .. }), "bound + 1 spills");
        assert_eq!(set.len(), 17);
    }

    #[test]
    fn idset_union_small_small_inline() {
        // Empty × non-empty, overlapping, all staying inline.
        let mut a = IdSet::new();
        let mut b = IdSet::new();
        a.union_with(&b);
        assert!(a.is_empty(), "empty ∪ empty");
        for id in [1u32, 5, 9] {
            b.insert(id);
        }
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5, 9], "empty ∪ b = b");
        let mut c = IdSet::new();
        for id in [5u32, 7] {
            c.insert(id);
        }
        a.union_with(&c);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5, 7, 9]);
        assert!(matches!(a, IdSet::Small(_)));
    }

    #[test]
    fn idset_union_spilling_and_mixed_reprs() {
        // Cross-shard shape: two disjoint dense ranges, each inline, whose
        // union must spill; then union a bitmap into a small set.
        let mut low = IdSet::new();
        let mut high = IdSet::new();
        for id in 0..12u32 {
            low.insert(id);
            high.insert(100 + id);
        }
        low.union_with(&high);
        assert_eq!(low.len(), 24);
        assert!(low.contains(0) && low.contains(111));

        let mut big = IdSet::new();
        for id in 0..50u32 {
            big.insert(id * 2);
        }
        let mut small = IdSet::new();
        small.insert(1);
        small.insert(4); // overlaps big
        small.union_with(&big);
        assert_eq!(small.len(), 51);
        let mut expected: Vec<u32> = (0..50u32).map(|i| i * 2).collect();
        expected.push(1);
        expected.sort_unstable();
        assert_eq!(small.iter().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn idset_union_is_idempotent() {
        let mut a = IdSet::new();
        for id in 0..30u32 {
            a.insert(id);
        }
        let snapshot = a.clone();
        let b = a.clone();
        a.union_with(&b);
        assert_eq!(a, snapshot, "self-union changes nothing");
    }

    #[test]
    fn portset_inserts_and_spills() {
        let mut set = PortSet::new();
        assert!(set.insert(443));
        assert!(!set.insert(443));
        assert!(set.insert(80));
        assert_eq!(set.len(), 2);
        assert!(set.contains(80) && !set.contains(22));

        // A vertical scanner hitting every 7th port: spills to the bitmap
        // and the count stays exact under duplicates.
        for _ in 0..2 {
            for p in (0..u16::MAX).step_by(7) {
                set.insert(p);
            }
        }
        assert!(matches!(set, PortSet::Bits { .. }));
        let expected = (0..u16::MAX).step_by(7).count() + 2
            - usize::from(443 % 7 == 0)
            - usize::from(80 % 7 == 0);
        assert_eq!(set.len(), expected);
        assert!(set.contains(7) && set.contains(443));
    }

    #[test]
    fn portset_boundary_ports() {
        let mut set = PortSet::new();
        assert!(set.insert(0));
        assert!(set.insert(u16::MAX));
        assert_eq!(set.len(), 2);
        for p in 1..=PORT_SMALL_MAX as u16 {
            set.insert(p);
        }
        assert!(matches!(set, PortSet::Bits { .. }));
        assert!(set.contains(0) && set.contains(u16::MAX));
        assert_eq!(set.len(), 2 + PORT_SMALL_MAX);
    }

    fn round_trip_idset(set: &IdSet) -> IdSet {
        let mut w = SnapWriter::new();
        set.snapshot_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = IdSet::restore_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "snapshot fully consumed");
        back
    }

    fn round_trip_portset(set: &PortSet) -> PortSet {
        let mut w = SnapWriter::new();
        set.snapshot_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = PortSet::restore_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "snapshot fully consumed");
        back
    }

    #[test]
    fn idset_snapshot_round_trips_both_representations() {
        // Empty, inline, boundary, and bitmap states.
        assert_eq!(round_trip_idset(&IdSet::new()), IdSet::new());

        let mut inline = IdSet::new();
        for id in [3u32, 9, 4_000_000_000] {
            inline.insert(id);
        }
        assert_eq!(round_trip_idset(&inline), inline);

        let mut at_bound = IdSet::new();
        for id in 0..16u32 {
            at_bound.insert(id);
        }
        assert_eq!(round_trip_idset(&at_bound), at_bound);

        let mut bitmap = IdSet::new();
        for id in 0..40u32 {
            bitmap.insert(id * 11);
        }
        assert!(matches!(bitmap, IdSet::Bits { .. }));
        assert_eq!(round_trip_idset(&bitmap), bitmap);
    }

    #[test]
    fn idset_restore_rejects_inconsistent_bitmaps() {
        let mut set = IdSet::new();
        for id in 0..40u32 {
            set.insert(id);
        }
        let mut w = SnapWriter::new();
        set.snapshot_to(&mut w);
        let mut bytes = w.into_bytes();
        // Flip a data bit so the recorded cardinality no longer matches.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            IdSet::restore_from(&mut r),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn portset_snapshot_round_trips_both_representations() {
        assert_eq!(round_trip_portset(&PortSet::new()), PortSet::new());

        let mut inline = PortSet::new();
        for port in [0u16, 443, u16::MAX] {
            inline.insert(port);
        }
        assert_eq!(round_trip_portset(&inline), inline);

        let mut bitmap = PortSet::new();
        for port in (0..u16::MAX).step_by(7) {
            bitmap.insert(port);
        }
        assert!(matches!(bitmap, PortSet::Bits { .. }));
        assert_eq!(round_trip_portset(&bitmap), bitmap);
    }

    #[test]
    fn sorted_union_edge_cases() {
        assert_eq!(sorted_union(&[], &[]), Vec::<u32>::new());
        assert_eq!(sorted_union(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(sorted_union(&[], &[3]), vec![3]);
        assert_eq!(sorted_union(&[1, 3, 5], &[1, 3, 5]), vec![1, 3, 5]);
        assert_eq!(sorted_union(&[1, 4], &[2, 3, 9]), vec![1, 2, 3, 4, 9]);
    }
}
