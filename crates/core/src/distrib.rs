//! Distributed decade runs: the worker/coordinator protocol and the
//! partition-slice driver.
//!
//! A decade-scale telescope corpus is past what one machine ingests in
//! reasonable wall clock. This module splits a run into **slices** — one
//! `(year, source-partition)` pair each — that worker *processes* compute
//! independently and a coordinator merges back bit-identically to the
//! sequential run. It is the process-level generalization of the in-process
//! sharded pipeline: the same [`shard_of`] source partition, the same
//! [`YearAnalysis::merge_partials`] recombination, the same `SYNCKPT`
//! checkpoint state — but carried over a byte pipe
//! ([`synscan_wire::frame`]) instead of a crossbeam channel, so the workers
//! can live in other processes or on other hosts.
//!
//! Determinism argument, in three steps:
//!
//! 1. Every worker assigned a slice of year *Y* replays the **whole**
//!    deterministic year-*Y* stream (generator replay is cheap; records are
//!    never shipped) and runs the full fault gate + ingress admit over it,
//!    so gate state, capture statistics, and the global origin timestamp
//!    are identical in every worker — exactly what the in-process feeder
//!    thread computes once.
//! 2. A worker's collector only sees records with
//!    `shard_of(src, parts) == part`: the partials are the same partials an
//!    in-process `Sharded { workers: parts }` run produces, created with
//!    the same global origin and the same per-worker size hints.
//! 3. [`YearAnalysis::merge_partials`] is the proven-bit-identical merge
//!    (every pipeline-equivalence test rides on it), so the coordinator's
//!    merged year equals the sequential year — and the store slices and
//!    rendered tables equal byte for byte.
//!
//! The protocol is deliberately small — six message kinds over
//! length-prefixed [`synscan_wire::frame`] envelopes:
//!
//! ```text
//! worker → coordinator   Hello     protocol version + worker label
//! coordinator → worker   Assign    slice + opaque job spec + optional
//!                                  resume checkpoint + drill knobs
//! worker → coordinator   Progress  streamed SYNCKPT checkpoint for the
//!                                  active slice (the retry state)
//! worker → coordinator   Partial   finished slice: partial analysis,
//!                                  admit snapshot, fault counters
//! worker → coordinator   Failed    typed per-slice failure (the worker
//!                                  stays alive for the next assignment)
//! coordinator → worker   Shutdown  drain and exit
//! ```
//!
//! The coordinator-side scheduling (work-stealing queue, stall watchdog,
//! retry-from-last-`Progress`) lives with the binaries in
//! `synscan::distrib`, because spawning processes and building generator
//! streams need the synthesis layer; everything protocol- and
//! analysis-shaped lives here.
//!
//! Checkpoints deliberately ride the protocol, not a filesystem: every
//! `Progress` frame carries the full `SYNCKPT` state, the coordinator
//! retains the latest one per slice, and a retry `Assign` ships it back —
//! so a respawned worker on a *different host*, sharing no disk with its
//! predecessor, resumes mid-slice and still produces the sequential bytes
//! (the CI cross-host drill deletes the dead worker's local checkpoint
//! spill before the respawn to prove it). Transport hardening comes from
//! [`synscan_wire::net`]: dials retry under seeded jittered backoff, the
//! stall watchdog and the serve daemon share one
//! [`synscan_wire::net::DEFAULT_STALL_TIMEOUT_MS`] notion of "stalled",
//! and frame corruption injected by
//! [`synscan_wire::net::ChaosSocket`] must surface through
//! [`FrameError`]'s typed taxonomy — the checksum row, not a hang.

use std::io::{Read, Write};

use synscan_wire::frame::{read_frame, write_frame, FrameError, MAX_FRAME_PAYLOAD};
use synscan_wire::stream::{skip_records, FaultCounters, FaultPolicy, TryRecordStream};

use crate::analysis::{YearAnalysis, YearCollector};
use crate::campaign::CampaignConfig;
use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointHeader, SnapReader, SnapWriter};
use crate::pipeline::supervised::AdmitState;
use crate::pipeline::{shard_of, FaultGate, Gate, PipelineError, SizeHints};

/// Protocol version spoken in [`Message::Hello`]. Independent of the frame
/// envelope version: the envelope carries bytes, this governs their
/// meaning.
pub const PROTO_VERSION: u32 = 1;

/// One assignable unit of distributed work: one year, one source partition
/// out of `parts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SliceSpec {
    /// Calendar year of the slice's stream.
    pub year: u16,
    /// This slice's partition index, `0..parts`.
    pub part: u32,
    /// Total source partitions the year is split into.
    pub parts: u32,
}

impl std::fmt::Display for SliceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/p{}of{}", self.year, self.part, self.parts)
    }
}

/// Plan the slice set for a run: every year crossed with every partition.
/// Slices are ordered partition-major within a year so the work-stealing
/// queue hands each year's partitions to different workers first — the
/// merge for a year can finish while later years still compute.
pub fn plan_slices(years: &[u16], parts: u32) -> Vec<SliceSpec> {
    let parts = parts.max(1);
    let mut slices = Vec::with_capacity(years.len() * parts as usize);
    for &year in years {
        for part in 0..parts {
            slices.push(SliceSpec { year, part, parts });
        }
    }
    slices
}

/// Why a distributed-protocol operation failed. Every decode, I/O, and
/// state problem maps here as data — a malformed or truncated frame must
/// never panic either peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistribError {
    /// The frame envelope was unreadable (I/O, magic, checksum, length).
    Frame(FrameError),
    /// A frame payload did not decode as its announced message kind.
    Checkpoint(CheckpointError),
    /// The pipeline under a slice failed (stream fault under strict
    /// policy).
    Pipeline(PipelineError),
    /// A structurally valid frame that breaks the protocol state machine
    /// (unknown kind, unexpected message, bad UTF-8 label, …).
    Protocol(String),
    /// The peer reported a slice failure.
    Remote {
        /// The slice the peer failed on.
        slice: SliceSpec,
        /// The peer's stringified error.
        message: String,
    },
}

impl std::fmt::Display for DistribError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistribError::Frame(e) => write!(f, "distrib frame error: {e}"),
            DistribError::Checkpoint(e) => write!(f, "distrib payload error: {e}"),
            DistribError::Pipeline(e) => write!(f, "distrib pipeline error: {e}"),
            DistribError::Protocol(what) => write!(f, "distrib protocol violation: {what}"),
            DistribError::Remote { slice, message } => {
                write!(f, "worker failed slice {slice}: {message}")
            }
        }
    }
}

impl std::error::Error for DistribError {}

impl From<FrameError> for DistribError {
    fn from(e: FrameError) -> Self {
        DistribError::Frame(e)
    }
}

impl From<CheckpointError> for DistribError {
    fn from(e: CheckpointError) -> Self {
        DistribError::Checkpoint(e)
    }
}

impl From<PipelineError> for DistribError {
    fn from(e: PipelineError) -> Self {
        DistribError::Pipeline(e)
    }
}

const KIND_HELLO: u8 = 1;
const KIND_ASSIGN: u8 = 2;
const KIND_PROGRESS: u8 = 3;
const KIND_PARTIAL: u8 = 4;
const KIND_FAILED: u8 = 5;
const KIND_SHUTDOWN: u8 = 6;

/// One protocol message. The `job` and checkpoint fields are opaque byte
/// blobs at this layer: the job spec is encoded by the binary layer (it
/// names generator scale, seed, chaos, …— synthesis-level concepts), and
/// checkpoints are whole `SYNCKPT` images ([`Checkpoint::to_bytes`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker greeting: protocol version + a human-readable label.
    Hello {
        /// The worker's [`PROTO_VERSION`].
        proto: u32,
        /// Diagnostic label (binary name + pid, free-form).
        worker: String,
    },
    /// Coordinator → worker: compute this slice.
    Assign {
        /// The slice to compute.
        slice: SliceSpec,
        /// Checkpoint cadence in pulled records (0 = no checkpoints).
        every: u64,
        /// Drill knob: abort the worker process after streaming this many
        /// checkpoints for the slice (the CI kill-one-worker drill).
        die_after_checkpoints: Option<u64>,
        /// Opaque job spec (generator config, policy, …).
        job: Vec<u8>,
        /// Serialized [`Checkpoint`] to resume from, if the slice was
        /// partially computed by a lost worker.
        resume: Option<Vec<u8>>,
    },
    /// Worker → coordinator: a mid-slice checkpoint (the coordinator's
    /// retry state for this slice).
    Progress {
        /// The active slice.
        slice: SliceSpec,
        /// Stream records consumed at the cut.
        cursor: u64,
        /// Serialized [`Checkpoint`].
        checkpoint: Vec<u8>,
    },
    /// Worker → coordinator: the finished slice.
    Partial {
        /// The finished slice.
        slice: SliceSpec,
        /// Total stream records consumed.
        cursor: u64,
        /// Encoded partial [`YearAnalysis`] (`store::encode_year`), absent
        /// when the stream admitted no records at all.
        analysis: Option<Vec<u8>>,
        /// Final [`AdmitState`] snapshot (capture statistics).
        admit_state: Vec<u8>,
        /// What the fault gate swallowed over the whole stream.
        faults: FaultCounters,
    },
    /// Worker → coordinator: the slice failed; the worker remains usable.
    Failed {
        /// The failed slice.
        slice: SliceSpec,
        /// Stringified error.
        message: String,
    },
    /// Coordinator → worker: no more slices; exit cleanly.
    Shutdown,
}

fn put_slice(w: &mut SnapWriter, slice: &SliceSpec) {
    w.put_u16(slice.year);
    w.put_u32(slice.part);
    w.put_u32(slice.parts);
}

fn take_slice(r: &mut SnapReader) -> Result<SliceSpec, CheckpointError> {
    Ok(SliceSpec {
        year: r.take_u16()?,
        part: r.take_u32()?,
        parts: r.take_u32()?,
    })
}

fn put_opt_bytes(w: &mut SnapWriter, bytes: Option<&[u8]>) {
    match bytes {
        None => w.put_u8(0),
        Some(b) => {
            w.put_u8(1);
            w.put_bytes(b);
        }
    }
}

fn take_opt_bytes(r: &mut SnapReader) -> Result<Option<Vec<u8>>, CheckpointError> {
    match r.take_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.take_bytes()?.to_vec())),
        tag => Err(CheckpointError::Corrupt(format!(
            "invalid option tag {tag} in distrib payload"
        ))),
    }
}

fn put_faults(w: &mut SnapWriter, faults: &FaultCounters) {
    w.put_u64(faults.records_skipped);
    w.put_u64(faults.duplicates_dropped);
    w.put_u64(faults.bytes_dropped);
    w.put_u64(faults.streams_truncated);
}

fn take_faults(r: &mut SnapReader) -> Result<FaultCounters, CheckpointError> {
    Ok(FaultCounters {
        records_skipped: r.take_u64()?,
        duplicates_dropped: r.take_u64()?,
        bytes_dropped: r.take_u64()?,
        streams_truncated: r.take_u64()?,
    })
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => KIND_HELLO,
            Message::Assign { .. } => KIND_ASSIGN,
            Message::Progress { .. } => KIND_PROGRESS,
            Message::Partial { .. } => KIND_PARTIAL,
            Message::Failed { .. } => KIND_FAILED,
            Message::Shutdown => KIND_SHUTDOWN,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        match self {
            Message::Hello { proto, worker } => {
                w.put_u32(*proto);
                w.put_bytes(worker.as_bytes());
            }
            Message::Assign {
                slice,
                every,
                die_after_checkpoints,
                job,
                resume,
            } => {
                put_slice(&mut w, slice);
                w.put_u64(*every);
                w.put_opt_u64(*die_after_checkpoints);
                w.put_bytes(job);
                put_opt_bytes(&mut w, resume.as_deref());
            }
            Message::Progress {
                slice,
                cursor,
                checkpoint,
            } => {
                put_slice(&mut w, slice);
                w.put_u64(*cursor);
                w.put_bytes(checkpoint);
            }
            Message::Partial {
                slice,
                cursor,
                analysis,
                admit_state,
                faults,
            } => {
                put_slice(&mut w, slice);
                w.put_u64(*cursor);
                put_opt_bytes(&mut w, analysis.as_deref());
                w.put_bytes(admit_state);
                put_faults(&mut w, faults);
            }
            Message::Failed { slice, message } => {
                put_slice(&mut w, slice);
                w.put_bytes(message.as_bytes());
            }
            Message::Shutdown => {}
        }
        w.into_bytes()
    }

    fn decode(kind: u8, payload: &[u8]) -> Result<Self, DistribError> {
        let mut r = SnapReader::new(payload);
        let message = match kind {
            KIND_HELLO => Message::Hello {
                proto: r.take_u32()?,
                worker: take_string(&mut r, "worker label")?,
            },
            KIND_ASSIGN => Message::Assign {
                slice: take_slice(&mut r)?,
                every: r.take_u64()?,
                die_after_checkpoints: r.take_opt_u64()?,
                job: r.take_bytes()?.to_vec(),
                resume: take_opt_bytes(&mut r)?,
            },
            KIND_PROGRESS => Message::Progress {
                slice: take_slice(&mut r)?,
                cursor: r.take_u64()?,
                checkpoint: r.take_bytes()?.to_vec(),
            },
            KIND_PARTIAL => Message::Partial {
                slice: take_slice(&mut r)?,
                cursor: r.take_u64()?,
                analysis: take_opt_bytes(&mut r)?,
                admit_state: r.take_bytes()?.to_vec(),
                faults: take_faults(&mut r)?,
            },
            KIND_FAILED => Message::Failed {
                slice: take_slice(&mut r)?,
                message: take_string(&mut r, "failure message")?,
            },
            KIND_SHUTDOWN => Message::Shutdown,
            other => {
                return Err(DistribError::Protocol(format!(
                    "unknown frame kind {other}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(DistribError::Checkpoint(CheckpointError::Corrupt(format!(
                "{} trailing bytes after message kind {kind}",
                r.remaining()
            ))));
        }
        Ok(message)
    }
}

fn take_string(r: &mut SnapReader, what: &str) -> Result<String, DistribError> {
    let bytes = r.take_bytes()?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| DistribError::Protocol(format!("{what} is not UTF-8")))
}

/// Send one message over a frame pipe (writes and flushes one frame).
pub fn send(w: &mut impl Write, message: &Message) -> Result<(), DistribError> {
    write_frame(w, message.kind(), &message.encode_payload())?;
    Ok(())
}

/// Receive one message. `Ok(None)` means the peer closed cleanly between
/// frames; every malformed byte sequence is a typed error.
pub fn recv(r: &mut impl Read) -> Result<Option<Message>, DistribError> {
    match read_frame(r, MAX_FRAME_PAYLOAD)? {
        None => Ok(None),
        Some(frame) => Message::decode(frame.kind, &frame.payload).map(Some),
    }
}

/// Everything a worker needs to drive one slice, independent of how the
/// stream and admit filter are built (the binary layer owns those).
#[derive(Debug, Clone, Copy)]
pub struct SliceTask {
    /// The slice being computed.
    pub slice: SliceSpec,
    /// Campaign thresholds (scaled to the telescope).
    pub config: CampaignConfig,
    /// Volatility period length, days.
    pub period_days: f64,
    /// Whole-stream size hints; the driver applies the per-partition share.
    pub hints: SizeHints,
    /// Fault policy for the gate.
    pub policy: FaultPolicy,
    /// Generator seed (checkpoint identity).
    pub seed: u64,
    /// Checkpoint cadence in pulled records (0 = none).
    pub every: u64,
}

/// What one finished slice produced.
#[derive(Debug)]
pub struct SliceOutcome {
    /// The partial analysis (absent when the partition admitted nothing).
    pub analysis: Option<YearAnalysis>,
    /// Gate fault tally over the whole stream.
    pub faults: FaultCounters,
    /// Stream records consumed.
    pub cursor: u64,
    /// Checkpoints emitted through the callback.
    pub checkpoints: u64,
}

/// Drive one `(year, partition)` slice over a full year stream.
///
/// The loop is the sequential supervised driver with one twist: the fault
/// gate and the admit filter see **every** record (so fault counters,
/// capture statistics, and the origin timestamp are global), but only
/// records whose source hashes into this slice's partition reach the
/// collector. Checkpoints — complete single-shard `SYNCKPT` images — are
/// handed to `on_checkpoint` at batch boundaries every `task.every` pulled
/// records; the coordinator keeps the newest as the slice's retry state.
///
/// With `resume`, the checkpoint is identity-validated against
/// `(year, seed, 1)`, the admit filter and gate are restored, and the
/// stream is fast-forwarded by exactly `cursor` records — a short or
/// misaligned replay is a typed mismatch, not a silently wrong resume.
pub fn run_slice<S, A>(
    task: &SliceTask,
    resume: Option<&Checkpoint>,
    stream: &mut S,
    admit: &mut A,
    on_checkpoint: &mut dyn FnMut(&Checkpoint) -> Result<(), DistribError>,
) -> Result<SliceOutcome, DistribError>
where
    S: TryRecordStream + ?Sized,
    A: AdmitState + ?Sized,
{
    let slice = task.slice;
    let parts = slice.parts.max(1) as usize;
    let part = slice.part as usize;
    let mut gate = FaultGate::new(task.policy);
    let mut cursor = 0u64;
    let mut seq = 0u64;
    let mut origin: Option<u64> = None;
    let mut collector: Option<YearCollector> = None;

    if let Some(ck) = resume {
        ck.validate(slice.year, task.seed, 1)?;
        admit.restore(&ck.admit_state)?;
        gate.counters = ck.faults;
        gate.last = ck.gate_last;
        cursor = ck.header.cursor;
        seq = ck.header.seq;
        origin = ck.header.origin;
        collector = ck.shard_collector(0)?;
        let consumed = skip_records(stream, cursor).map_err(PipelineError::Stream)?;
        if consumed != cursor {
            return Err(CheckpointError::Mismatch {
                field: "cursor",
                expected: cursor,
                found: consumed,
            }
            .into());
        }
    }

    let make_collector = |origin: u64| {
        let mut fresh =
            YearCollector::with_origin(slice.year, task.config, task.period_days, origin);
        task.hints.per_worker(parts).apply_to(&mut fresh);
        fresh
    };
    // A resumed slice whose checkpoint predates the partition's first
    // record carries an origin but no collector yet.
    if collector.is_none() {
        if let Some(t0) = origin {
            collector = Some(make_collector(t0));
        }
    }

    let mut next_due = if task.every > 0 {
        cursor + task.every
    } else {
        u64::MAX
    };
    let mut written = 0u64;
    'feed: loop {
        let batch = match stream.try_next_batch() {
            Ok(Some(batch)) => batch,
            Ok(None) => break,
            Err(e) => {
                gate.stream_error(e)?;
                break;
            }
        };
        cursor += batch.len() as u64;
        let mut last_admitted = None;
        for record in batch {
            match gate.offer(record).map_err(PipelineError::Stream)? {
                Gate::Pass => {
                    if admit.admit(record) {
                        if origin.is_none() {
                            origin = Some(record.ts_micros);
                            collector = Some(make_collector(record.ts_micros));
                        }
                        if shard_of(record.src_ip, parts) == part {
                            let collector =
                                collector.as_mut().expect("collector exists after origin");
                            collector.offer(record);
                            last_admitted = Some(record.ts_micros);
                        }
                    }
                }
                Gate::Drop => {}
                Gate::Stop => break 'feed,
            }
        }
        if let Some(ts) = last_admitted {
            if let Some(collector) = collector.as_mut() {
                collector.housekeeping(ts);
            }
        }
        if cursor >= next_due {
            seq += 1;
            let ck = Checkpoint {
                header: CheckpointHeader {
                    year: slice.year,
                    seed: task.seed,
                    workers: 1,
                    cursor,
                    seq,
                    origin,
                },
                gate_last: gate.last,
                faults: gate.counters,
                admit_state: admit.snapshot(),
                shards: vec![Checkpoint::encode_collector(collector.as_ref())],
            };
            on_checkpoint(&ck)?;
            written += 1;
            next_due = cursor + task.every;
        }
    }
    Ok(SliceOutcome {
        analysis: collector.map(YearCollector::finish),
        faults: gate.counters,
        cursor,
        checkpoints: written,
    })
}

/// Merge a year's slice partials back into the full-year analysis —
/// [`YearAnalysis::merge_partials`] with the sharded pipeline's
/// empty-partition fallback, so a year whose stream admitted nothing still
/// produces the (empty) analysis the sequential run would.
pub fn merge_slices(
    year: u16,
    config: CampaignConfig,
    period_days: f64,
    partials: Vec<YearAnalysis>,
) -> YearAnalysis {
    if partials.is_empty() {
        YearCollector::with_period(year, config, period_days).finish()
    } else {
        YearAnalysis::merge_partials(partials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::supervised::FilterAdmit;
    use crate::pipeline::{try_collect_year_stream, PipelineMode};
    use synscan_wire::stream::{InfallibleStream, SliceStream, StreamError};
    use synscan_wire::{Ipv4Address, ProbeRecord, TcpFlags};

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            min_distinct_dests: 5,
            min_rate_pps: 10.0,
            expiry_secs: 3600.0,
            monitored_addresses: 1 << 16,
        }
    }

    /// Same deterministic mix as the pipeline tests: 40 sources, two ports.
    fn records() -> Vec<ProbeRecord> {
        (0..4000u32)
            .map(|i| ProbeRecord {
                ts_micros: u64::from(i) * 997,
                src_ip: Ipv4Address(0x0a00_0000 + (i % 40) * 7),
                dst_ip: Ipv4Address(0x0b00_0000 + i * 13 % 5000),
                src_port: 40_000,
                dst_port: if i % 3 == 0 { 23 } else { 443 },
                seq: i ^ 0xdead_beef,
                ip_id: if i % 5 == 0 { 54_321 } else { 7 },
                ttl: 55,
                flags: TcpFlags::SYN,
                window: 1024,
            })
            .collect()
    }

    fn task(slice: SliceSpec, every: u64) -> SliceTask {
        SliceTask {
            slice,
            config: cfg(),
            period_days: 7.0,
            hints: SizeHints::sources(64),
            policy: FaultPolicy::Fail,
            seed: 42,
            every,
        }
    }

    fn run_part(
        recs: &[ProbeRecord],
        slice: SliceSpec,
        every: u64,
        sink: &mut Vec<Checkpoint>,
    ) -> SliceOutcome {
        let mut stream = SliceStream::with_batch_size(recs, 257);
        let mut stream = InfallibleStream(&mut stream);
        let mut admit = FilterAdmit(|r: &ProbeRecord| r.dst_port != 23);
        run_slice(
            &task(slice, every),
            None,
            &mut stream,
            &mut admit,
            &mut |ck| {
                sink.push(ck.clone());
                Ok(())
            },
        )
        .expect("slice runs clean")
    }

    fn sequential(recs: &[ProbeRecord]) -> YearAnalysis {
        let mut stream = SliceStream::with_batch_size(recs, 257);
        let mut stream = InfallibleStream(&mut stream);
        try_collect_year_stream(
            2020,
            cfg(),
            7.0,
            PipelineMode::Sequential,
            SizeHints::sources(64),
            FaultPolicy::Fail,
            &mut stream,
            |r| r.dst_port != 23,
        )
        .expect("sequential reference")
        .analysis
    }

    #[test]
    fn merged_slices_match_the_sequential_run_for_any_partition_count() {
        let recs = records();
        let expected = sequential(&recs);
        for parts in [1u32, 2, 4, 7] {
            let partials: Vec<YearAnalysis> = (0..parts)
                .filter_map(|part| {
                    let slice = SliceSpec {
                        year: 2020,
                        part,
                        parts,
                    };
                    run_part(&recs, slice, 0, &mut Vec::new()).analysis
                })
                .collect();
            let merged = merge_slices(2020, cfg(), 7.0, partials);
            assert_eq!(expected, merged, "parts = {parts}");
        }
    }

    #[test]
    fn slice_resume_from_any_checkpoint_reproduces_the_partial() {
        let recs = records();
        let slice = SliceSpec {
            year: 2020,
            part: 1,
            parts: 4,
        };
        let mut cuts = Vec::new();
        let reference = run_part(&recs, slice, 500, &mut cuts);
        assert!(
            cuts.len() >= 3,
            "expected several checkpoints, got {}",
            cuts.len()
        );
        let expected = reference.analysis.expect("partition is non-empty");
        for ck in &cuts {
            // Round-trip the checkpoint through its wire form first.
            let restored = Checkpoint::from_bytes(&ck.to_bytes()).expect("checkpoint roundtrip");
            let mut stream = SliceStream::with_batch_size(&recs, 257);
            let mut stream = InfallibleStream(&mut stream);
            let mut admit = FilterAdmit(|r: &ProbeRecord| r.dst_port != 23);
            let resumed = run_slice(
                &task(slice, 0),
                Some(&restored),
                &mut stream,
                &mut admit,
                &mut |_| Ok(()),
            )
            .expect("resumed slice runs clean");
            assert_eq!(
                resumed.analysis.as_ref(),
                Some(&expected),
                "resume from cursor {}",
                restored.header.cursor
            );
            assert_eq!(resumed.cursor, reference.cursor);
        }
    }

    #[test]
    fn resume_rejects_a_foreign_checkpoint() {
        let recs = records();
        let slice = SliceSpec {
            year: 2020,
            part: 0,
            parts: 2,
        };
        let mut cuts = Vec::new();
        run_part(&recs, slice, 1000, &mut cuts);
        let ck = cuts.first().expect("one checkpoint");
        let mut stream = SliceStream::with_batch_size(&recs, 257);
        let mut stream = InfallibleStream(&mut stream);
        let mut admit = FilterAdmit(|_: &ProbeRecord| true);
        let mut wrong = task(slice, 0);
        wrong.seed = 43;
        let err = run_slice(&wrong, Some(ck), &mut stream, &mut admit, &mut |_| Ok(()))
            .expect_err("foreign seed must be rejected");
        assert_eq!(
            err,
            DistribError::Checkpoint(CheckpointError::Mismatch {
                field: "seed",
                expected: 43,
                found: 42,
            })
        );
    }

    #[test]
    fn strict_policy_surfaces_stream_faults_as_typed_errors() {
        struct Faulty;
        impl TryRecordStream for Faulty {
            fn try_next_batch(&mut self) -> Result<Option<&[ProbeRecord]>, StreamError> {
                Err(StreamError::Truncated { records_seen: 0 })
            }
        }
        let slice = SliceSpec {
            year: 2020,
            part: 0,
            parts: 2,
        };
        let mut admit = FilterAdmit(|_: &ProbeRecord| true);
        let err = run_slice(&task(slice, 0), None, &mut Faulty, &mut admit, &mut |_| {
            Ok(())
        })
        .expect_err("strict policy is fatal");
        assert_eq!(
            err,
            DistribError::Pipeline(PipelineError::Stream(StreamError::Truncated {
                records_seen: 0
            }))
        );
    }

    #[test]
    fn plan_slices_crosses_years_with_partitions() {
        let slices = plan_slices(&[2015, 2016], 3);
        assert_eq!(slices.len(), 6);
        assert_eq!(
            slices[0],
            SliceSpec {
                year: 2015,
                part: 0,
                parts: 3
            }
        );
        assert_eq!(
            slices[5],
            SliceSpec {
                year: 2016,
                part: 2,
                parts: 3
            }
        );
        // Degenerate partition counts clamp to one slice per year.
        assert_eq!(plan_slices(&[2020], 0).len(), 1);
    }

    #[test]
    fn messages_roundtrip_through_the_frame_pipe() {
        let slice = SliceSpec {
            year: 2021,
            part: 3,
            parts: 8,
        };
        let messages = vec![
            Message::Hello {
                proto: PROTO_VERSION,
                worker: "repro[1234]".into(),
            },
            Message::Assign {
                slice,
                every: 500_000,
                die_after_checkpoints: Some(1),
                job: vec![1, 2, 3],
                resume: Some(vec![9; 40]),
            },
            Message::Assign {
                slice,
                every: 0,
                die_after_checkpoints: None,
                job: Vec::new(),
                resume: None,
            },
            Message::Progress {
                slice,
                cursor: 12_345,
                checkpoint: vec![7; 128],
            },
            Message::Partial {
                slice,
                cursor: 99_999,
                analysis: Some(vec![4; 256]),
                admit_state: vec![8; 56],
                faults: FaultCounters {
                    records_skipped: 1,
                    duplicates_dropped: 2,
                    bytes_dropped: 3,
                    streams_truncated: 4,
                },
            },
            Message::Partial {
                slice,
                cursor: 0,
                analysis: None,
                admit_state: Vec::new(),
                faults: FaultCounters::default(),
            },
            Message::Failed {
                slice,
                message: "stream truncated".into(),
            },
            Message::Shutdown,
        ];
        let mut pipe = Vec::new();
        for message in &messages {
            send(&mut pipe, message).unwrap();
        }
        let mut r = std::io::Cursor::new(pipe);
        for message in &messages {
            assert_eq!(recv(&mut r).unwrap().as_ref(), Some(message));
        }
        assert_eq!(recv(&mut r).unwrap(), None);
    }

    #[test]
    fn malformed_frames_yield_typed_errors_never_panics() {
        let assign = Message::Assign {
            slice: SliceSpec {
                year: 2020,
                part: 0,
                parts: 4,
            },
            every: 1,
            die_after_checkpoints: None,
            job: vec![5; 32],
            resume: None,
        };
        let mut clean = Vec::new();
        send(&mut clean, &assign).unwrap();

        // Unknown kind byte: envelope-valid, protocol-invalid.
        let mut frame = Vec::new();
        write_frame(&mut frame, 77, b"whatever").unwrap();
        match recv(&mut std::io::Cursor::new(frame)).unwrap_err() {
            DistribError::Protocol(what) => assert!(what.contains("unknown frame kind 77")),
            other => panic!("expected Protocol, got {other:?}"),
        }

        // Truncation at every prefix of a real message: each cut is a typed
        // frame error (mid-envelope) — never a panic, never Ok.
        for cut in 1..clean.len() {
            let err = recv(&mut std::io::Cursor::new(clean[..cut].to_vec()))
                .expect_err("truncated frame must error");
            assert!(
                matches!(err, DistribError::Frame(_)),
                "cut {cut}: got {err:?}"
            );
        }

        // A frame whose payload is internally truncated (checksum fixed up):
        // payload decode fails with a typed checkpoint-codec error.
        let payload = assign.encode_payload();
        for cut in 0..payload.len() {
            let mut frame = Vec::new();
            write_frame(&mut frame, KIND_ASSIGN, &payload[..cut]).unwrap();
            let err = recv(&mut std::io::Cursor::new(frame)).expect_err("short payload");
            assert!(
                matches!(err, DistribError::Checkpoint(_) | DistribError::Protocol(_)),
                "cut {cut}: got {err:?}"
            );
        }

        // Trailing garbage after a valid message body.
        let mut padded = assign.encode_payload();
        padded.extend_from_slice(&[0xee; 3]);
        let mut frame = Vec::new();
        write_frame(&mut frame, KIND_ASSIGN, &padded).unwrap();
        match recv(&mut std::io::Cursor::new(frame)).unwrap_err() {
            DistribError::Checkpoint(CheckpointError::Corrupt(what)) => {
                assert!(what.contains("trailing bytes"))
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // A flipped payload bit is caught by the envelope checksum.
        let mut flipped = clean.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(
            recv(&mut std::io::Cursor::new(flipped)).unwrap_err(),
            DistribError::Frame(FrameError::ChecksumMismatch)
        );

        // A non-UTF-8 worker label is a protocol violation, not a panic.
        let mut w = SnapWriter::new();
        w.put_u32(PROTO_VERSION);
        w.put_bytes(&[0xff, 0xfe, 0x80]);
        let mut frame = Vec::new();
        write_frame(&mut frame, KIND_HELLO, &w.into_bytes()).unwrap();
        match recv(&mut std::io::Cursor::new(frame)).unwrap_err() {
            DistribError::Protocol(what) => assert!(what.contains("not UTF-8")),
            other => panic!("expected Protocol, got {other:?}"),
        }
    }

    #[test]
    fn empty_partition_merges_to_the_empty_year() {
        let merged = merge_slices(2020, cfg(), 7.0, Vec::new());
        assert_eq!(merged.total_packets, 0);
        assert_eq!(merged.distinct_sources, 0);
        // And it matches what a sequential run over an admit-nothing stream
        // produces.
        let recs = records();
        let mut stream = SliceStream::new(&recs);
        let mut stream = InfallibleStream(&mut stream);
        let sequential_empty = try_collect_year_stream(
            2020,
            cfg(),
            7.0,
            PipelineMode::Sequential,
            SizeHints::none(),
            FaultPolicy::Fail,
            &mut stream,
            |_| false,
        )
        .unwrap()
        .analysis;
        assert_eq!(merged, sequential_empty);
    }
}
