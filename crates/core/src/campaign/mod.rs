//! Scan-campaign identification (§3.4).
//!
//! A *campaign* is a sequence of probes from one source address that hits at
//! least `min_distinct_dests` distinct telescope destinations at an estimated
//! Internet-wide rate of at least `min_rate_pps`, expiring after
//! `expiry_secs` of silence. The paper's thresholds (100 destinations,
//! 100 pps, 1 h — justified by the geometric detection model reproduced in
//! `synscan_stats::TelescopeModel`) are the defaults; scaled-telescope
//! simulations scale `min_distinct_dests` proportionally.

pub mod estimate;

use std::collections::{BTreeMap, HashMap, HashSet};

use synscan_stats::TelescopeModel;
use synscan_wire::{Ipv4Address, ProbeRecord};

use synscan_scanners::traits::ToolKind;

use crate::fingerprint::{FingerprintEngine, PacketVerdict};

pub use estimate::CampaignEstimates;

/// Detection thresholds and the telescope geometry they are evaluated
/// against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Minimum distinct telescope destinations for a probe sequence to count
    /// as a scan campaign (paper: 100).
    pub min_distinct_dests: u64,
    /// Minimum estimated Internet-wide rate in packets/second (paper: 100).
    pub min_rate_pps: f64,
    /// Idle time after which a scan is expired (paper: 3600 s).
    pub expiry_secs: f64,
    /// The telescope's monitored-address count, for extrapolation.
    pub monitored_addresses: u64,
}

impl CampaignConfig {
    /// The paper's §3.4 configuration for the full-size telescope.
    pub fn paper() -> Self {
        Self {
            min_distinct_dests: 100,
            min_rate_pps: 100.0,
            expiry_secs: 3600.0,
            monitored_addresses: 71_536,
        }
    }

    /// Thresholds for a scaled telescope: the destination threshold shrinks
    /// with the telescope so the same Internet-wide scans stay detectable
    /// (floor of 4 destinations to keep noise out), and the idle expiry
    /// *grows* inversely — the paper's 1 h was calibrated so a threshold
    /// (100 pps) scanner hits their telescope every ~10 minutes; a telescope
    /// `k`× smaller sees gaps `k`× longer, so the equivalent expiry is
    /// `k` hours (capped at 18 h so daily-recurring scanners still split
    /// into daily campaigns).
    pub fn scaled(monitored_addresses: u64) -> Self {
        let paper = Self::paper();
        let ratio = monitored_addresses as f64 / paper.monitored_addresses as f64;
        Self {
            min_distinct_dests: ((paper.min_distinct_dests as f64 * ratio).round() as u64).max(4),
            expiry_secs: (paper.expiry_secs / ratio).clamp(3600.0, 64_800.0),
            monitored_addresses,
            ..paper
        }
    }

    /// The telescope detection/extrapolation model for this configuration.
    pub fn model(&self) -> TelescopeModel {
        TelescopeModel::new(self.monitored_addresses)
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One identified scan campaign with its observed and extrapolated metrics.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Campaign {
    /// The scanning source.
    pub src_ip: Ipv4Address,
    /// First probe timestamp (µs).
    pub first_ts_micros: u64,
    /// Last probe timestamp (µs).
    pub last_ts_micros: u64,
    /// Probes received at the telescope.
    pub packets: u64,
    /// Distinct telescope destinations hit.
    pub distinct_dests: u64,
    /// Packets per destination port.
    pub port_packets: BTreeMap<u16, u64>,
    /// Fingerprint votes per tool.
    pub tool_votes: BTreeMap<ToolKind, u64>,
}

impl Campaign {
    /// Observed duration in seconds (zero for single-burst campaigns).
    pub fn duration_secs(&self) -> f64 {
        (self.last_ts_micros - self.first_ts_micros) as f64 / 1e6
    }

    /// Number of distinct destination ports.
    pub fn distinct_ports(&self) -> usize {
        self.port_packets.len()
    }

    /// Majority-vote tool attribution; `None` when no tracked tool matched.
    pub fn tool(&self) -> Option<ToolKind> {
        self.tool_votes
            .iter()
            .max_by_key(|(_, votes)| **votes)
            .filter(|(_, votes)| **votes > 0)
            .map(|(tool, _)| *tool)
    }

    /// Extrapolated metrics under the given telescope model.
    pub fn estimates(&self, model: &TelescopeModel) -> CampaignEstimates {
        CampaignEstimates::from_campaign(self, model)
    }
}

/// Why a finalized probe sequence was not a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum RejectReason {
    /// Fewer distinct destinations than the threshold.
    TooFewDestinations,
    /// Estimated Internet-wide rate below the threshold.
    TooSlow,
}

/// Aggregate counters for rejected (non-campaign) traffic.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct NoiseStats {
    /// Probe sequences rejected, by reason.
    pub rejected_sequences: BTreeMap<String, u64>,
    /// Packets inside rejected sequences.
    pub rejected_packets: u64,
}

#[derive(Debug)]
struct OpenScan {
    first_ts_micros: u64,
    last_ts_micros: u64,
    packets: u64,
    dests: HashSet<u32>,
    port_packets: BTreeMap<u16, u64>,
    tool_votes: BTreeMap<ToolKind, u64>,
}

impl OpenScan {
    fn new(record: &ProbeRecord) -> Self {
        Self {
            first_ts_micros: record.ts_micros,
            last_ts_micros: record.ts_micros,
            packets: 0,
            dests: HashSet::new(),
            port_packets: BTreeMap::new(),
            tool_votes: BTreeMap::new(),
        }
    }

    fn add(&mut self, record: &ProbeRecord, tool: Option<ToolKind>) {
        // Robust to mildly out-of-order input (pcap merge artifacts): the
        // interval only ever widens, so durations never underflow.
        self.first_ts_micros = self.first_ts_micros.min(record.ts_micros);
        self.last_ts_micros = self.last_ts_micros.max(record.ts_micros);
        self.packets += 1;
        self.dests.insert(record.dst_ip.0);
        *self.port_packets.entry(record.dst_port).or_default() += 1;
        if let Some(tool) = tool {
            *self.tool_votes.entry(tool).or_default() += 1;
        }
    }

    fn into_campaign(self, src_ip: Ipv4Address) -> Campaign {
        Campaign {
            src_ip,
            first_ts_micros: self.first_ts_micros,
            last_ts_micros: self.last_ts_micros,
            packets: self.packets,
            distinct_dests: self.dests.len() as u64,
            port_packets: self.port_packets,
            tool_votes: self.tool_votes,
        }
    }
}

/// The streaming campaign detector.
///
/// Feed records in timestamp order via [`CampaignDetector::offer`]; call
/// [`CampaignDetector::finish`] at end of stream.
///
/// ```
/// use synscan_core::campaign::{CampaignConfig, CampaignDetector};
/// use synscan_wire::{Ipv4Address, ProbeRecord, TcpFlags};
///
/// let mut detector = CampaignDetector::new(CampaignConfig {
///     min_distinct_dests: 10,
///     min_rate_pps: 1.0,
///     expiry_secs: 3600.0,
///     monitored_addresses: 1 << 16,
/// });
/// for i in 0..50u32 {
///     detector.offer(
///         &ProbeRecord {
///             ts_micros: u64::from(i) * 10_000,
///             src_ip: Ipv4Address::new(203, 0, 113, 9),
///             dst_ip: Ipv4Address(0x0a00_0000 + i),
///             src_port: 40000,
///             dst_port: 443,
///             seq: 7,
///             ip_id: 54_321, // the ZMap mark
///             ttl: 55,
///             flags: TcpFlags::SYN,
///             window: 1024,
///         },
///         Some(synscan_core::ToolKind::Zmap),
///     );
/// }
/// let (campaigns, noise) = detector.finish();
/// assert_eq!(campaigns.len(), 1);
/// assert_eq!(campaigns[0].tool(), Some(synscan_core::ToolKind::Zmap));
/// assert_eq!(noise.rejected_packets, 0);
/// ```
#[derive(Debug)]
pub struct CampaignDetector {
    config: CampaignConfig,
    open: HashMap<Ipv4Address, OpenScan>,
    campaigns: Vec<Campaign>,
    noise: NoiseStats,
}

impl CampaignDetector {
    /// Detector with the given thresholds.
    pub fn new(config: CampaignConfig) -> Self {
        Self {
            config,
            open: HashMap::new(),
            campaigns: Vec::new(),
            noise: NoiseStats::default(),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Offer one record with its fingerprint verdict.
    pub fn offer(&mut self, record: &ProbeRecord, tool: Option<ToolKind>) {
        let expiry_micros = (self.config.expiry_secs * 1e6) as u64;
        if let Some(scan) = self.open.get(&record.src_ip) {
            if record.ts_micros.saturating_sub(scan.last_ts_micros) > expiry_micros {
                let scan = self.open.remove(&record.src_ip).unwrap();
                self.finalize(record.src_ip, scan);
            }
        }
        self.open
            .entry(record.src_ip)
            .or_insert_with(|| OpenScan::new(record))
            .add(record, tool);
    }

    /// Expire every open scan idle since before `now_micros` (bounded-memory
    /// operation over long streams).
    pub fn expire_idle(&mut self, now_micros: u64) {
        let expiry_micros = (self.config.expiry_secs * 1e6) as u64;
        let expired: Vec<Ipv4Address> = self
            .open
            .iter()
            .filter(|(_, s)| now_micros.saturating_sub(s.last_ts_micros) > expiry_micros)
            .map(|(ip, _)| *ip)
            .collect();
        for ip in expired {
            let scan = self.open.remove(&ip).unwrap();
            self.finalize(ip, scan);
        }
    }

    /// End of stream: finalize everything and return results.
    pub fn finish(mut self) -> (Vec<Campaign>, NoiseStats) {
        let open: Vec<(Ipv4Address, OpenScan)> = self.open.drain().collect();
        for (ip, scan) in open {
            self.finalize(ip, scan);
        }
        self.campaigns
            .sort_by_key(|c| (c.first_ts_micros, c.src_ip));
        (self.campaigns, self.noise)
    }

    fn finalize(&mut self, src_ip: Ipv4Address, scan: OpenScan) {
        let reason = self.check(&scan);
        match reason {
            None => self.campaigns.push(scan.into_campaign(src_ip)),
            Some(reason) => {
                *self
                    .noise
                    .rejected_sequences
                    .entry(format!("{reason:?}"))
                    .or_default() += 1;
                self.noise.rejected_packets += scan.packets;
            }
        }
    }

    fn check(&self, scan: &OpenScan) -> Option<RejectReason> {
        if (scan.dests.len() as u64) < self.config.min_distinct_dests {
            return Some(RejectReason::TooFewDestinations);
        }
        let duration = (scan.last_ts_micros - scan.first_ts_micros) as f64 / 1e6;
        if duration > 0.0 {
            let telescope_rate = scan.packets as f64 / duration;
            let est = self.config.model().extrapolate_rate(telescope_rate);
            if est < self.config.min_rate_pps {
                return Some(RejectReason::TooSlow);
            }
        }
        None
    }
}

/// Convenience wrapper running fingerprinting and campaign detection in one
/// pass — the §3 pipeline end to end.
#[derive(Debug)]
pub struct Pipeline {
    engine: FingerprintEngine,
    detector: CampaignDetector,
}

impl Pipeline {
    /// New pipeline with the given campaign thresholds.
    ///
    /// The fingerprint engine shares the detector's idle expiry, so a
    /// source silent long enough to close its scan also restarts its
    /// pairwise history — deterministically, whatever the housekeeping
    /// cadence. This keeps sharded and sequential runs bit-identical.
    pub fn new(config: CampaignConfig) -> Self {
        Self {
            engine: FingerprintEngine::with_expiry((config.expiry_secs * 1e6) as u64),
            detector: CampaignDetector::new(config),
        }
    }

    /// Process one record: fingerprint, then feed the detector. Returns the
    /// per-packet verdict.
    pub fn process(&mut self, record: &ProbeRecord) -> PacketVerdict {
        let verdict = self.engine.classify(record);
        self.detector.offer(record, verdict.tool());
        verdict
    }

    /// Periodic housekeeping for long streams.
    pub fn housekeeping(&mut self, now_micros: u64) {
        let expiry = (self.detector.config().expiry_secs * 1e6) as u64;
        self.engine.evict_idle(now_micros.saturating_sub(expiry));
        self.detector.expire_idle(now_micros);
    }

    /// Finish and return campaigns plus noise statistics.
    pub fn finish(self) -> (Vec<Campaign>, NoiseStats) {
        self.detector.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synscan_wire::TcpFlags;

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            min_distinct_dests: 10,
            min_rate_pps: 100.0,
            expiry_secs: 3600.0,
            monitored_addresses: 1 << 16,
        }
    }

    fn record(src: u32, dst: u32, port: u16, ts_micros: u64) -> ProbeRecord {
        ProbeRecord {
            ts_micros,
            src_ip: Ipv4Address(src),
            dst_ip: Ipv4Address(dst),
            src_port: 1000,
            dst_port: port,
            seq: dst ^ 0x5555_aaaa,
            ip_id: 7,
            ttl: 60,
            flags: TcpFlags::SYN,
            window: 1024,
        }
    }

    #[test]
    fn a_fast_wide_scan_becomes_a_campaign() {
        let mut det = CampaignDetector::new(cfg());
        // 50 distinct destinations in 1 second: telescope rate 50 pps,
        // extrapolated 50 × 2^32/2^16 = 3.3M pps — clearly a campaign.
        for i in 0..50u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 20_000), None);
        }
        let (campaigns, noise) = det.finish();
        assert_eq!(campaigns.len(), 1);
        assert_eq!(campaigns[0].distinct_dests, 50);
        assert_eq!(campaigns[0].packets, 50);
        assert_eq!(noise.rejected_packets, 0);
    }

    #[test]
    fn too_few_destinations_is_noise() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..5u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), None);
        }
        let (campaigns, noise) = det.finish();
        assert!(campaigns.is_empty());
        assert_eq!(noise.rejected_packets, 5);
        assert_eq!(noise.rejected_sequences.get("TooFewDestinations"), Some(&1));
    }

    #[test]
    fn slow_scans_are_rejected() {
        let mut det = CampaignDetector::new(cfg());
        // 20 destinations over 20,000 seconds: telescope rate 0.001 pps,
        // extrapolated ≈ 65 pps < 100 pps threshold.
        for i in 0..20u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1_000_000_000), None);
        }
        // All probes are within the 1 h expiry? No — 1000 s gaps, fine.
        let (campaigns, noise) = det.finish();
        assert!(campaigns.is_empty());
        assert_eq!(noise.rejected_sequences.get("TooSlow"), Some(&1));
    }

    #[test]
    fn idle_gap_splits_campaigns() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..15u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), None);
        }
        // Resume two hours later.
        let later = 2 * 3600 * 1_000_000u64;
        for i in 0..15u32 {
            det.offer(&record(1, 500 + i, 443, later + (i as u64) * 1000), None);
        }
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns.len(), 2);
        assert!(campaigns[0].last_ts_micros < campaigns[1].first_ts_micros);
        assert_eq!(campaigns[0].port_packets.keys().collect::<Vec<_>>(), [&80]);
        assert_eq!(campaigns[1].port_packets.keys().collect::<Vec<_>>(), [&443]);
    }

    #[test]
    fn sources_are_tracked_independently() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..12u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), None);
            det.offer(&record(2, 200 + i, 22, (i as u64) * 1000 + 7), None);
        }
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns.len(), 2);
        let srcs: Vec<u32> = campaigns.iter().map(|c| c.src_ip.0).collect();
        assert!(srcs.contains(&1) && srcs.contains(&2));
    }

    #[test]
    fn repeated_destinations_do_not_inflate_distinct_count() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..100u32 {
            det.offer(&record(1, 100 + (i % 5), 80, (i as u64) * 1000), None);
        }
        let (campaigns, noise) = det.finish();
        assert!(campaigns.is_empty(), "only 5 distinct destinations");
        assert_eq!(noise.rejected_packets, 100);
    }

    #[test]
    fn tool_votes_produce_majority_attribution() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..20u32 {
            let tool = if i < 15 {
                Some(ToolKind::Zmap)
            } else if i < 18 {
                Some(ToolKind::Masscan)
            } else {
                None
            };
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), tool);
        }
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns[0].tool(), Some(ToolKind::Zmap));
        assert_eq!(campaigns[0].tool_votes[&ToolKind::Zmap], 15);
    }

    #[test]
    fn campaign_without_votes_has_no_tool() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..20u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), None);
        }
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns[0].tool(), None);
    }

    #[test]
    fn multi_port_campaign_metrics() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..30u32 {
            let port = [80u16, 8080, 443][i as usize % 3];
            det.offer(&record(1, 100 + i, port, (i as u64) * 1000), None);
        }
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns[0].distinct_ports(), 3);
        assert_eq!(campaigns[0].port_packets[&80], 10);
    }

    #[test]
    fn out_of_order_timestamps_do_not_break_durations() {
        // A record arriving with an older timestamp (pcap merge artifact)
        // must widen the interval instead of inverting it.
        let mut det = CampaignDetector::new(cfg());
        det.offer(&record(1, 100, 80, 5_000_000), None);
        for i in 0..12u32 {
            det.offer(&record(1, 101 + i, 80, 4_000_000 + (i as u64) * 1000), None);
        }
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns.len(), 1);
        assert!(campaigns[0].duration_secs() >= 0.0);
        assert_eq!(campaigns[0].first_ts_micros, 4_000_000);
        assert_eq!(campaigns[0].last_ts_micros, 5_000_000);
    }

    #[test]
    fn expire_idle_flushes_old_scans() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..15u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), None);
        }
        det.expire_idle(2 * 3600 * 1_000_000);
        assert_eq!(det.open.len(), 0);
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns.len(), 1);
    }

    #[test]
    fn scaled_config_scales_the_destination_threshold() {
        let scaled = CampaignConfig::scaled(71_536 / 64);
        assert!(scaled.min_distinct_dests < 10);
        assert!(scaled.min_distinct_dests >= 4);
        assert_eq!(scaled.min_rate_pps, 100.0);
        // Expiry grows with the inverse telescope ratio, capped at 18 h.
        assert_eq!(scaled.expiry_secs, 64_800.0);
        let quarter = CampaignConfig::scaled(71_536 / 4);
        assert!((quarter.expiry_secs - 4.0 * 3600.0).abs() < 1.0);
        let full = CampaignConfig::scaled(71_536);
        assert_eq!(full.min_distinct_dests, 100);
        assert_eq!(full.expiry_secs, 3600.0);
    }

    #[test]
    fn pipeline_combines_fingerprint_and_detection() {
        use synscan_scanners::traits::craft_record;
        use synscan_scanners::zmap::ZmapScanner;
        let mut pipeline = Pipeline::new(cfg());
        let z = ZmapScanner::new(1);
        for i in 0..20u64 {
            let rec = craft_record(
                &z,
                Ipv4Address(77),
                Ipv4Address(0x0900_0000 + i as u32),
                443,
                i,
                i * 5000,
                9,
            );
            pipeline.process(&rec);
        }
        let (campaigns, _) = pipeline.finish();
        assert_eq!(campaigns.len(), 1);
        assert_eq!(campaigns[0].tool(), Some(ToolKind::Zmap));
    }
}
