//! Scan-campaign identification (§3.4).
//!
//! A *campaign* is a sequence of probes from one source address that hits at
//! least `min_distinct_dests` distinct telescope destinations at an estimated
//! Internet-wide rate of at least `min_rate_pps`, expiring after
//! `expiry_secs` of silence. The paper's thresholds (100 destinations,
//! 100 pps, 1 h — justified by the geometric detection model reproduced in
//! `synscan_stats::TelescopeModel`) are the defaults; scaled-telescope
//! simulations scale `min_distinct_dests` proportionally.
//!
//! Internally the detector is built around interned source ids
//! ([`crate::intern::SourceTable`]): per-source open-scan state lives in a
//! dense `Vec` indexed by id rather than an IP-keyed hash map, so the admit
//! path performs no per-source hashing of its own (the caller either passes
//! an already-interned id or the detector's table does the one probe).

pub mod estimate;

use std::collections::BTreeMap;
use std::fmt;

use synscan_stats::TelescopeModel;
use synscan_wire::{Ipv4Address, ProbeRecord};

use synscan_scanners::traits::ToolKind;

use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use crate::fasthash::FxHashSet;
use crate::fingerprint::{InternedFingerprint, PacketVerdict};
use crate::intern::{SourceId, SourceTable};

pub use estimate::CampaignEstimates;

/// Detection thresholds and the telescope geometry they are evaluated
/// against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Minimum distinct telescope destinations for a probe sequence to count
    /// as a scan campaign (paper: 100).
    pub min_distinct_dests: u64,
    /// Minimum estimated Internet-wide rate in packets/second (paper: 100).
    pub min_rate_pps: f64,
    /// Idle time after which a scan is expired (paper: 3600 s).
    pub expiry_secs: f64,
    /// The telescope's monitored-address count, for extrapolation.
    pub monitored_addresses: u64,
}

impl CampaignConfig {
    /// The paper's §3.4 configuration for the full-size telescope.
    pub fn paper() -> Self {
        Self {
            min_distinct_dests: 100,
            min_rate_pps: 100.0,
            expiry_secs: 3600.0,
            monitored_addresses: 71_536,
        }
    }

    /// Thresholds for a scaled telescope: the destination threshold shrinks
    /// with the telescope so the same Internet-wide scans stay detectable
    /// (floor of 4 destinations to keep noise out), and the idle expiry
    /// *grows* inversely — the paper's 1 h was calibrated so a threshold
    /// (100 pps) scanner hits their telescope every ~10 minutes; a telescope
    /// `k`× smaller sees gaps `k`× longer, so the equivalent expiry is
    /// `k` hours (capped at 18 h so daily-recurring scanners still split
    /// into daily campaigns).
    pub fn scaled(monitored_addresses: u64) -> Self {
        let paper = Self::paper();
        let ratio = monitored_addresses as f64 / paper.monitored_addresses as f64;
        Self {
            min_distinct_dests: ((paper.min_distinct_dests as f64 * ratio).round() as u64).max(4),
            expiry_secs: (paper.expiry_secs / ratio).clamp(3600.0, 64_800.0),
            monitored_addresses,
            ..paper
        }
    }

    /// The telescope detection/extrapolation model for this configuration.
    pub fn model(&self) -> TelescopeModel {
        TelescopeModel::new(self.monitored_addresses)
    }

    /// Serialize the thresholds for a pipeline checkpoint (floats as raw
    /// IEEE-754 bits, so the round trip is exact).
    pub fn snapshot_to(&self, w: &mut SnapWriter) {
        w.put_u64(self.min_distinct_dests);
        w.put_f64(self.min_rate_pps);
        w.put_f64(self.expiry_secs);
        w.put_u64(self.monitored_addresses);
    }

    /// Rebuild a configuration written by [`CampaignConfig::snapshot_to`].
    pub fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, CheckpointError> {
        Ok(Self {
            min_distinct_dests: r.take_u64()?,
            min_rate_pps: r.take_f64()?,
            expiry_secs: r.take_f64()?,
            monitored_addresses: r.take_u64()?,
        })
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One identified scan campaign with its observed and extrapolated metrics.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Campaign {
    /// The scanning source.
    pub src_ip: Ipv4Address,
    /// First probe timestamp (µs).
    pub first_ts_micros: u64,
    /// Last probe timestamp (µs).
    pub last_ts_micros: u64,
    /// Probes received at the telescope.
    pub packets: u64,
    /// Distinct telescope destinations hit.
    pub distinct_dests: u64,
    /// Packets per destination port.
    pub port_packets: BTreeMap<u16, u64>,
    /// Fingerprint votes per tool.
    pub tool_votes: BTreeMap<ToolKind, u64>,
}

impl Campaign {
    /// Observed duration in seconds (zero for single-burst campaigns).
    pub fn duration_secs(&self) -> f64 {
        (self.last_ts_micros - self.first_ts_micros) as f64 / 1e6
    }

    /// Number of distinct destination ports.
    pub fn distinct_ports(&self) -> usize {
        self.port_packets.len()
    }

    /// Majority-vote tool attribution; `None` when no tracked tool matched.
    pub fn tool(&self) -> Option<ToolKind> {
        self.tool_votes
            .iter()
            .max_by_key(|(_, votes)| **votes)
            .filter(|(_, votes)| **votes > 0)
            .map(|(tool, _)| *tool)
    }

    /// Extrapolated metrics under the given telescope model.
    pub fn estimates(&self, model: &TelescopeModel) -> CampaignEstimates {
        CampaignEstimates::from_campaign(self, model)
    }

    /// Serialize the campaign for a pipeline checkpoint.
    pub fn snapshot_to(&self, w: &mut SnapWriter) {
        w.put_u32(self.src_ip.0);
        w.put_u64(self.first_ts_micros);
        w.put_u64(self.last_ts_micros);
        w.put_u64(self.packets);
        w.put_u64(self.distinct_dests);
        w.put_u64(self.port_packets.len() as u64);
        for (&port, &packets) in &self.port_packets {
            w.put_u16(port);
            w.put_u64(packets);
        }
        w.put_u64(self.tool_votes.len() as u64);
        for (&tool, &votes) in &self.tool_votes {
            w.put_tool(tool);
            w.put_u64(votes);
        }
    }

    /// Rebuild a campaign written by [`Campaign::snapshot_to`].
    pub fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, CheckpointError> {
        let src_ip = Ipv4Address(r.take_u32()?);
        let first_ts_micros = r.take_u64()?;
        let last_ts_micros = r.take_u64()?;
        let packets = r.take_u64()?;
        let distinct_dests = r.take_u64()?;
        let ports = r.take_len(10)?;
        let mut port_packets = BTreeMap::new();
        for _ in 0..ports {
            let port = r.take_u16()?;
            let packets = r.take_u64()?;
            port_packets.insert(port, packets);
        }
        let tools = r.take_len(9)?;
        let mut tool_votes = BTreeMap::new();
        for _ in 0..tools {
            let tool = r.take_tool()?;
            let votes = r.take_u64()?;
            tool_votes.insert(tool, votes);
        }
        Ok(Self {
            src_ip,
            first_ts_micros,
            last_ts_micros,
            packets,
            distinct_dests,
            port_packets,
            tool_votes,
        })
    }
}

/// Why a finalized probe sequence was not a campaign.
///
/// Declaration order matches the lexicographic order of the variant names,
/// so a `BTreeMap<RejectReason, _>` iterates (and serializes) in the same
/// order the old string-keyed map did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize)]
pub enum RejectReason {
    /// Fewer distinct destinations than the threshold.
    TooFewDestinations,
    /// Estimated Internet-wide rate below the threshold.
    TooSlow,
}

impl RejectReason {
    /// The stable string name of the reason (identical to its `Debug` and
    /// serde renderings) — the report-time stringification point.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::TooFewDestinations => "TooFewDestinations",
            RejectReason::TooSlow => "TooSlow",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Checkpoint wire code of a reject reason.
fn reject_code(reason: RejectReason) -> u8 {
    match reason {
        RejectReason::TooFewDestinations => 0,
        RejectReason::TooSlow => 1,
    }
}

/// Inverse of [`reject_code`].
fn reject_from_code(code: u8) -> Result<RejectReason, CheckpointError> {
    match code {
        0 => Ok(RejectReason::TooFewDestinations),
        1 => Ok(RejectReason::TooSlow),
        c => Err(CheckpointError::Corrupt(format!("reject-reason code {c}"))),
    }
}

/// Aggregate counters for rejected (non-campaign) traffic.
///
/// Counters are keyed by the [`RejectReason`] enum — zero allocation on the
/// reject path — and stringified only at report time
/// ([`crate::report::render_noise`]). The serialized form is unchanged:
/// serde renders unit-variant map keys as their names.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct NoiseStats {
    /// Probe sequences rejected, by reason.
    pub rejected_sequences: BTreeMap<RejectReason, u64>,
    /// Packets inside rejected sequences.
    pub rejected_packets: u64,
}

impl NoiseStats {
    /// Serialize the counters for a pipeline checkpoint.
    pub fn snapshot_to(&self, w: &mut SnapWriter) {
        w.put_u64(self.rejected_sequences.len() as u64);
        for (&reason, &count) in &self.rejected_sequences {
            w.put_u8(reject_code(reason));
            w.put_u64(count);
        }
        w.put_u64(self.rejected_packets);
    }

    /// Rebuild counters written by [`NoiseStats::snapshot_to`].
    pub fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, CheckpointError> {
        let len = r.take_len(9)?;
        let mut rejected_sequences = BTreeMap::new();
        for _ in 0..len {
            let reason = reject_from_code(r.take_u8()?)?;
            let count = r.take_u64()?;
            rejected_sequences.insert(reason, count);
        }
        Ok(Self {
            rejected_sequences,
            rejected_packets: r.take_u64()?,
        })
    }
}

/// Number of fingerprintable tools (the arity of the vote array).
pub(crate) const TOOL_SLOTS: usize = 6;

/// Tools in declaration (= `Ord`) order, indexed by vote slot. Rebuilding a
/// `BTreeMap` by inserting in this order reproduces the map the old
/// per-record `entry()` calls built.
pub(crate) const TOOL_BY_SLOT: [ToolKind; TOOL_SLOTS] = [
    ToolKind::Zmap,
    ToolKind::Masscan,
    ToolKind::Nmap,
    ToolKind::Mirai,
    ToolKind::Unicorn,
    ToolKind::Custom,
];

/// Dense vote-array index of a tool (declaration order).
#[inline]
pub(crate) fn tool_slot(tool: ToolKind) -> usize {
    match tool {
        ToolKind::Zmap => 0,
        ToolKind::Masscan => 1,
        ToolKind::Nmap => 2,
        ToolKind::Mirai => 3,
        ToolKind::Unicorn => 4,
        ToolKind::Custom => 5,
    }
}

/// In-flight per-source scan state, laid out for reuse: the sorted port vec
/// and the destination set keep their capacity across open/close cycles of
/// the same source, and tool votes are a fixed array instead of a map.
#[derive(Debug, Clone, PartialEq)]
struct OpenScan {
    first_ts_micros: u64,
    last_ts_micros: u64,
    packets: u64,
    dests: FxHashSet<u32>,
    /// Sorted by port; campaigns rarely touch more than a handful.
    port_packets: Vec<(u16, u64)>,
    tool_votes: [u64; TOOL_SLOTS],
}

impl Default for OpenScan {
    fn default() -> Self {
        Self {
            first_ts_micros: 0,
            last_ts_micros: 0,
            packets: 0,
            dests: FxHashSet::default(),
            port_packets: Vec::new(),
            tool_votes: [0; TOOL_SLOTS],
        }
    }
}

/// Past this many retained destination buckets, a released scan's set is
/// dropped instead of cleared, so one giant historical campaign cannot pin
/// memory for the rest of the year.
const DESTS_KEEP_CAPACITY: usize = 4096;

impl OpenScan {
    /// Reset for a fresh sequence starting at `record` (counters were already
    /// cleared by the previous [`OpenScan::release`], but resetting here too
    /// keeps the invariant local).
    fn open(&mut self, record: &ProbeRecord) {
        self.release();
        self.first_ts_micros = record.ts_micros;
        self.last_ts_micros = record.ts_micros;
    }

    fn add(&mut self, record: &ProbeRecord, tool: Option<ToolKind>) {
        // Robust to mildly out-of-order input (pcap merge artifacts): the
        // interval only ever widens, so durations never underflow.
        self.first_ts_micros = self.first_ts_micros.min(record.ts_micros);
        self.last_ts_micros = self.last_ts_micros.max(record.ts_micros);
        self.packets += 1;
        self.dests.insert(record.dst_ip.0);
        match self
            .port_packets
            .binary_search_by_key(&record.dst_port, |&(port, _)| port)
        {
            Ok(i) => self.port_packets[i].1 += 1,
            Err(i) => self.port_packets.insert(i, (record.dst_port, 1)),
        }
        if let Some(tool) = tool {
            self.tool_votes[tool_slot(tool)] += 1;
        }
    }

    /// Convert the accumulated state into a [`Campaign`] and clear it for
    /// reuse.
    fn take_campaign(&mut self, src_ip: Ipv4Address) -> Campaign {
        let port_packets: BTreeMap<u16, u64> = self.port_packets.iter().copied().collect();
        let mut tool_votes = BTreeMap::new();
        for (slot, &votes) in self.tool_votes.iter().enumerate() {
            if votes > 0 {
                tool_votes.insert(TOOL_BY_SLOT[slot], votes);
            }
        }
        let campaign = Campaign {
            src_ip,
            first_ts_micros: self.first_ts_micros,
            last_ts_micros: self.last_ts_micros,
            packets: self.packets,
            distinct_dests: self.dests.len() as u64,
            port_packets,
            tool_votes,
        };
        self.release();
        campaign
    }

    /// Clear counters, retaining (bounded) capacity for the next sequence.
    fn release(&mut self) {
        self.packets = 0;
        self.port_packets.clear();
        self.tool_votes = [0; TOOL_SLOTS];
        if self.dests.capacity() > DESTS_KEEP_CAPACITY {
            self.dests = FxHashSet::default();
        } else {
            self.dests.clear();
        }
    }

    /// Serialize for a pipeline checkpoint. Destinations are written in
    /// sorted order so the byte stream is independent of hash-set iteration
    /// order.
    fn snapshot_to(&self, w: &mut SnapWriter) {
        w.put_u64(self.first_ts_micros);
        w.put_u64(self.last_ts_micros);
        w.put_u64(self.packets);
        let mut dests: Vec<u32> = self.dests.iter().copied().collect();
        dests.sort_unstable();
        w.put_u64(dests.len() as u64);
        for dest in dests {
            w.put_u32(dest);
        }
        w.put_u64(self.port_packets.len() as u64);
        for &(port, packets) in &self.port_packets {
            w.put_u16(port);
            w.put_u64(packets);
        }
        for &votes in &self.tool_votes {
            w.put_u64(votes);
        }
    }

    /// Rebuild state written by [`OpenScan::snapshot_to`].
    fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, CheckpointError> {
        let first_ts_micros = r.take_u64()?;
        let last_ts_micros = r.take_u64()?;
        let packets = r.take_u64()?;
        let n_dests = r.take_len(4)?;
        let mut dests = FxHashSet::default();
        dests.reserve(n_dests);
        for _ in 0..n_dests {
            dests.insert(r.take_u32()?);
        }
        if dests.len() != n_dests {
            return Err(CheckpointError::Corrupt(
                "duplicate destination in open-scan snapshot".into(),
            ));
        }
        let n_ports = r.take_len(10)?;
        let mut port_packets = Vec::with_capacity(n_ports);
        for _ in 0..n_ports {
            let port = r.take_u16()?;
            let packets = r.take_u64()?;
            if let Some(&(prev, _)) = port_packets.last() {
                if prev >= port {
                    return Err(CheckpointError::Corrupt(
                        "open-scan port list not strictly sorted".into(),
                    ));
                }
            }
            port_packets.push((port, packets));
        }
        let mut tool_votes = [0u64; TOOL_SLOTS];
        for votes in &mut tool_votes {
            *votes = r.take_u64()?;
        }
        Ok(Self {
            first_ts_micros,
            last_ts_micros,
            packets,
            dests,
            port_packets,
            tool_votes,
        })
    }
}

/// Sentinel for "this source has no open scan".
const NOT_ACTIVE: u32 = u32::MAX;

/// Per-source slot: position in the active list (or [`NOT_ACTIVE`]) plus the
/// reusable scan state.
#[derive(Debug, Clone, PartialEq)]
struct SourceSlot {
    active_pos: u32,
    scan: OpenScan,
}

impl Default for SourceSlot {
    fn default() -> Self {
        Self {
            active_pos: NOT_ACTIVE,
            scan: OpenScan::default(),
        }
    }
}

/// The streaming campaign detector.
///
/// Feed records in timestamp order via [`CampaignDetector::offer`]; call
/// [`CampaignDetector::finish`] at end of stream.
///
/// ```
/// use synscan_core::campaign::{CampaignConfig, CampaignDetector};
/// use synscan_wire::{Ipv4Address, ProbeRecord, TcpFlags};
///
/// let mut detector = CampaignDetector::new(CampaignConfig {
///     min_distinct_dests: 10,
///     min_rate_pps: 1.0,
///     expiry_secs: 3600.0,
///     monitored_addresses: 1 << 16,
/// });
/// for i in 0..50u32 {
///     detector.offer(
///         &ProbeRecord {
///             ts_micros: u64::from(i) * 10_000,
///             src_ip: Ipv4Address::new(203, 0, 113, 9),
///             dst_ip: Ipv4Address(0x0a00_0000 + i),
///             src_port: 40000,
///             dst_port: 443,
///             seq: 7,
///             ip_id: 54_321, // the ZMap mark
///             ttl: 55,
///             flags: TcpFlags::SYN,
///             window: 1024,
///         },
///         Some(synscan_core::ToolKind::Zmap),
///     );
/// }
/// let (campaigns, noise) = detector.finish();
/// assert_eq!(campaigns.len(), 1);
/// assert_eq!(campaigns[0].tool(), Some(synscan_core::ToolKind::Zmap));
/// assert_eq!(noise.rejected_packets, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignDetector {
    config: CampaignConfig,
    /// `config.expiry_secs` in µs, precomputed off the per-record path.
    expiry_micros: u64,
    table: SourceTable,
    /// Per-source state, indexed by interned id.
    slots: Vec<SourceSlot>,
    /// Ids with an open scan, for O(active) expiry sweeps. Unordered;
    /// membership position is mirrored in `SourceSlot::active_pos`.
    active: Vec<SourceId>,
    campaigns: Vec<Campaign>,
    noise: NoiseStats,
}

impl CampaignDetector {
    /// Detector with the given thresholds.
    pub fn new(config: CampaignConfig) -> Self {
        Self {
            config,
            expiry_micros: (config.expiry_secs * 1e6) as u64,
            table: SourceTable::new(),
            slots: Vec::new(),
            active: Vec::new(),
            campaigns: Vec::new(),
            noise: NoiseStats::default(),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Pre-size the interner and slot table for roughly `sources` distinct
    /// addresses.
    pub fn reserve(&mut self, sources: usize) {
        self.table.reserve(sources);
        self.slots.reserve(sources);
    }

    /// Intern `ip` in the detector's source table (the shared table callers
    /// use to key their own per-source state).
    #[inline]
    pub fn intern(&mut self, ip: Ipv4Address) -> SourceId {
        self.table.intern(ip.0)
    }

    /// The source interner (id ↔ IP bridge).
    pub fn source_table(&self) -> &SourceTable {
        &self.table
    }

    /// Number of currently open scans.
    pub fn open_scans(&self) -> usize {
        self.active.len()
    }

    /// Offer one record with its fingerprint verdict.
    pub fn offer(&mut self, record: &ProbeRecord, tool: Option<ToolKind>) {
        let sid = self.table.intern(record.src_ip.0);
        self.offer_interned(sid, record, tool);
    }

    /// As [`CampaignDetector::offer`], with the source already interned —
    /// the zero-hash hot path ([`Pipeline`] interns once per record and
    /// passes the id through).
    #[inline]
    pub fn offer_interned(&mut self, sid: SourceId, record: &ProbeRecord, tool: Option<ToolKind>) {
        if sid as usize >= self.slots.len() {
            self.slots
                .resize_with(sid as usize + 1, SourceSlot::default);
        }
        let slot = &self.slots[sid as usize];
        if slot.active_pos != NOT_ACTIVE
            && record.ts_micros.saturating_sub(slot.scan.last_ts_micros) > self.expiry_micros
        {
            self.close(sid);
        }
        let slot = &mut self.slots[sid as usize];
        if slot.active_pos == NOT_ACTIVE {
            slot.scan.open(record);
            slot.active_pos = self.active.len() as u32;
            self.active.push(sid);
        }
        self.slots[sid as usize].scan.add(record, tool);
    }

    /// Expire every open scan idle since before `now_micros` (bounded-memory
    /// operation over long streams). Cost is O(open scans), not O(sources
    /// ever seen).
    pub fn expire_idle(&mut self, now_micros: u64) {
        let mut i = 0;
        while i < self.active.len() {
            let sid = self.active[i];
            let last = self.slots[sid as usize].scan.last_ts_micros;
            if now_micros.saturating_sub(last) > self.expiry_micros {
                // close() swap-removes: index i now holds a different id.
                self.close(sid);
            } else {
                i += 1;
            }
        }
    }

    /// End of stream: finalize everything and return results.
    pub fn finish(self) -> (Vec<Campaign>, NoiseStats) {
        let (campaigns, noise, _) = self.finish_with_sources();
        (campaigns, noise)
    }

    /// As [`CampaignDetector::finish`], also returning the source table so
    /// callers that keyed their own state by interned id can map back to
    /// IPs.
    pub fn finish_with_sources(mut self) -> (Vec<Campaign>, NoiseStats, SourceTable) {
        while let Some(&sid) = self.active.last() {
            self.close(sid);
        }
        self.campaigns
            .sort_by_key(|c| (c.first_ts_micros, c.src_ip));
        (self.campaigns, self.noise, self.table)
    }

    /// Close the open scan of `sid`: remove it from the active list and
    /// either emit a campaign or count it as noise.
    fn close(&mut self, sid: SourceId) {
        let pos = self.slots[sid as usize].active_pos as usize;
        debug_assert_eq!(self.active[pos], sid);
        self.active.swap_remove(pos);
        if let Some(&moved) = self.active.get(pos) {
            self.slots[moved as usize].active_pos = pos as u32;
        }
        self.slots[sid as usize].active_pos = NOT_ACTIVE;

        match check(&self.config, &self.slots[sid as usize].scan) {
            None => {
                let src_ip = Ipv4Address(self.table.ip_of(sid));
                let campaign = self.slots[sid as usize].scan.take_campaign(src_ip);
                self.campaigns.push(campaign);
            }
            Some(reason) => {
                let scan = &mut self.slots[sid as usize].scan;
                *self.noise.rejected_sequences.entry(reason).or_default() += 1;
                self.noise.rejected_packets += scan.packets;
                scan.release();
            }
        }
    }

    /// Serialize the full detector state — interner, per-source slots, the
    /// active list, finalized campaigns, and noise counters — for a pipeline
    /// checkpoint. The configuration is *not* written; it is supplied again
    /// on [`CampaignDetector::restore_from`] (the caller owns it and writes
    /// it alongside, so restore stays self-contained at the collector layer).
    pub fn snapshot_to(&self, w: &mut SnapWriter) {
        self.table.snapshot_to(w);
        w.put_u64(self.slots.len() as u64);
        for slot in &self.slots {
            w.put_u32(slot.active_pos);
            slot.scan.snapshot_to(w);
        }
        w.put_u64(self.active.len() as u64);
        for &sid in &self.active {
            w.put_u32(sid);
        }
        w.put_u64(self.campaigns.len() as u64);
        for campaign in &self.campaigns {
            campaign.snapshot_to(w);
        }
        self.noise.snapshot_to(w);
    }

    /// Rebuild a detector written by [`CampaignDetector::snapshot_to`],
    /// re-deriving the precomputed expiry from `config` and validating the
    /// active-list ↔ slot mirror invariant.
    pub fn restore_from(
        config: CampaignConfig,
        r: &mut SnapReader<'_>,
    ) -> Result<Self, CheckpointError> {
        let table = SourceTable::restore_from(r)?;
        let n_slots = r.take_len(44)?;
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let active_pos = r.take_u32()?;
            let scan = OpenScan::restore_from(r)?;
            slots.push(SourceSlot { active_pos, scan });
        }
        let n_active = r.take_len(4)?;
        let mut active = Vec::with_capacity(n_active);
        for _ in 0..n_active {
            active.push(r.take_u32()?);
        }
        for (pos, &sid) in active.iter().enumerate() {
            let mirrored = slots
                .get(sid as usize)
                .map(|slot| slot.active_pos)
                .unwrap_or(NOT_ACTIVE);
            if mirrored as usize != pos {
                return Err(CheckpointError::Corrupt(format!(
                    "active list entry {pos} (source {sid}) not mirrored by its slot"
                )));
            }
        }
        let open = slots
            .iter()
            .filter(|slot| slot.active_pos != NOT_ACTIVE)
            .count();
        if open != active.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{open} slots marked active but {} active-list entries",
                active.len()
            )));
        }
        let n_campaigns = r.take_len(40)?;
        let mut campaigns = Vec::with_capacity(n_campaigns);
        for _ in 0..n_campaigns {
            campaigns.push(Campaign::restore_from(r)?);
        }
        let noise = NoiseStats::restore_from(r)?;
        Ok(Self {
            config,
            expiry_micros: (config.expiry_secs * 1e6) as u64,
            table,
            slots,
            active,
            campaigns,
            noise,
        })
    }
}

/// The §3.4 campaign test, as a free function so [`CampaignDetector::close`]
/// can borrow the scan and the config independently.
fn check(config: &CampaignConfig, scan: &OpenScan) -> Option<RejectReason> {
    if (scan.dests.len() as u64) < config.min_distinct_dests {
        return Some(RejectReason::TooFewDestinations);
    }
    let duration = (scan.last_ts_micros - scan.first_ts_micros) as f64 / 1e6;
    if duration > 0.0 {
        let telescope_rate = scan.packets as f64 / duration;
        let est = config.model().extrapolate_rate(telescope_rate);
        if est < config.min_rate_pps {
            return Some(RejectReason::TooSlow);
        }
    }
    None
}

/// Convenience wrapper running fingerprinting and campaign detection in one
/// pass — the §3 pipeline end to end.
///
/// The detector's [`SourceTable`] is the single interner: each record is
/// interned exactly once and the dense id keys both the fingerprint state
/// vector and the open-scan slots, so the whole §3 admit path costs one
/// hash probe per record.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    engine: InternedFingerprint,
    detector: CampaignDetector,
}

impl Pipeline {
    /// New pipeline with the given campaign thresholds.
    ///
    /// The fingerprint engine shares the detector's idle expiry, so a
    /// source silent long enough to close its scan also restarts its
    /// pairwise history — deterministically, whatever the housekeeping
    /// cadence. This keeps sharded and sequential runs bit-identical.
    pub fn new(config: CampaignConfig) -> Self {
        Self {
            engine: InternedFingerprint::with_expiry((config.expiry_secs * 1e6) as u64),
            detector: CampaignDetector::new(config),
        }
    }

    /// The campaign thresholds this pipeline runs under.
    pub fn config(&self) -> &CampaignConfig {
        self.detector.config()
    }

    /// Pre-size interner, fingerprint and campaign state for roughly
    /// `sources` distinct addresses.
    pub fn reserve_sources(&mut self, sources: usize) {
        self.engine.reserve(sources);
        self.detector.reserve(sources);
    }

    /// Process one record: intern, fingerprint, then feed the detector.
    /// Returns the per-packet verdict.
    pub fn process(&mut self, record: &ProbeRecord) -> PacketVerdict {
        self.process_interned(record).0
    }

    /// As [`Pipeline::process`], also returning the record's interned source
    /// id so the caller can index its own dense per-source state without
    /// re-hashing the address.
    #[inline]
    pub fn process_interned(&mut self, record: &ProbeRecord) -> (PacketVerdict, SourceId) {
        let sid = self.detector.intern(record.src_ip);
        let verdict = self.engine.classify(sid, record);
        self.detector.offer_interned(sid, record, verdict.tool());
        (verdict, sid)
    }

    /// Periodic housekeeping for long streams.
    ///
    /// Only the campaign side needs sweeping: fingerprint state is a dense
    /// per-source window (resetting lazily on expiry inside `classify`),
    /// already bounded by the interner's source count.
    pub fn housekeeping(&mut self, now_micros: u64) {
        self.detector.expire_idle(now_micros);
    }

    /// Finish and return campaigns plus noise statistics.
    pub fn finish(self) -> (Vec<Campaign>, NoiseStats) {
        self.detector.finish()
    }

    /// Finish, also handing back the source table for id → IP conversion.
    pub fn finish_with_sources(self) -> (Vec<Campaign>, NoiseStats, SourceTable) {
        self.detector.finish_with_sources()
    }

    /// Serialize fingerprint and campaign state for a pipeline checkpoint.
    pub fn snapshot_to(&self, w: &mut SnapWriter) {
        self.engine.snapshot_to(w);
        self.detector.snapshot_to(w);
    }

    /// Rebuild a pipeline written by [`Pipeline::snapshot_to`] under the
    /// given campaign thresholds (which the caller checkpoints alongside).
    pub fn restore_from(
        config: CampaignConfig,
        r: &mut SnapReader<'_>,
    ) -> Result<Self, CheckpointError> {
        Ok(Self {
            engine: InternedFingerprint::restore_from(r)?,
            detector: CampaignDetector::restore_from(config, r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synscan_wire::TcpFlags;

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            min_distinct_dests: 10,
            min_rate_pps: 100.0,
            expiry_secs: 3600.0,
            monitored_addresses: 1 << 16,
        }
    }

    fn record(src: u32, dst: u32, port: u16, ts_micros: u64) -> ProbeRecord {
        ProbeRecord {
            ts_micros,
            src_ip: Ipv4Address(src),
            dst_ip: Ipv4Address(dst),
            src_port: 1000,
            dst_port: port,
            seq: dst ^ 0x5555_aaaa,
            ip_id: 7,
            ttl: 60,
            flags: TcpFlags::SYN,
            window: 1024,
        }
    }

    #[test]
    fn a_fast_wide_scan_becomes_a_campaign() {
        let mut det = CampaignDetector::new(cfg());
        // 50 distinct destinations in 1 second: telescope rate 50 pps,
        // extrapolated 50 × 2^32/2^16 = 3.3M pps — clearly a campaign.
        for i in 0..50u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 20_000), None);
        }
        let (campaigns, noise) = det.finish();
        assert_eq!(campaigns.len(), 1);
        assert_eq!(campaigns[0].distinct_dests, 50);
        assert_eq!(campaigns[0].packets, 50);
        assert_eq!(noise.rejected_packets, 0);
    }

    #[test]
    fn too_few_destinations_is_noise() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..5u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), None);
        }
        let (campaigns, noise) = det.finish();
        assert!(campaigns.is_empty());
        assert_eq!(noise.rejected_packets, 5);
        assert_eq!(
            noise
                .rejected_sequences
                .get(&RejectReason::TooFewDestinations),
            Some(&1)
        );
    }

    #[test]
    fn slow_scans_are_rejected() {
        let mut det = CampaignDetector::new(cfg());
        // 20 destinations over 20,000 seconds: telescope rate 0.001 pps,
        // extrapolated ≈ 65 pps < 100 pps threshold.
        for i in 0..20u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1_000_000_000), None);
        }
        // All probes are within the 1 h expiry? No — 1000 s gaps, fine.
        let (campaigns, noise) = det.finish();
        assert!(campaigns.is_empty());
        assert_eq!(
            noise.rejected_sequences.get(&RejectReason::TooSlow),
            Some(&1)
        );
    }

    #[test]
    fn idle_gap_splits_campaigns() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..15u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), None);
        }
        // Resume two hours later.
        let later = 2 * 3600 * 1_000_000u64;
        for i in 0..15u32 {
            det.offer(&record(1, 500 + i, 443, later + (i as u64) * 1000), None);
        }
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns.len(), 2);
        assert!(campaigns[0].last_ts_micros < campaigns[1].first_ts_micros);
        assert_eq!(campaigns[0].port_packets.keys().collect::<Vec<_>>(), [&80]);
        assert_eq!(campaigns[1].port_packets.keys().collect::<Vec<_>>(), [&443]);
    }

    #[test]
    fn sources_are_tracked_independently() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..12u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), None);
            det.offer(&record(2, 200 + i, 22, (i as u64) * 1000 + 7), None);
        }
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns.len(), 2);
        let srcs: Vec<u32> = campaigns.iter().map(|c| c.src_ip.0).collect();
        assert!(srcs.contains(&1) && srcs.contains(&2));
    }

    #[test]
    fn repeated_destinations_do_not_inflate_distinct_count() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..100u32 {
            det.offer(&record(1, 100 + (i % 5), 80, (i as u64) * 1000), None);
        }
        let (campaigns, noise) = det.finish();
        assert!(campaigns.is_empty(), "only 5 distinct destinations");
        assert_eq!(noise.rejected_packets, 100);
    }

    #[test]
    fn tool_votes_produce_majority_attribution() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..20u32 {
            let tool = if i < 15 {
                Some(ToolKind::Zmap)
            } else if i < 18 {
                Some(ToolKind::Masscan)
            } else {
                None
            };
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), tool);
        }
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns[0].tool(), Some(ToolKind::Zmap));
        assert_eq!(campaigns[0].tool_votes[&ToolKind::Zmap], 15);
    }

    #[test]
    fn campaign_without_votes_has_no_tool() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..20u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), None);
        }
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns[0].tool(), None);
    }

    #[test]
    fn multi_port_campaign_metrics() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..30u32 {
            let port = [80u16, 8080, 443][i as usize % 3];
            det.offer(&record(1, 100 + i, port, (i as u64) * 1000), None);
        }
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns[0].distinct_ports(), 3);
        assert_eq!(campaigns[0].port_packets[&80], 10);
    }

    #[test]
    fn out_of_order_timestamps_do_not_break_durations() {
        // A record arriving with an older timestamp (pcap merge artifact)
        // must widen the interval instead of inverting it.
        let mut det = CampaignDetector::new(cfg());
        det.offer(&record(1, 100, 80, 5_000_000), None);
        for i in 0..12u32 {
            det.offer(&record(1, 101 + i, 80, 4_000_000 + (i as u64) * 1000), None);
        }
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns.len(), 1);
        assert!(campaigns[0].duration_secs() >= 0.0);
        assert_eq!(campaigns[0].first_ts_micros, 4_000_000);
        assert_eq!(campaigns[0].last_ts_micros, 5_000_000);
    }

    #[test]
    fn expire_idle_flushes_old_scans() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..15u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), None);
        }
        det.expire_idle(2 * 3600 * 1_000_000);
        assert_eq!(det.open_scans(), 0);
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns.len(), 1);
    }

    #[test]
    fn slot_reuse_after_close_starts_clean() {
        // Same source opens, closes (as noise), and reopens: the recycled
        // slot must not leak dests/ports/votes from the first sequence.
        let mut det = CampaignDetector::new(cfg());
        for i in 0..5u32 {
            det.offer(
                &record(9, 100 + i, 80, (i as u64) * 1000),
                Some(ToolKind::Nmap),
            );
        }
        let later = 3 * 3600 * 1_000_000u64;
        for i in 0..15u32 {
            det.offer(&record(9, 500 + i, 443, later + (i as u64) * 1000), None);
        }
        let (campaigns, noise) = det.finish();
        assert_eq!(campaigns.len(), 1);
        assert_eq!(campaigns[0].packets, 15);
        assert_eq!(campaigns[0].distinct_dests, 15);
        assert_eq!(campaigns[0].port_packets.keys().collect::<Vec<_>>(), [&443]);
        assert!(
            campaigns[0].tool_votes.is_empty(),
            "votes from run 1 leaked"
        );
        assert_eq!(noise.rejected_packets, 5);
    }

    #[test]
    fn active_list_survives_interleaved_closes() {
        // Many sources open; expire a middle batch (exercising swap_remove
        // position fixups); the remaining sources still close correctly.
        let mut det = CampaignDetector::new(cfg());
        for src in 0..20u32 {
            for i in 0..12u32 {
                // Sources 5..10 stop early; the rest keep going.
                let ts = if (5..10).contains(&src) {
                    (i as u64) * 1000
                } else {
                    5 * 3600 * 1_000_000 + (i as u64) * 1000
                };
                det.offer(&record(src, 100 + src * 100 + i, 80, ts), None);
            }
        }
        assert_eq!(det.open_scans(), 20);
        det.expire_idle(4 * 3600 * 1_000_000);
        assert_eq!(det.open_scans(), 15, "only the early batch expired");
        let (campaigns, _) = det.finish();
        assert_eq!(campaigns.len(), 20);
    }

    #[test]
    fn scaled_config_scales_the_destination_threshold() {
        let scaled = CampaignConfig::scaled(71_536 / 64);
        assert!(scaled.min_distinct_dests < 10);
        assert!(scaled.min_distinct_dests >= 4);
        assert_eq!(scaled.min_rate_pps, 100.0);
        // Expiry grows with the inverse telescope ratio, capped at 18 h.
        assert_eq!(scaled.expiry_secs, 64_800.0);
        let quarter = CampaignConfig::scaled(71_536 / 4);
        assert!((quarter.expiry_secs - 4.0 * 3600.0).abs() < 1.0);
        let full = CampaignConfig::scaled(71_536);
        assert_eq!(full.min_distinct_dests, 100);
        assert_eq!(full.expiry_secs, 3600.0);
    }

    #[test]
    fn reject_reason_names_are_stable() {
        // The report and serde renderings both lean on these exact strings,
        // and BTreeMap order must match their lexicographic order.
        assert_eq!(
            RejectReason::TooFewDestinations.as_str(),
            "TooFewDestinations"
        );
        assert_eq!(RejectReason::TooSlow.as_str(), "TooSlow");
        assert_eq!(
            RejectReason::TooFewDestinations.to_string(),
            format!("{:?}", RejectReason::TooFewDestinations)
        );
        assert!(RejectReason::TooFewDestinations < RejectReason::TooSlow);
        assert!(
            RejectReason::TooFewDestinations.as_str() < RejectReason::TooSlow.as_str(),
            "enum order tracks string order"
        );
    }

    #[test]
    fn noise_stats_serialize_with_string_reason_keys() {
        let mut noise = NoiseStats::default();
        noise
            .rejected_sequences
            .insert(RejectReason::TooFewDestinations, 3);
        noise.rejected_sequences.insert(RejectReason::TooSlow, 1);
        noise.rejected_packets = 44;
        let json = serde_json::to_string(&noise).unwrap();
        assert_eq!(
            json,
            r#"{"rejected_sequences":{"TooFewDestinations":3,"TooSlow":1},"rejected_packets":44}"#
        );
    }

    fn detector_round_trip(det: &CampaignDetector) -> CampaignDetector {
        let mut w = SnapWriter::new();
        det.snapshot_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = CampaignDetector::restore_from(det.config, &mut r).unwrap();
        assert_eq!(r.remaining(), 0, "snapshot fully consumed");
        back
    }

    #[test]
    fn empty_detector_snapshot_round_trips() {
        let det = CampaignDetector::new(cfg());
        assert_eq!(detector_round_trip(&det), det);
    }

    #[test]
    fn mid_stream_detector_snapshot_round_trips_and_finishes_identically() {
        let mut det = CampaignDetector::new(cfg());
        // Source 1: a finalized campaign (closed by an expiry gap).
        for i in 0..15u32 {
            det.offer(
                &record(1, 100 + i, 80, (i as u64) * 1000),
                Some(ToolKind::Zmap),
            );
        }
        // Source 2: finalized noise (too few destinations, closed by gap).
        for i in 0..3u32 {
            det.offer(&record(2, 200 + i, 22, (i as u64) * 1000), None);
        }
        // A long gap closes both, then sources 3 and 4 open fresh scans that
        // are still in flight at snapshot time.
        let later = 3 * 3600 * 1_000_000u64;
        for i in 0..8u32 {
            det.offer(&record(3, 300 + i, 443, later + (i as u64) * 1000), None);
            det.offer(
                &record(4, 400 + i, 8080, later + (i as u64) * 1000 + 3),
                Some(ToolKind::Masscan),
            );
        }
        assert_eq!(det.open_scans(), 2);

        let restored = detector_round_trip(&det);
        assert_eq!(restored, det, "full state equality after round trip");

        // Feed the identical continuation into both and compare final output.
        let mut det = det;
        let mut restored = restored;
        for i in 8..20u32 {
            for d in [&mut det, &mut restored] {
                d.offer(&record(3, 300 + i, 443, later + (i as u64) * 1000), None);
                d.offer(
                    &record(4, 400 + i, 8080, later + (i as u64) * 1000 + 3),
                    Some(ToolKind::Masscan),
                );
            }
        }
        let (campaigns_a, noise_a, table_a) = det.finish_with_sources();
        let (campaigns_b, noise_b, table_b) = restored.finish_with_sources();
        assert_eq!(campaigns_a, campaigns_b);
        assert_eq!(noise_a, noise_b);
        assert_eq!(table_a, table_b);
        assert_eq!(campaigns_a.len(), 3);
    }

    #[test]
    fn detector_snapshot_with_broken_active_mirror_is_rejected() {
        let mut det = CampaignDetector::new(cfg());
        for i in 0..5u32 {
            det.offer(&record(1, 100 + i, 80, (i as u64) * 1000), None);
        }
        let mut w = SnapWriter::new();
        det.snapshot_to(&mut w);
        let mut bytes = w.into_bytes();
        // The single slot's active_pos is the first u32 after the interner
        // block (len u64 + one ip u32, then slot count u64). Corrupt it.
        let pos = 8 + 4 + 8;
        bytes[pos..pos + 4].copy_from_slice(&7u32.to_le_bytes());
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            CampaignDetector::restore_from(cfg(), &mut r),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn pipeline_snapshot_round_trips_mid_stream() {
        use synscan_scanners::traits::craft_record;
        use synscan_scanners::zmap::ZmapScanner;
        let mut pipeline = Pipeline::new(cfg());
        let z = ZmapScanner::new(5);
        let mk = |i: u64| {
            craft_record(
                &z,
                Ipv4Address(88),
                Ipv4Address(0x0800_0000 + i as u32),
                443,
                i,
                i * 5000,
                9,
            )
        };
        for i in 0..10u64 {
            pipeline.process(&mk(i));
        }
        let mut w = SnapWriter::new();
        pipeline.snapshot_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let restored = Pipeline::restore_from(cfg(), &mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(restored, pipeline);

        let mut pipeline = pipeline;
        let mut restored = restored;
        for i in 10..25u64 {
            assert_eq!(restored.process(&mk(i)), pipeline.process(&mk(i)));
        }
        let (campaigns_a, noise_a) = pipeline.finish();
        let (campaigns_b, noise_b) = restored.finish();
        assert_eq!(campaigns_a, campaigns_b);
        assert_eq!(noise_a, noise_b);
        assert_eq!(campaigns_a[0].tool(), Some(ToolKind::Zmap));
    }

    #[test]
    fn pipeline_combines_fingerprint_and_detection() {
        use synscan_scanners::traits::craft_record;
        use synscan_scanners::zmap::ZmapScanner;
        let mut pipeline = Pipeline::new(cfg());
        let z = ZmapScanner::new(1);
        for i in 0..20u64 {
            let rec = craft_record(
                &z,
                Ipv4Address(77),
                Ipv4Address(0x0900_0000 + i as u32),
                443,
                i,
                i * 5000,
                9,
            );
            pipeline.process(&rec);
        }
        let (campaigns, _) = pipeline.finish();
        assert_eq!(campaigns.len(), 1);
        assert_eq!(campaigns[0].tool(), Some(ToolKind::Zmap));
    }
}
