//! Extrapolated campaign metrics.
//!
//! The telescope sees a thin slice of each scan; the paper's speed and
//! coverage figures (§5.2, §6.3, §6.4, Figure 7) are *estimates* obtained by
//! inverting the telescope's sampling: rates scale by `2³² / monitored`,
//! coverage comes from the inverse coupon-collector extrapolation of
//! distinct destinations.

use synscan_stats::telescope_model::{TelescopeModel, IPV4_SPACE};

use super::Campaign;

/// Bytes on the wire per bare SYN frame (Ethernet 14 + IPv4 20 + TCP 20 +
/// FCS 4 — the figure the paper's Gbps numbers imply for minimum-size
/// probes, padded to the 64-byte Ethernet minimum).
pub const SYN_FRAME_BYTES: f64 = 64.0;

/// Extrapolated, Internet-wide view of one campaign.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct CampaignEstimates {
    /// Estimated Internet-wide probing rate, packets/second.
    pub rate_pps: f64,
    /// Estimated bandwidth in bits/second.
    pub rate_bps: f64,
    /// Estimated number of addresses targeted.
    pub targeted_addresses: f64,
    /// Estimated fraction of IPv4 covered (0..=1).
    pub ipv4_coverage: f64,
    /// Estimated total probes sent Internet-wide.
    pub total_probes: f64,
}

impl CampaignEstimates {
    /// Compute estimates for a campaign under a telescope model.
    pub fn from_campaign(campaign: &Campaign, model: &TelescopeModel) -> Self {
        let duration = campaign.duration_secs();
        let telescope_rate = if duration > 0.0 {
            campaign.packets as f64 / duration
        } else {
            // Single-timestamp burst: all packets in well under a second.
            campaign.packets as f64
        };
        let rate_pps = model.extrapolate_rate(telescope_rate);
        // Coverage from distinct destinations; multi-port campaigns hit the
        // same address once per port, so coverage uses addresses only.
        let targeted_addresses = model.extrapolate_targets(campaign.distinct_dests);
        let ports = campaign.distinct_ports().max(1) as f64;
        Self {
            rate_pps,
            rate_bps: rate_pps * SYN_FRAME_BYTES * 8.0,
            targeted_addresses,
            ipv4_coverage: (targeted_addresses / IPV4_SPACE).min(1.0),
            total_probes: campaign.packets as f64 / model.hit_probability() * ports / ports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use synscan_wire::Ipv4Address;

    fn campaign(packets: u64, dests: u64, duration_secs: u64) -> Campaign {
        Campaign {
            src_ip: Ipv4Address(1),
            first_ts_micros: 0,
            last_ts_micros: duration_secs * 1_000_000,
            packets,
            distinct_dests: dests,
            port_packets: BTreeMap::from([(80u16, packets)]),
            tool_votes: BTreeMap::new(),
        }
    }

    #[test]
    fn full_internet_scan_is_recovered() {
        // A scan that hit every telescope address once over 12 hours.
        let model = TelescopeModel::new(71_536);
        let c = campaign(71_536, 71_536, 12 * 3600);
        let est = c.estimates(&model);
        assert_eq!(est.ipv4_coverage, 1.0);
        // Rate ≈ 2^32 / 43200 s ≈ 99,400 pps.
        assert!(
            (est.rate_pps / 99_421.0 - 1.0).abs() < 0.01,
            "{}",
            est.rate_pps
        );
        // Gigabit check: ~99.4k pps × 64 B × 8 ≈ 50.9 Mbps.
        assert!((est.rate_bps / 50.9e6 - 1.0).abs() < 0.05);
    }

    #[test]
    fn small_scan_extrapolates_linearly() {
        let model = TelescopeModel::new(65_536);
        // 655 distinct dests = 1% of the telescope ≈ 1% of IPv4 ±.
        let c = campaign(655, 655, 3600);
        let est = c.estimates(&model);
        assert!(
            (est.ipv4_coverage - 0.01).abs() < 0.001,
            "{}",
            est.ipv4_coverage
        );
        assert!(est.targeted_addresses > 4.2e7 && est.targeted_addresses < 4.4e7);
    }

    #[test]
    fn zero_duration_burst_gets_a_rate() {
        let model = TelescopeModel::new(65_536);
        let c = campaign(100, 100, 0);
        let est = c.estimates(&model);
        assert!(est.rate_pps > 0.0);
        assert!(est.rate_pps.is_finite());
    }

    #[test]
    fn faster_scan_estimates_higher_rate() {
        let model = TelescopeModel::new(65_536);
        let slow = campaign(1000, 1000, 10_000).estimates(&model);
        let fast = campaign(1000, 1000, 100).estimates(&model);
        assert!(fast.rate_pps > 50.0 * slow.rate_pps);
    }
}
