//! Worker supervision: heartbeats, stall watchdog, panic containment.
//!
//! The sharded pipeline runs one OS thread per shard. Without supervision a
//! single worker panic aborts the whole process (poisoning hours of decade
//! progress), and a wedged worker hangs the run silently. This module gives
//! the supervised driver ([`crate::pipeline::supervised`]) the pieces it
//! needs to do better:
//!
//! * a [`HeartbeatBoard`] of lock-free per-worker liveness slots that
//!   workers bump on every message-loop iteration (a worker blocked on an
//!   empty channel still beats, via `recv_timeout`);
//! * a [`watch`] loop that polls the board and flags any unfinished worker
//!   silent past a deadline as a [`StallEvent`] — observability, not a kill
//!   switch: a flagged worker that recovers simply finishes late;
//! * [`WorkerFailure`], the typed form of a caught worker panic, which the
//!   driver converts into a recoverable error instead of a process abort;
//! * [`InjectedFaults`], one-shot deterministic panic/stall triggers that
//!   let the test suite drive every recovery path without any real crash.

use std::panic;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing knobs for worker supervision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionConfig {
    /// A worker silent for longer than this (and not finished) is flagged
    /// as stalled.
    pub stall_after: Duration,
    /// How often the watchdog scans the heartbeat board.
    pub poll_every: Duration,
    /// The worker message-loop `recv_timeout`, which bounds the gap between
    /// two beats of a healthy-but-idle worker. Must be well under
    /// `stall_after`.
    pub beat_every: Duration,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        Self {
            // The stall threshold is the one timeout shared across the
            // system: the serve daemon's idle cutoff and the distributed
            // coordinator's watchdog both default to this wire-layer
            // constant, and the `--stall-timeout` flag overrides all of
            // them together.
            stall_after: Duration::from_millis(synscan_wire::net::DEFAULT_STALL_TIMEOUT_MS),
            poll_every: Duration::from_millis(100),
            beat_every: Duration::from_millis(50),
        }
    }
}

impl SupervisionConfig {
    /// Defaults with a specific stall threshold — how both binaries apply
    /// their `--stall-timeout` flag.
    pub fn with_stall_timeout(stall_after: Duration) -> Self {
        Self {
            stall_after,
            ..Self::default()
        }
    }
}

/// One worker's liveness slot.
#[derive(Debug)]
struct WorkerBeat {
    /// Milliseconds since the board's epoch at the last beat.
    last_beat_ms: AtomicU64,
    /// Records processed so far (for stall diagnostics).
    records: AtomicU64,
    /// Set when the worker's loop exits; finished workers are never stalled.
    finished: AtomicBool,
}

/// Lock-free per-worker heartbeat slots shared between workers and the
/// watchdog.
#[derive(Debug)]
pub struct HeartbeatBoard {
    epoch: Instant,
    workers: Vec<WorkerBeat>,
}

impl HeartbeatBoard {
    /// A board for `workers` shard workers, all considered freshly beating.
    pub fn new(workers: usize) -> Self {
        Self {
            epoch: Instant::now(),
            workers: (0..workers)
                .map(|_| WorkerBeat {
                    last_beat_ms: AtomicU64::new(0),
                    records: AtomicU64::new(0),
                    finished: AtomicBool::new(false),
                })
                .collect(),
        }
    }

    /// Number of workers tracked.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the board tracks no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Record a liveness beat for `shard`.
    pub fn beat(&self, shard: usize) {
        self.workers[shard]
            .last_beat_ms
            .store(self.now_ms(), Ordering::Relaxed);
    }

    /// Add `n` to `shard`'s processed-record count (stall diagnostics).
    pub fn add_records(&self, shard: usize, n: u64) {
        self.workers[shard].records.fetch_add(n, Ordering::Relaxed);
    }

    /// Mark `shard`'s loop as exited; it can no longer stall.
    pub fn finish(&self, shard: usize) {
        self.workers[shard].finished.store(true, Ordering::Release);
    }

    /// Milliseconds since `shard` last beat.
    pub fn silent_ms(&self, shard: usize) -> u64 {
        self.now_ms()
            .saturating_sub(self.workers[shard].last_beat_ms.load(Ordering::Relaxed))
    }

    /// Records `shard` has processed so far.
    pub fn records_processed(&self, shard: usize) -> u64 {
        self.workers[shard].records.load(Ordering::Relaxed)
    }

    /// Whether `shard`'s loop has exited.
    pub fn is_finished(&self, shard: usize) -> bool {
        self.workers[shard].finished.load(Ordering::Acquire)
    }
}

/// A worker that stopped heartbeating past the configured deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallEvent {
    /// The stalled shard.
    pub shard: u32,
    /// How long the worker had been silent when flagged, in milliseconds.
    pub silent_ms: u64,
    /// Records it had processed by then.
    pub records_processed: u64,
}

/// A worker panic, caught and carried as data instead of aborting the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// The shard whose worker panicked.
    pub shard: u32,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker for shard {} panicked: {}",
            self.shard, self.message
        )
    }
}

/// What supervision observed over one (possibly retried) run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisionReport {
    /// Workers flagged by the stall watchdog (at most once per worker per
    /// attempt).
    pub stalls: Vec<StallEvent>,
    /// Worker panics caught (the attempts they aborted were retried or
    /// surfaced as typed errors).
    pub failures: Vec<WorkerFailure>,
    /// Attempts restarted from the last checkpoint after a worker failure.
    pub retried: u32,
}

impl SupervisionReport {
    /// Fold another attempt's observations into this report.
    pub fn absorb(&mut self, other: SupervisionReport) {
        self.stalls.extend(other.stalls);
        self.failures.extend(other.failures);
        self.retried += other.retried;
    }
}

/// Scan the heartbeat board until `done`, flagging each unfinished worker
/// that stays silent past `config.stall_after` — once per worker, so a
/// genuinely wedged worker produces one event, not one per poll.
///
/// Runs on its own thread inside the driver's scope; returns the collected
/// events when the driver signals `done` after joining the workers.
pub fn watch(
    board: &HeartbeatBoard,
    config: &SupervisionConfig,
    done: &AtomicBool,
) -> Vec<StallEvent> {
    let mut flagged = vec![false; board.len()];
    let mut events = Vec::new();
    let stall_ms = config.stall_after.as_millis() as u64;
    while !done.load(Ordering::Acquire) {
        for shard in 0..board.len() {
            if flagged[shard] || board.is_finished(shard) {
                continue;
            }
            let silent = board.silent_ms(shard);
            if silent > stall_ms {
                flagged[shard] = true;
                events.push(StallEvent {
                    shard: shard as u32,
                    silent_ms: silent,
                    records_processed: board.records_processed(shard),
                });
            }
        }
        std::thread::sleep(config.poll_every);
    }
    events
}

/// Stringify a caught panic payload (`&str` and `String` payloads pass
/// through; anything else gets a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One-shot deterministic fault triggers for exercising the supervision
/// paths in tests: a worker checks [`InjectedFaults::should_panic`] /
/// [`InjectedFaults::maybe_stall`] at a fixed point in its loop, and each
/// armed fault fires exactly once — so a retried attempt deterministically
/// succeeds.
#[derive(Debug)]
pub struct InjectedFaults {
    /// Shard whose worker should panic on its next batch (−1 = disarmed).
    panic_shard: AtomicI64,
    /// Shard whose worker should sleep through its next batch (−1 =
    /// disarmed).
    stall_shard: AtomicI64,
    /// How long the stalled worker sleeps.
    stall_for: Duration,
}

impl InjectedFaults {
    /// No faults armed.
    pub fn none() -> Arc<Self> {
        Arc::new(Self {
            panic_shard: AtomicI64::new(-1),
            stall_shard: AtomicI64::new(-1),
            stall_for: Duration::ZERO,
        })
    }

    /// Arm a single panic in `shard`'s worker.
    pub fn panic_once(shard: u32) -> Arc<Self> {
        Arc::new(Self {
            panic_shard: AtomicI64::new(i64::from(shard)),
            stall_shard: AtomicI64::new(-1),
            stall_for: Duration::ZERO,
        })
    }

    /// Arm a single `stall_for` sleep in `shard`'s worker.
    pub fn stall_once(shard: u32, stall_for: Duration) -> Arc<Self> {
        Arc::new(Self {
            panic_shard: AtomicI64::new(-1),
            stall_shard: AtomicI64::new(i64::from(shard)),
            stall_for,
        })
    }

    /// Whether `shard`'s worker should panic now. Disarms on first fire.
    pub fn should_panic(&self, shard: u32) -> bool {
        self.panic_shard
            .compare_exchange(i64::from(shard), -1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Sleep if a stall is armed for `shard`. Disarms on first fire.
    pub fn maybe_stall(&self, shard: u32) {
        if self
            .stall_shard
            .compare_exchange(i64::from(shard), -1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            std::thread::sleep(self.stall_for);
        }
    }
}

/// Run `f` under `catch_unwind`, converting a panic into a typed
/// [`WorkerFailure`] for `shard`. The default panic hook still prints a
/// backtrace; the driver decides whether that noise matters.
pub fn contain<T>(
    shard: u32,
    f: impl FnOnce() -> T + panic::UnwindSafe,
) -> Result<T, WorkerFailure> {
    panic::catch_unwind(f).map_err(|payload| WorkerFailure {
        shard,
        message: panic_message(payload.as_ref()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn fast_config() -> SupervisionConfig {
        SupervisionConfig {
            stall_after: Duration::from_millis(40),
            poll_every: Duration::from_millis(5),
            beat_every: Duration::from_millis(5),
        }
    }

    #[test]
    fn board_tracks_beats_and_records() {
        let board = HeartbeatBoard::new(2);
        assert_eq!(board.len(), 2);
        assert!(!board.is_empty());
        board.beat(0);
        board.add_records(0, 10);
        board.add_records(0, 5);
        assert_eq!(board.records_processed(0), 15);
        assert_eq!(board.records_processed(1), 0);
        assert!(!board.is_finished(0));
        board.finish(0);
        assert!(board.is_finished(0));
        assert!(board.silent_ms(0) < 10_000);
    }

    #[test]
    fn watchdog_flags_a_silent_worker_exactly_once() {
        let board = HeartbeatBoard::new(2);
        let config = fast_config();
        let done = AtomicBool::new(false);
        let events = std::thread::scope(|scope| {
            let watcher = scope.spawn(|| watch(&board, &config, &done));
            // Worker 0 beats continuously; worker 1 goes silent.
            for _ in 0..30 {
                board.beat(0);
                std::thread::sleep(Duration::from_millis(5));
            }
            board.finish(0);
            board.finish(1);
            done.store(true, Ordering::Release);
            watcher.join().unwrap()
        });
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].shard, 1);
        assert!(events[0].silent_ms > 40);
    }

    #[test]
    fn watchdog_ignores_finished_workers() {
        let board = HeartbeatBoard::new(1);
        let config = fast_config();
        let done = AtomicBool::new(false);
        let events = std::thread::scope(|scope| {
            let watcher = scope.spawn(|| watch(&board, &config, &done));
            // The worker finishes immediately and then never beats: silence
            // after finish must not be a stall.
            board.finish(0);
            std::thread::sleep(Duration::from_millis(80));
            done.store(true, Ordering::Release);
            watcher.join().unwrap()
        });
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn injected_faults_fire_exactly_once() {
        let faults = InjectedFaults::panic_once(3);
        assert!(!faults.should_panic(2));
        assert!(faults.should_panic(3), "armed fault fires");
        assert!(!faults.should_panic(3), "one-shot: disarmed after firing");

        let stall = InjectedFaults::stall_once(1, Duration::from_millis(30));
        let before = Instant::now();
        stall.maybe_stall(0);
        assert!(before.elapsed() < Duration::from_millis(20), "wrong shard");
        stall.maybe_stall(1);
        assert!(before.elapsed() >= Duration::from_millis(30));
        let again = Instant::now();
        stall.maybe_stall(1);
        assert!(again.elapsed() < Duration::from_millis(20), "one-shot");

        let none = InjectedFaults::none();
        assert!(!none.should_panic(0));
        none.maybe_stall(0);
    }

    #[test]
    fn contain_converts_panics_to_typed_failures() {
        assert_eq!(contain(0, || 42), Ok(42));
        let failure = contain(7, || -> u32 { panic!("boom {}", 13) }).unwrap_err();
        assert_eq!(failure.shard, 7);
        assert_eq!(failure.message, "boom 13");
        assert!(failure.to_string().contains("shard 7"));

        let static_failure: Result<(), WorkerFailure> = contain(1, || panic!("static message"));
        assert_eq!(static_failure.unwrap_err().message, "static message");
    }

    #[test]
    fn report_absorbs_attempts() {
        let mut report = SupervisionReport::default();
        report.absorb(SupervisionReport {
            stalls: vec![StallEvent {
                shard: 0,
                silent_ms: 100,
                records_processed: 5,
            }],
            failures: vec![WorkerFailure {
                shard: 0,
                message: "x".into(),
            }],
            retried: 1,
        });
        report.absorb(SupervisionReport::default());
        assert_eq!(report.stalls.len(), 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.retried, 1);
    }
}
