//! # synscan-core
//!
//! The measurement pipeline of *Have you SYN me? Characterizing Ten Years of
//! Internet Scanning* (IMC 2024) — the paper's primary contribution,
//! reimplemented as a library:
//!
//! 1. **Tool fingerprinting** ([`fingerprint`], §3.3): per-packet invariants
//!    (ZMap's `ip_id = 54321`, Masscan's `ip_id = dstIP⊕dstPort⊕seq`,
//!    Mirai's `seq = dstIP`) and stateful pairwise matchers (NMap's
//!    keystream reuse, Unicornscan's XOR encoding).
//! 2. **Campaign identification** ([`campaign`], §3.4): grouping per-source
//!    probe sequences into scan campaigns with the paper's thresholds
//!    (≥100 distinct telescope destinations, ≥100 pps Internet-wide
//!    estimated rate, 1 h idle expiry), plus speed and IPv4-coverage
//!    estimation via the geometric telescope model.
//! 3. **Scanner-type classification** ([`classify`], §6.6): labeling sources
//!    institutional / hosting / enterprise / residential / unknown.
//! 4. **Longitudinal analysis** ([`analysis`]): every table and figure of
//!    the evaluation — yearly summaries (Table 1), scanner types (Table 2),
//!    event decay (Fig. 1), weekly /16 volatility (Fig. 2), ports per source
//!    (Fig. 3), tool×port mixes (Fig. 4), type×port mixes (Fig. 5),
//!    recurrence (Fig. 6), speed/coverage (Fig. 7), institutional port
//!    coverage (Figs. 8–10), and the in-prose correlation analyses.
//!
//! The pipeline consumes time-ordered [`synscan_wire::ProbeRecord`] streams —
//! from a pcap, from the live capture session, or from the synthetic decade
//! generator — and produces serializable reports.
//!
//! For telescope-scale inputs, [`pipeline`] fans one year's stream out to
//! source-sharded worker threads and merges the partial analyses back into a
//! result bit-identical to the sequential pass.
//!
//! Long (decade-scale) runs are made crash-safe by [`checkpoint`] (atomic,
//! checksummed snapshots of the full pipeline state), [`supervise`] (worker
//! heartbeats, panic containment, stall watchdog), and
//! [`pipeline::supervised`] (the checkpointed, resumable driver tying both
//! together). [`distrib`] lifts the same sharded-merge architecture across
//! process (and host) boundaries: workers compute `(year, partition)` slice
//! partials over a framed checkpoint protocol and a coordinator merges them
//! bit-identically to the sequential run.
//!
//! Terminal run state persists through [`store`]: a versioned on-disk
//! analysis store of per-year slices that [`report`] renders as a pure
//! reader and the resident `synscan-serve` daemon holds in memory behind an
//! atomic image swap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod campaign;
pub mod checkpoint;
pub mod classify;
pub mod compact;
pub mod distrib;
pub mod fasthash;
pub mod fingerprint;
pub mod intern;
pub mod pipeline;
pub mod report;
pub mod sketch;
pub mod store;
pub mod supervise;

pub use campaign::{Campaign, CampaignConfig, CampaignDetector, RejectReason};
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointHeader};
pub use classify::classify_source;
pub use compact::{IdSet, PortSet};
pub use distrib::{
    merge_slices, plan_slices, run_slice, DistribError, Message, SliceOutcome, SliceSpec,
    SliceTask, PROTO_VERSION,
};
pub use fasthash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use fingerprint::{FingerprintEngine, InternedFingerprint, PacketVerdict};
pub use intern::{SourceId, SourceTable};
pub use pipeline::supervised::{
    run_year_supervised, AdmitState, CheckpointOptions, FilterAdmit, RunError, RunSpec, RunStatus,
    SupervisorOptions,
};
pub use pipeline::{
    collect_year_sharded, collect_year_stream, try_collect_year_mapped, try_collect_year_stream,
    MappedIngestReport, PipelineError, PipelineMode, PipelineOutcome, SizeHints,
};
pub use sketch::{CountMinSketch, HeavyHitterConfig, HeavyHitters, NetworkImpact, SpaceSaving};
pub use store::{
    AnalysisStore, ImageCell, ImageReader, SliceMeta, StoreError, StoreImage, YearSliceStat,
};
pub use supervise::{
    InjectedFaults, StallEvent, SupervisionConfig, SupervisionReport, WorkerFailure,
};
pub use synscan_scanners::traits::ToolKind;
