//! Blocklist efficacy — the operational implication of §4.4 and §6.6.
//!
//! The paper argues that because non-institutional scanner IPs are burned
//! after a single campaign ("by the time a list is distributed a scanning
//! IP address would have already vanished for good"), collecting and
//! sharing scanner blocklists is largely ineffective. This module makes
//! that quantitative: build a blocklist from the sources seen scanning in
//! one time window, then measure how much of a *later* window's scanning it
//! would actually have blocked.

use std::collections::HashSet;

use crate::campaign::Campaign;

/// The efficacy of one (list window → evaluation window) pairing.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct BlocklistEfficacy {
    /// Addresses on the list.
    pub list_size: u64,
    /// Fraction of the evaluation window's scanning sources on the list.
    pub sources_blocked: f64,
    /// Fraction of the evaluation window's scan packets from listed sources.
    pub packets_blocked: f64,
}

/// Build a list from campaigns *starting* in `[list_start, list_end)` µs and
/// evaluate it against campaigns starting in `[eval_start, eval_end)`.
pub fn blocklist_efficacy(
    campaigns: &[Campaign],
    list_window: (u64, u64),
    eval_window: (u64, u64),
) -> BlocklistEfficacy {
    let list: HashSet<u32> = campaigns
        .iter()
        .filter(|c| c.first_ts_micros >= list_window.0 && c.first_ts_micros < list_window.1)
        .map(|c| c.src_ip.0)
        .collect();

    let mut eval_sources: HashSet<u32> = HashSet::new();
    let mut blocked_sources: HashSet<u32> = HashSet::new();
    let mut eval_packets = 0u64;
    let mut blocked_packets = 0u64;
    for campaign in campaigns {
        if campaign.first_ts_micros < eval_window.0 || campaign.first_ts_micros >= eval_window.1 {
            continue;
        }
        eval_sources.insert(campaign.src_ip.0);
        eval_packets += campaign.packets;
        if list.contains(&campaign.src_ip.0) {
            blocked_sources.insert(campaign.src_ip.0);
            blocked_packets += campaign.packets;
        }
    }
    BlocklistEfficacy {
        list_size: list.len() as u64,
        sources_blocked: blocked_sources.len() as f64 / eval_sources.len().max(1) as f64,
        packets_blocked: blocked_packets as f64 / eval_packets.max(1) as f64,
    }
}

/// The decay curve: a list built from period 0 evaluated against periods
/// 1..n (each `period_micros` long, starting at `t0`). Returns one
/// [`BlocklistEfficacy`] per evaluated period.
pub fn blocklist_decay(
    campaigns: &[Campaign],
    t0: u64,
    period_micros: u64,
    periods: u32,
) -> Vec<BlocklistEfficacy> {
    (1..=periods)
        .map(|p| {
            blocklist_efficacy(
                campaigns,
                (t0, t0 + period_micros),
                (
                    t0 + u64::from(p) * period_micros,
                    t0 + u64::from(p + 1) * period_micros,
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use synscan_wire::Ipv4Address;

    fn campaign(src: u32, start_secs: u64, packets: u64) -> Campaign {
        Campaign {
            src_ip: Ipv4Address(src),
            first_ts_micros: start_secs * 1_000_000,
            last_ts_micros: start_secs * 1_000_000 + 1_000_000,
            packets,
            distinct_dests: packets,
            port_packets: BTreeMap::from([(80u16, packets)]),
            tool_votes: BTreeMap::new(),
        }
    }

    const DAY: u64 = 86_400;

    #[test]
    fn one_shot_scanners_defeat_the_list() {
        // Day 0: sources 1..10 scan. Day 1: entirely fresh sources 11..20.
        let mut campaigns = Vec::new();
        for s in 1..=10u32 {
            campaigns.push(campaign(s, 100 + u64::from(s), 50));
        }
        for s in 11..=20u32 {
            campaigns.push(campaign(s, DAY + 100 + u64::from(s), 50));
        }
        let eff = blocklist_efficacy(
            &campaigns,
            (0, DAY * 1_000_000),
            (DAY * 1_000_000, 2 * DAY * 1_000_000),
        );
        assert_eq!(eff.list_size, 10);
        assert_eq!(eff.sources_blocked, 0.0, "the list blocks nothing");
        assert_eq!(eff.packets_blocked, 0.0);
    }

    #[test]
    fn recurring_scanners_are_caught() {
        // The same source scans every day (an institutional pattern).
        let mut campaigns = Vec::new();
        for day in 0..3u64 {
            campaigns.push(campaign(99, day * DAY + 100, 1000));
            // Plus one fresh bot per day.
            campaigns.push(campaign(1000 + day as u32, day * DAY + 200, 10));
        }
        let decay = blocklist_decay(&campaigns, 0, DAY * 1_000_000, 2);
        for eff in &decay {
            assert!((eff.sources_blocked - 0.5).abs() < 1e-9, "{eff:?}");
            // The recurring source is also the heavy one.
            assert!(eff.packets_blocked > 0.9);
        }
    }

    #[test]
    fn efficacy_decays_with_churn() {
        // Half the day-0 population returns on day 1, a quarter on day 2.
        let mut campaigns = Vec::new();
        for s in 0..40u32 {
            campaigns.push(campaign(s, 100 + u64::from(s), 10));
        }
        for s in 0..20u32 {
            campaigns.push(campaign(s, DAY + 100 + u64::from(s), 10));
        }
        for s in 0..10u32 {
            campaigns.push(campaign(s, 2 * DAY + 100 + u64::from(s), 10));
        }
        let decay = blocklist_decay(&campaigns, 0, DAY * 1_000_000, 2);
        assert!((decay[0].sources_blocked - 1.0).abs() < 1e-9); // all returnees listed
        assert!((decay[1].sources_blocked - 1.0).abs() < 1e-9);
        // Evaluate the other direction: day-1's list against day 2.
        let reverse = blocklist_efficacy(
            &campaigns,
            (DAY * 1_000_000, 2 * DAY * 1_000_000),
            (2 * DAY * 1_000_000, 3 * DAY * 1_000_000),
        );
        assert_eq!(reverse.list_size, 20);
        assert!((reverse.sources_blocked - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_windows_are_safe() {
        let eff = blocklist_efficacy(&[], (0, 100), (100, 200));
        assert_eq!(eff.list_size, 0);
        assert_eq!(eff.sources_blocked, 0.0);
    }
}
