//! Longitudinal analysis: every table and figure of the paper's evaluation.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`collect`] | the streaming per-year aggregator feeding everything below |
//! | [`yearly`] | Table 1 (volumes, top ports, scans/month, tool shares) |
//! | [`types`] | Table 2 + Figure 5 (scanner classes) |
//! | [`events`] | Figure 1 (post-disclosure decay, KS verification) |
//! | [`volatility`] | Figure 2 (weekly /16 change CDFs) |
//! | [`portspread`] | Figure 3 + §5.1 (ports per source, co-scanning, coverage) |
//! | [`toolports`] | Figure 4 (top ports × tool mix) |
//! | [`recurrence`] | Figure 6 (scanner recurrence & downtime) |
//! | [`speedcov`] | Figure 7 + §6.3–6.4 (speed & coverage by type/tool) |
//! | [`institutions`] | Figures 8–10 (known-org port coverage) |
//! | [`vertical`] | §5.2 (vertical scans) |
//! | [`geo`] | §5.4 + §6.5 (origin countries, port-country bias) |
//! | [`blocklist`] | the §4.4/§6.6 implication: scanner blocklists decay within days |

pub mod blocklist;
pub mod collect;
pub mod events;
pub mod geo;
pub mod institutions;
pub mod portspread;
pub mod recurrence;
pub mod speedcov;
pub mod toolports;
pub mod types;
pub mod vertical;
pub mod volatility;
pub mod yearly;

pub use collect::{WeekCell, YearAnalysis, YearCollector};
