//! The streaming per-year aggregator.
//!
//! One pass over a year's admitted probe stream builds every aggregate the
//! figure modules need, while the embedded fingerprint + campaign pipeline
//! runs alongside. Memory is proportional to the number of *distinct*
//! sources, ports and (week, /16) cells — not packets.
//!
//! Internally the collector is compact: sources are interned to dense ids
//! by the pipeline (one hash probe per record), per-source aggregates are
//! `Vec`-indexed by that id, distinct-source sets are sorted-vec/bitmap
//! hybrids ([`crate::compact`]), and the remaining tuple-keyed maps pack
//! their keys into single integers hashed with [`crate::fasthash`]. The
//! public [`YearAnalysis`] is assembled from this state at
//! [`YearCollector::finish`] with its historical field types unchanged.

use std::collections::{BTreeMap, HashMap, HashSet};

use synscan_wire::{Ipv4Address, ProbeRecord};

use synscan_scanners::traits::ToolKind;

use crate::campaign::{tool_slot, Campaign, CampaignConfig, NoiseStats, Pipeline, TOOL_BY_SLOT};
use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use crate::compact::{IdSet, PortSet};
use crate::fasthash::FxHashMap;
use crate::sketch::{HeavyHitterConfig, HeavyHitters};

/// Seconds per day, as µs.
const DAY_MICROS: u64 = 86_400 * 1_000_000;

/// Per-(week, /16) activity cell for the volatility analysis.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct WeekCell {
    /// Distinct scanning sources seen from this /16 this week.
    pub sources: u64,
    /// Packets received from this /16 this week.
    pub packets: u64,
    /// Campaigns that *started* in this /16 this week.
    pub campaigns: u64,
}

/// Everything the figure modules need about one year.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct YearAnalysis {
    /// Calendar year of the capture window.
    pub year: u16,
    /// First admitted packet timestamp (µs).
    pub start_micros: u64,
    /// Last admitted packet timestamp (µs).
    pub end_micros: u64,
    /// Admitted scan packets.
    pub total_packets: u64,
    /// Distinct scanning sources.
    pub distinct_sources: u64,
    /// Packets per destination port.
    pub port_packets: BTreeMap<u16, u64>,
    /// Distinct sources per destination port.
    pub port_sources: BTreeMap<u16, u64>,
    /// Distinct ports contacted per source.
    pub source_port_counts: HashMap<u32, u32>,
    /// Packets sent by each source.
    pub source_packets: HashMap<u32, u64>,
    /// Sources that contacted both ports of interest pairs are derived from
    /// this: port -> set of sources, kept for the co-scanning analysis
    /// (bounded by distinct sources × their ports).
    pub port_source_sets: HashMap<u16, HashSet<u32>>,
    /// Packets per (day index, port) — the event-decay input.
    pub day_port_packets: HashMap<(u32, u16), u64>,
    /// Packets per (tool, port); unattributed packets under `None`.
    pub tool_port_packets: HashMap<(Option<ToolKind>, u16), u64>,
    /// Week × /16 volatility cells.
    pub week_blocks: HashMap<(u32, u16), WeekCell>,
    /// The identified campaigns.
    pub campaigns: Vec<Campaign>,
    /// Rejected (non-campaign) traffic.
    pub noise: NoiseStats,
    /// Telescope monitored-address count used for extrapolations.
    pub monitored: u64,
    /// Sublinear heavy-hitter sketch state (top-K + count-min), present
    /// when the run enabled `--heavy-hitters`. The "network impact" report
    /// section is derived from this at render time.
    pub heavy: Option<HeavyHitters>,
}

impl YearAnalysis {
    /// Observation window length in days (at least one day).
    pub fn window_days(&self) -> f64 {
        ((self.end_micros.saturating_sub(self.start_micros)) as f64 / DAY_MICROS as f64).max(1.0)
    }

    /// Average admitted packets per day.
    pub fn packets_per_day(&self) -> f64 {
        self.total_packets as f64 / self.window_days()
    }

    /// Campaigns per 30-day month.
    pub fn scans_per_month(&self) -> f64 {
        self.campaigns.len() as f64 / self.window_days() * 30.0
    }

    /// The telescope model for extrapolations.
    pub fn model(&self) -> synscan_stats::TelescopeModel {
        synscan_stats::TelescopeModel::new(self.monitored)
    }

    /// Merge the shard outputs of a source-partitioned run into the analysis
    /// the sequential pass over the union stream would have produced.
    ///
    /// **Invariant:** the partials must come from a *partition by source* of
    /// one admitted stream, all built against the same origin timestamp,
    /// year, and telescope. Source-keyed maps are then key-disjoint and every
    /// aggregate is a plain sum or set union, so the merge is exact and
    /// order-independent; campaigns are re-sorted into the canonical
    /// (start time, source) order the sequential detector emits.
    ///
    /// # Panics
    /// If `partials` is empty or the partials disagree on year/telescope.
    pub fn merge_partials(partials: Vec<YearAnalysis>) -> YearAnalysis {
        let mut iter = partials.into_iter();
        let mut merged = iter
            .next()
            .expect("merge_partials needs at least one partial");
        for partial in iter {
            merged.absorb(partial);
        }
        merged
            .campaigns
            .sort_by_key(|c| (c.first_ts_micros, c.src_ip));
        // port_sources is derived data; recompute from the merged sets so
        // sources scanning one port from two shards are never double-counted
        // (they cannot be under the partition invariant, but deriving keeps
        // the field correct by construction).
        merged.port_sources = merged
            .port_source_sets
            .iter()
            .map(|(port, set)| (*port, set.len() as u64))
            .collect();
        merged
    }

    fn absorb(&mut self, other: YearAnalysis) {
        assert_eq!(self.year, other.year, "partials from different years");
        assert_eq!(
            self.monitored, other.monitored,
            "partials from different telescopes"
        );
        // Every shard of a non-empty stream shares the origin; an all-empty
        // shard reports end = 0 which max() ignores.
        self.start_micros = self.start_micros.min(other.start_micros);
        self.end_micros = self.end_micros.max(other.end_micros);
        self.total_packets += other.total_packets;
        // Sources are disjoint across shards, so cardinalities add.
        self.distinct_sources += other.distinct_sources;
        for (port, n) in other.port_packets {
            *self.port_packets.entry(port).or_default() += n;
        }
        for (port, set) in other.port_source_sets {
            self.port_source_sets.entry(port).or_default().extend(set);
        }
        self.source_port_counts.extend(other.source_port_counts);
        self.source_packets.extend(other.source_packets);
        for (key, n) in other.day_port_packets {
            *self.day_port_packets.entry(key).or_default() += n;
        }
        for (key, n) in other.tool_port_packets {
            *self.tool_port_packets.entry(key).or_default() += n;
        }
        for (key, cell) in other.week_blocks {
            let mine = self.week_blocks.entry(key).or_default();
            mine.sources += cell.sources;
            mine.packets += cell.packets;
            mine.campaigns += cell.campaigns;
        }
        self.campaigns.extend(other.campaigns);
        for (reason, n) in other.noise.rejected_sequences {
            *self.noise.rejected_sequences.entry(reason).or_default() += n;
        }
        self.noise.rejected_packets += other.noise.rejected_packets;
        match (&mut self.heavy, other.heavy) {
            (Some(mine), Some(theirs)) => mine.absorb(theirs),
            (None, None) => {}
            _ => panic!("partials disagree on heavy-hitter tracking"),
        }
    }
}

/// Per-port accumulator: packet count plus the distinct-source set, in one
/// map slot so the hot path pays a single lookup for both.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct PortStat {
    packets: u64,
    sources: IdSet,
}

/// Per-(week, /16) accumulator; the distinct-source count is derived from
/// the set at finish time.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct WeekState {
    packets: u64,
    sources: IdSet,
}

/// Streaming collector: offer records, then [`YearCollector::finish`].
#[derive(Debug, Clone, PartialEq)]
pub struct YearCollector {
    year: u16,
    pipeline: Pipeline,
    monitored: u64,
    period_micros: u64,
    start_micros: Option<u64>,
    end_micros: u64,
    total_packets: u64,
    /// Packets + distinct sources per port (one lookup per record).
    port_stats: FxHashMap<u16, PortStat>,
    /// Packets per source, indexed by interned id.
    source_packets: Vec<u64>,
    /// Distinct ports per source, indexed by interned id.
    source_ports: Vec<PortSet>,
    /// Packets per packed `(day << 16) | port` key.
    day_port_packets: FxHashMap<u64, u64>,
    /// Packets per packed `(tool_slot << 16) | port` key (slot 0 = no tool).
    tool_port_packets: FxHashMap<u32, u64>,
    /// Volatility cells per packed `(week << 16) | slash16` key.
    week_cells: FxHashMap<u64, WeekState>,
    /// Sublinear heavy-hitter tracking, when enabled for the run.
    heavy: Option<HeavyHitters>,
}

impl YearCollector {
    /// New collector for `year` with the given campaign thresholds and the
    /// paper's weekly volatility granularity.
    pub fn new(year: u16, config: CampaignConfig) -> Self {
        Self::with_period(year, config, 7.0)
    }

    /// As [`YearCollector::new`] with an explicit volatility period in days.
    /// Short simulated windows (e.g. 7 days instead of the paper's 29-61)
    /// use shorter periods so the Figure 2 change statistics still have
    /// several period pairs to compare.
    pub fn with_period(year: u16, config: CampaignConfig, period_days: f64) -> Self {
        assert!(period_days > 0.0);
        Self {
            year,
            monitored: config.monitored_addresses,
            period_micros: (period_days * DAY_MICROS as f64) as u64,
            pipeline: Pipeline::new(config),
            start_micros: None,
            end_micros: 0,
            total_packets: 0,
            port_stats: FxHashMap::default(),
            source_packets: Vec::new(),
            source_ports: Vec::new(),
            day_port_packets: FxHashMap::default(),
            tool_port_packets: FxHashMap::default(),
            week_cells: FxHashMap::default(),
            heavy: None,
        }
    }

    /// As [`YearCollector::with_period`], additionally pinning the origin
    /// timestamp day/week indices are computed against.
    ///
    /// A sequential collector derives the origin from its first record; a
    /// shard of a source-partitioned stream must instead use the origin of
    /// the *whole* stream, or its day and week bucket boundaries would drift
    /// from the sequential reference.
    pub fn with_origin(
        year: u16,
        config: CampaignConfig,
        period_days: f64,
        t0_micros: u64,
    ) -> Self {
        let mut collector = Self::with_period(year, config, period_days);
        collector.start_micros = Some(t0_micros);
        collector
    }

    /// Timestamp of the first admitted record — the day/week binning origin —
    /// or `None` before any record has been offered. Checkpoints persist this
    /// so resumed sharded runs can re-broadcast the origin to fresh workers.
    pub fn origin(&self) -> Option<u64> {
        self.start_micros
    }

    /// Pre-size the per-source state for roughly `distinct_sources` sources,
    /// avoiding rehash/regrow churn when the caller knows the stream's width
    /// ahead of time (generator ground truth, shard fan-out).
    pub fn reserve_sources(&mut self, distinct_sources: usize) {
        self.pipeline.reserve_sources(distinct_sources);
        self.source_ports.reserve(distinct_sources);
        self.source_packets.reserve(distinct_sources);
    }

    /// Pre-size the per-port maps for roughly `distinct_ports` ports.
    pub fn reserve_ports(&mut self, distinct_ports: usize) {
        self.port_stats.reserve(distinct_ports);
        self.tool_port_packets.reserve(distinct_ports);
    }

    /// Turn on sublinear heavy-hitter tracking for this run. Must be called
    /// before any record is offered (every shard of a run enables the same
    /// config up front, so merged partials agree); a second call is a no-op
    /// to keep the hint application idempotent.
    pub fn enable_heavy_hitters(&mut self, config: HeavyHitterConfig) {
        if self.heavy.is_none() {
            self.heavy = Some(HeavyHitters::new(config));
        }
    }

    /// Offer one admitted (SYN-filtered) record in timestamp order.
    pub fn offer(&mut self, record: &ProbeRecord) {
        let (verdict, sid) = self.pipeline.process_interned(record);
        let t0 = *self.start_micros.get_or_insert(record.ts_micros);
        self.end_micros = self.end_micros.max(record.ts_micros);
        self.total_packets += 1;

        // Ids are dense and assigned in stream order, so a new source grows
        // the per-source vectors by exactly one slot.
        let idx = sid as usize;
        if idx >= self.source_packets.len() {
            self.source_packets.resize(idx + 1, 0);
            self.source_ports.resize_with(idx + 1, PortSet::default);
        }
        self.source_packets[idx] += 1;
        self.source_ports[idx].insert(record.dst_port);

        let stat = self.port_stats.entry(record.dst_port).or_default();
        stat.packets += 1;
        stat.sources.insert(sid);

        let rel = record.ts_micros.saturating_sub(t0);
        let day = (rel / DAY_MICROS) as u32;
        *self
            .day_port_packets
            .entry((u64::from(day) << 16) | u64::from(record.dst_port))
            .or_default() += 1;

        let tool_idx = match verdict.tool() {
            None => 0u32,
            Some(tool) => 1 + tool_slot(tool) as u32,
        };
        *self
            .tool_port_packets
            .entry((tool_idx << 16) | u32::from(record.dst_port))
            .or_default() += 1;

        // The sketch is keyed by the raw source address (interned ids are
        // shard-local and would not merge) and reuses the verdict's tool
        // slot for the census tallies.
        if let Some(heavy) = self.heavy.as_mut() {
            heavy.offer(record.src_ip.0, record.ts_micros, tool_idx as usize);
        }

        let week = (rel / self.period_micros) as u32;
        let cell = self
            .week_cells
            .entry((u64::from(week) << 16) | u64::from(record.src_ip.slash16()))
            .or_default();
        cell.packets += 1;
        cell.sources.insert(sid);
    }

    /// Periodic housekeeping to bound pipeline memory on long streams.
    pub fn housekeeping(&mut self, now_micros: u64) {
        self.pipeline.housekeeping(now_micros);
    }

    /// Serialize the complete collector state for a pipeline checkpoint.
    ///
    /// The campaign configuration is written first, so
    /// [`YearCollector::restore_from`] is self-contained. Hash maps are
    /// serialized in sorted key order: the byte stream for a given logical
    /// state is unique, independent of map iteration order.
    pub fn snapshot_to(&self, w: &mut SnapWriter) {
        self.pipeline.config().snapshot_to(w);
        w.put_u16(self.year);
        w.put_u64(self.monitored);
        w.put_u64(self.period_micros);
        w.put_opt_u64(self.start_micros);
        w.put_u64(self.end_micros);
        w.put_u64(self.total_packets);
        self.pipeline.snapshot_to(w);

        let mut ports: Vec<u16> = self.port_stats.keys().copied().collect();
        ports.sort_unstable();
        w.put_u64(ports.len() as u64);
        for port in ports {
            let stat = &self.port_stats[&port];
            w.put_u16(port);
            w.put_u64(stat.packets);
            stat.sources.snapshot_to(w);
        }

        w.put_u64(self.source_packets.len() as u64);
        for &packets in &self.source_packets {
            w.put_u64(packets);
        }
        w.put_u64(self.source_ports.len() as u64);
        for ports in &self.source_ports {
            ports.snapshot_to(w);
        }

        let mut day_keys: Vec<u64> = self.day_port_packets.keys().copied().collect();
        day_keys.sort_unstable();
        w.put_u64(day_keys.len() as u64);
        for key in day_keys {
            w.put_u64(key);
            w.put_u64(self.day_port_packets[&key]);
        }

        let mut tool_keys: Vec<u32> = self.tool_port_packets.keys().copied().collect();
        tool_keys.sort_unstable();
        w.put_u64(tool_keys.len() as u64);
        for key in tool_keys {
            w.put_u32(key);
            w.put_u64(self.tool_port_packets[&key]);
        }

        let mut week_keys: Vec<u64> = self.week_cells.keys().copied().collect();
        week_keys.sort_unstable();
        w.put_u64(week_keys.len() as u64);
        for key in week_keys {
            let cell = &self.week_cells[&key];
            w.put_u64(key);
            w.put_u64(cell.packets);
            cell.sources.snapshot_to(w);
        }

        // Heavy-hitter sketch state, presence-tagged (format version 2).
        match &self.heavy {
            None => w.put_u8(0),
            Some(heavy) => {
                w.put_u8(1);
                heavy.snapshot_to(w);
            }
        }
    }

    /// Rebuild a collector written by [`YearCollector::snapshot_to`].
    pub fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, CheckpointError> {
        let config = CampaignConfig::restore_from(r)?;
        let year = r.take_u16()?;
        let monitored = r.take_u64()?;
        let period_micros = r.take_u64()?;
        if period_micros == 0 {
            return Err(CheckpointError::Corrupt("zero volatility period".into()));
        }
        let start_micros = r.take_opt_u64()?;
        let end_micros = r.take_u64()?;
        let total_packets = r.take_u64()?;
        let pipeline = Pipeline::restore_from(config, r)?;

        let n_ports = r.take_len(11)?;
        let mut port_stats = FxHashMap::default();
        port_stats.reserve(n_ports);
        for _ in 0..n_ports {
            let port = r.take_u16()?;
            let packets = r.take_u64()?;
            let sources = IdSet::restore_from(r)?;
            port_stats.insert(port, PortStat { packets, sources });
        }
        if port_stats.len() != n_ports {
            return Err(CheckpointError::Corrupt(
                "duplicate port in collector snapshot".into(),
            ));
        }

        let n_sources = r.take_len(8)?;
        let mut source_packets = Vec::with_capacity(n_sources);
        for _ in 0..n_sources {
            source_packets.push(r.take_u64()?);
        }
        let n_port_sets = r.take_len(2)?;
        let mut source_ports = Vec::with_capacity(n_port_sets);
        for _ in 0..n_port_sets {
            source_ports.push(PortSet::restore_from(r)?);
        }

        let n_days = r.take_len(16)?;
        let mut day_port_packets = FxHashMap::default();
        day_port_packets.reserve(n_days);
        for _ in 0..n_days {
            let key = r.take_u64()?;
            let n = r.take_u64()?;
            day_port_packets.insert(key, n);
        }

        let n_tools = r.take_len(12)?;
        let mut tool_port_packets = FxHashMap::default();
        tool_port_packets.reserve(n_tools);
        for _ in 0..n_tools {
            let key = r.take_u32()?;
            let n = r.take_u64()?;
            tool_port_packets.insert(key, n);
        }

        let n_weeks = r.take_len(17)?;
        let mut week_cells = FxHashMap::default();
        week_cells.reserve(n_weeks);
        for _ in 0..n_weeks {
            let key = r.take_u64()?;
            let packets = r.take_u64()?;
            let sources = IdSet::restore_from(r)?;
            week_cells.insert(key, WeekState { packets, sources });
        }

        let heavy = match r.take_u8()? {
            0 => None,
            1 => Some(HeavyHitters::restore_from(r)?),
            tag => {
                return Err(CheckpointError::Corrupt(format!(
                    "bad heavy-hitter presence tag {tag}"
                )))
            }
        };

        Ok(Self {
            year,
            pipeline,
            monitored,
            period_micros,
            start_micros,
            end_micros,
            total_packets,
            port_stats,
            source_packets,
            source_ports,
            day_port_packets,
            tool_port_packets,
            week_cells,
            heavy,
        })
    }

    /// Finish the year: close campaigns and assemble the analysis bundle,
    /// converting the compact internal state back to the public (IP-keyed,
    /// std-collection) `YearAnalysis` representation.
    pub fn finish(self) -> YearAnalysis {
        let t0 = self.start_micros.unwrap_or(0);
        let (campaigns, noise, table) = self.pipeline.finish_with_sources();
        let ips = table.ips();

        let mut week_blocks: HashMap<(u32, u16), WeekCell> =
            HashMap::with_capacity(self.week_cells.len());
        for (key, state) in &self.week_cells {
            week_blocks.insert(
                ((key >> 16) as u32, (key & 0xffff) as u16),
                WeekCell {
                    sources: state.sources.len() as u64,
                    packets: state.packets,
                    campaigns: 0,
                },
            );
        }
        for campaign in &campaigns {
            let week = (campaign.first_ts_micros.saturating_sub(t0) / self.period_micros) as u32;
            week_blocks
                .entry((week, campaign.src_ip.slash16()))
                .or_default()
                .campaigns += 1;
        }

        let mut port_packets = BTreeMap::new();
        let mut port_sources = BTreeMap::new();
        let mut port_source_sets: HashMap<u16, HashSet<u32>> =
            HashMap::with_capacity(self.port_stats.len());
        for (&port, stat) in &self.port_stats {
            port_packets.insert(port, stat.packets);
            port_sources.insert(port, stat.sources.len() as u64);
            port_source_sets.insert(
                port,
                stat.sources.iter().map(|sid| ips[sid as usize]).collect(),
            );
        }

        YearAnalysis {
            year: self.year,
            start_micros: t0,
            end_micros: self.end_micros,
            total_packets: self.total_packets,
            distinct_sources: table.len() as u64,
            port_packets,
            port_sources,
            source_port_counts: self
                .source_ports
                .iter()
                .enumerate()
                .map(|(sid, ports)| (ips[sid], ports.len() as u32))
                .collect(),
            source_packets: self
                .source_packets
                .iter()
                .enumerate()
                .map(|(sid, &packets)| (ips[sid], packets))
                .collect(),
            port_source_sets,
            day_port_packets: self
                .day_port_packets
                .iter()
                .map(|(&key, &n)| (((key >> 16) as u32, (key & 0xffff) as u16), n))
                .collect(),
            tool_port_packets: self
                .tool_port_packets
                .iter()
                .map(|(&key, &n)| {
                    let tool = match key >> 16 {
                        0 => None,
                        slot => Some(TOOL_BY_SLOT[slot as usize - 1]),
                    };
                    ((tool, (key & 0xffff) as u16), n)
                })
                .collect(),
            week_blocks,
            campaigns,
            noise,
            monitored: self.monitored,
            heavy: self.heavy,
        }
    }
}

/// Bundle a source address into the campaign's /16 key space (helper shared
/// by volatility consumers).
pub fn slash16_of(src: Ipv4Address) -> u16 {
    src.slash16()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synscan_wire::TcpFlags;

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            min_distinct_dests: 5,
            min_rate_pps: 10.0,
            expiry_secs: 3600.0,
            monitored_addresses: 1 << 16,
        }
    }

    fn record(src: u32, dst: u32, port: u16, ts: u64) -> ProbeRecord {
        ProbeRecord {
            ts_micros: ts,
            src_ip: Ipv4Address(src),
            dst_ip: Ipv4Address(dst),
            src_port: 999,
            dst_port: port,
            seq: dst ^ 0x0bad_cafe,
            ip_id: 3,
            ttl: 61,
            flags: TcpFlags::SYN,
            window: 512,
        }
    }

    #[test]
    fn aggregates_are_consistent() {
        let mut collector = YearCollector::new(2020, cfg());
        // Source A scans 10 dests on port 80; source B scans 8 dests on 22+443.
        for i in 0..10u32 {
            collector.offer(&record(0x0101_0000, 100 + i, 80, (i as u64) * 1000));
        }
        for i in 0..8u32 {
            let port = if i % 2 == 0 { 22 } else { 443 };
            collector.offer(&record(0x0202_0000, 200 + i, port, (i as u64) * 1000 + 50));
        }
        let analysis = collector.finish();
        assert_eq!(analysis.total_packets, 18);
        assert_eq!(analysis.distinct_sources, 2);
        assert_eq!(analysis.port_packets[&80], 10);
        assert_eq!(analysis.port_sources[&80], 1);
        assert_eq!(analysis.source_port_counts[&0x0101_0000], 1);
        assert_eq!(analysis.source_port_counts[&0x0202_0000], 2);
        assert_eq!(analysis.campaigns.len(), 2);
    }

    #[test]
    fn week_cells_track_slash16_activity() {
        let mut collector = YearCollector::new(2020, cfg());
        // Week 0: 6 packets from /16 0x0101; week 1: 2 packets from same.
        for i in 0..6u32 {
            collector.offer(&record(0x0101_0000 + i, 100 + i, 80, (i as u64) * 1000));
        }
        let week1 = 8 * DAY_MICROS;
        for i in 0..2u32 {
            collector.offer(&record(
                0x0101_0000 + i,
                300 + i,
                80,
                week1 + (i as u64) * 1000,
            ));
        }
        let analysis = collector.finish();
        assert_eq!(analysis.week_blocks[&(0, 0x0101)].packets, 6);
        assert_eq!(analysis.week_blocks[&(0, 0x0101)].sources, 6);
        assert_eq!(analysis.week_blocks[&(1, 0x0101)].packets, 2);
    }

    #[test]
    fn day_port_matrix_indexes_relative_days() {
        let mut collector = YearCollector::new(2021, cfg());
        collector.offer(&record(1, 2, 7547, 0));
        collector.offer(&record(1, 3, 7547, 3 * DAY_MICROS + 5));
        let analysis = collector.finish();
        assert_eq!(analysis.day_port_packets[&(0, 7547)], 1);
        assert_eq!(analysis.day_port_packets[&(3, 7547)], 1);
    }

    #[test]
    fn packets_per_day_uses_window_length() {
        let mut collector = YearCollector::new(2022, cfg());
        for i in 0..20u32 {
            collector.offer(&record(1, 100 + i, 80, (i as u64) * (DAY_MICROS / 10)));
        }
        let analysis = collector.finish();
        // 20 packets over ~1.9 days.
        let ppd = analysis.packets_per_day();
        assert!(ppd > 9.0 && ppd < 21.0, "{ppd}");
    }

    #[test]
    fn merge_partials_is_order_independent() {
        // Three disjoint-source shards, same origin: merging in any order
        // yields one identical analysis.
        let shard = |src: u32, port: u16, n: u32| {
            let mut collector = YearCollector::with_origin(2020, cfg(), 7.0, 0);
            collector.reserve_sources(1);
            for i in 0..n {
                collector.offer(&record(src, 100 + i, port, 500 + u64::from(i) * 1000));
            }
            collector.finish()
        };
        let (a, b, c) = (shard(1, 80, 12), shard(2, 443, 16), shard(3, 80, 8));
        let forward = YearAnalysis::merge_partials(vec![a.clone(), b.clone(), c.clone()]);
        let backward = YearAnalysis::merge_partials(vec![c, a, b]);
        assert_eq!(forward, backward);
        assert_eq!(forward.total_packets, 36);
        assert_eq!(forward.distinct_sources, 3);
        assert_eq!(forward.port_packets[&80], 20);
        assert_eq!(forward.port_sources[&80], 2);
        assert_eq!(forward.start_micros, 0);
        assert_eq!(forward.campaigns.len(), 3);
        assert!(forward
            .campaigns
            .windows(2)
            .all(|w| (w[0].first_ts_micros, w[0].src_ip) <= (w[1].first_ts_micros, w[1].src_ip)));
    }

    #[test]
    fn merge_partials_tolerates_an_empty_shard() {
        // A shard that received no records (all its sources were filtered,
        // or the source hash simply never routed to it) contributes an empty
        // analysis; merging it in must be the identity.
        let mut busy = YearCollector::with_origin(2020, cfg(), 7.0, 0);
        for i in 0..12u32 {
            busy.offer(&record(1, 100 + i, 80, 500 + u64::from(i) * 1000));
        }
        let busy = busy.finish();
        let empty = YearCollector::with_origin(2020, cfg(), 7.0, 0).finish();
        assert_eq!(empty.total_packets, 0);

        let merged = YearAnalysis::merge_partials(vec![busy.clone(), empty.clone()]);
        assert_eq!(merged, YearAnalysis::merge_partials(vec![busy.clone()]));
        assert_eq!(merged.total_packets, busy.total_packets);
        assert_eq!(merged.distinct_sources, busy.distinct_sources);
        assert_eq!(merged.campaigns, busy.campaigns);
        // Empty-first ordering must not disturb the window bounds either.
        let merged = YearAnalysis::merge_partials(vec![empty, busy.clone()]);
        assert_eq!(merged.end_micros, busy.end_micros);
        assert_eq!(merged.port_sources, busy.port_sources);
    }

    #[test]
    fn merged_shards_match_a_sequential_pass() {
        // Interleave two sources, split by source, merge — bit-identical to
        // the one-collector pass.
        let records: Vec<ProbeRecord> = (0..40u32)
            .map(|i| {
                record(
                    if i % 2 == 0 { 0x0101_0000 } else { 0x0202_0000 },
                    1000 + i,
                    if i % 2 == 0 { 80 } else { 22 },
                    u64::from(i) * 1000,
                )
            })
            .collect();
        let mut sequential = YearCollector::with_period(2021, cfg(), 7.0);
        for r in &records {
            sequential.offer(r);
        }
        let t0 = records[0].ts_micros;
        let mut even = YearCollector::with_origin(2021, cfg(), 7.0, t0);
        let mut odd = YearCollector::with_origin(2021, cfg(), 7.0, t0);
        for r in &records {
            if r.src_ip.0 == 0x0101_0000 {
                even.offer(r);
            } else {
                odd.offer(r);
            }
        }
        let merged = YearAnalysis::merge_partials(vec![odd.finish(), even.finish()]);
        assert_eq!(sequential.finish(), merged);
    }

    fn collector_round_trip(collector: &YearCollector) -> YearCollector {
        let mut w = SnapWriter::new();
        collector.snapshot_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = YearCollector::restore_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "snapshot fully consumed");
        back
    }

    #[test]
    fn empty_collector_snapshot_round_trips() {
        let collector = YearCollector::with_period(2020, cfg(), 7.0);
        let back = collector_round_trip(&collector);
        assert_eq!(back, collector);
        assert_eq!(back.finish(), collector.finish());
    }

    #[test]
    fn collector_snapshot_with_pinned_origin_round_trips() {
        let collector = YearCollector::with_origin(2020, cfg(), 7.0, 123_456);
        let back = collector_round_trip(&collector);
        assert_eq!(back, collector);
        assert_eq!(back.finish().start_micros, 123_456);
    }

    #[test]
    fn mid_stream_collector_snapshot_resumes_bit_identically() {
        use synscan_scanners::traits::craft_record;
        use synscan_scanners::zmap::ZmapScanner;
        // A mixed stream — plain SYNs across two /16s and two weeks, plus a
        // ZMap-fingerprinted burst — split at an arbitrary record boundary.
        let z = ZmapScanner::new(9);
        let mut records: Vec<ProbeRecord> = (0..30u32)
            .map(|i| {
                record(
                    0x0101_0000 + (i % 3),
                    100 + i,
                    [80u16, 443, 7547][i as usize % 3],
                    u64::from(i) * 40_000,
                )
            })
            .collect();
        for i in 0..12u64 {
            records.push(craft_record(
                &z,
                Ipv4Address(0x0202_0001),
                Ipv4Address(0x0a00_0000 + i as u32),
                23,
                i,
                1_200_000 + i * 1000,
                8,
            ));
        }
        records.sort_by_key(|r| r.ts_micros);

        let mut uninterrupted = YearCollector::with_period(2021, cfg(), 7.0);
        for r in &records {
            uninterrupted.offer(r);
        }

        let split = 17;
        let mut first_half = YearCollector::with_period(2021, cfg(), 7.0);
        for r in &records[..split] {
            first_half.offer(r);
        }
        let mut resumed = collector_round_trip(&first_half);
        assert_eq!(resumed, first_half);
        for r in &records[split..] {
            resumed.offer(r);
        }
        assert_eq!(resumed.finish(), uninterrupted.finish());
    }

    #[test]
    fn tool_slot_names_match_the_campaign_layer() {
        // The sketch module names tool slots without depending on ToolKind
        // (so it compiles standalone); this pins its slot order to the
        // campaign layer's TOOL_BY_SLOT.
        use crate::sketch::TOOL_SLOT_NAMES;
        assert_eq!(TOOL_SLOT_NAMES.len(), TOOL_BY_SLOT.len() + 1);
        assert_eq!(TOOL_SLOT_NAMES[0], "unattributed");
        for (slot, tool) in TOOL_BY_SLOT.iter().enumerate() {
            assert_eq!(
                TOOL_SLOT_NAMES[slot + 1],
                format!("{tool:?}").to_lowercase(),
                "slot {slot}"
            );
        }
    }

    #[test]
    fn heavy_enabled_shards_merge_to_the_sequential_sketch() {
        let heavy_cfg = HeavyHitterConfig {
            k: 8,
            width: 128,
            depth: 3,
        };
        let records: Vec<ProbeRecord> = (0..60u32)
            .map(|i| {
                record(
                    0x0101_0000 + (i % 4),
                    1000 + i,
                    if i % 2 == 0 { 80 } else { 22 },
                    u64::from(i) * 1000,
                )
            })
            .collect();
        let mut sequential = YearCollector::with_period(2020, cfg(), 7.0);
        sequential.enable_heavy_hitters(heavy_cfg);
        for r in &records {
            sequential.offer(r);
        }
        let t0 = records[0].ts_micros;
        let mut shards: Vec<YearCollector> = (0..2)
            .map(|_| {
                let mut c = YearCollector::with_origin(2020, cfg(), 7.0, t0);
                c.enable_heavy_hitters(heavy_cfg);
                c
            })
            .collect();
        for r in &records {
            shards[(r.src_ip.0 % 2) as usize].offer(r);
        }
        let mut parts: Vec<YearAnalysis> = shards.into_iter().map(YearCollector::finish).collect();
        parts.reverse();
        let merged = YearAnalysis::merge_partials(parts);
        let reference = sequential.finish();
        assert_eq!(merged, reference);
        let heavy = reference.heavy.expect("heavy enabled");
        assert_eq!(heavy.count_min().total(), 60);
        assert_eq!(heavy.top_sources().len(), 4);
    }

    #[test]
    fn heavy_collector_snapshot_round_trips() {
        let mut collector = YearCollector::with_period(2022, cfg(), 7.0);
        collector.enable_heavy_hitters(HeavyHitterConfig::with_k(4));
        for i in 0..25u32 {
            collector.offer(&record(
                0x0303_0000 + (i % 6),
                500 + i,
                80,
                u64::from(i) * 999,
            ));
        }
        let back = collector_round_trip(&collector);
        assert_eq!(back, collector);
        assert_eq!(back.finish(), collector.finish());
    }

    #[test]
    #[should_panic(expected = "heavy-hitter tracking")]
    fn mixed_heavy_partials_panic() {
        let with = {
            let mut c = YearCollector::with_origin(2020, cfg(), 7.0, 0);
            c.enable_heavy_hitters(HeavyHitterConfig::default());
            c.finish()
        };
        let without = YearCollector::with_origin(2020, cfg(), 7.0, 0).finish();
        let _ = YearAnalysis::merge_partials(vec![with, without]);
    }

    #[test]
    fn tool_attribution_flows_into_port_matrix() {
        use synscan_scanners::traits::craft_record;
        use synscan_scanners::zmap::ZmapScanner;
        let mut collector = YearCollector::new(2023, cfg());
        let z = ZmapScanner::new(1);
        for i in 0..6u64 {
            collector.offer(&craft_record(
                &z,
                Ipv4Address(0x0909_0101),
                Ipv4Address(0x0100_0000 + i as u32),
                443,
                i,
                i * 1000,
                7,
            ));
        }
        let analysis = collector.finish();
        assert_eq!(analysis.tool_port_packets[&(Some(ToolKind::Zmap), 443)], 6);
    }
}
