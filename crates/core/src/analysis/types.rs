//! Table 2 and Figure 5: scanner types.
//!
//! Classifies every source into the institutional / hosting / enterprise /
//! residential / unknown label space and reports each class's share of
//! sources, campaigns, and packets (Table 2), plus the per-port class
//! distribution over the top targeted ports (Figure 5). The paper's headline:
//! institutional scanners are 0.16% of sources but send 32.63% of packets.

use std::collections::BTreeMap;

use synscan_netmodel::{InternetRegistry, ScannerClass};
use synscan_wire::Ipv4Address;

use super::collect::YearAnalysis;

/// One Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ClassShares {
    /// Share of distinct source IPs.
    pub sources: f64,
    /// Share of campaigns.
    pub scans: f64,
    /// Share of packets.
    pub packets: f64,
}

/// The full Table 2: shares per scanner class.
pub fn class_shares(
    analysis: &YearAnalysis,
    registry: &InternetRegistry,
) -> BTreeMap<ScannerClass, ClassShares> {
    let mut source_counts: BTreeMap<ScannerClass, u64> = BTreeMap::new();
    let mut packet_counts: BTreeMap<ScannerClass, u64> = BTreeMap::new();
    for (&src, &packets) in &analysis.source_packets {
        let class = registry.class(Ipv4Address(src));
        *source_counts.entry(class).or_default() += 1;
        *packet_counts.entry(class).or_default() += packets;
    }
    let mut scan_counts: BTreeMap<ScannerClass, u64> = BTreeMap::new();
    for campaign in &analysis.campaigns {
        *scan_counts
            .entry(registry.class(campaign.src_ip))
            .or_default() += 1;
    }

    let total_sources = analysis.source_packets.len().max(1) as f64;
    let total_packets = analysis.total_packets.max(1) as f64;
    let total_scans = analysis.campaigns.len().max(1) as f64;

    ScannerClass::ALL
        .iter()
        .map(|&class| {
            (
                class,
                ClassShares {
                    sources: source_counts.get(&class).copied().unwrap_or(0) as f64 / total_sources,
                    scans: scan_counts.get(&class).copied().unwrap_or(0) as f64 / total_scans,
                    packets: packet_counts.get(&class).copied().unwrap_or(0) as f64 / total_packets,
                },
            )
        })
        .collect()
}

/// Per-port packets from *non-institutional* campaigns only — the §6.8
/// filtering step that keeps research scanners from dominating Internet
/// quantifications ("looking into the mirror").
pub fn non_institutional_port_packets(
    analysis: &YearAnalysis,
    registry: &InternetRegistry,
) -> BTreeMap<u16, u64> {
    let mut map: BTreeMap<u16, u64> = BTreeMap::new();
    for campaign in &analysis.campaigns {
        if registry.class(campaign.src_ip) == ScannerClass::Institutional {
            continue;
        }
        for (&port, &packets) in &campaign.port_packets {
            *map.entry(port).or_default() += packets;
        }
    }
    map
}

/// One Figure 5 row: a port and the class mix of its campaigns' traffic.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PortClassRow {
    /// The port.
    pub port: u16,
    /// Share of this port's campaign packets per class.
    pub mix: BTreeMap<ScannerClass, f64>,
}

/// Figure 5: class distribution over the `top_n` ports by campaign traffic.
///
/// Uses campaigns (scans) as the unit, attributing each campaign's per-port
/// packets to its source's class.
pub fn class_mix_by_port(
    analysis: &YearAnalysis,
    registry: &InternetRegistry,
    top_n: usize,
) -> Vec<PortClassRow> {
    // port -> class -> packets (from campaigns only, as the figure does).
    let mut port_class: BTreeMap<u16, BTreeMap<ScannerClass, u64>> = BTreeMap::new();
    for campaign in &analysis.campaigns {
        let class = registry.class(campaign.src_ip);
        for (&port, &packets) in &campaign.port_packets {
            *port_class
                .entry(port)
                .or_default()
                .entry(class)
                .or_default() += packets;
        }
    }
    let mut ranked: Vec<(u16, u64)> = port_class
        .iter()
        .map(|(port, classes)| (*port, classes.values().sum()))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(top_n);

    ranked
        .into_iter()
        .map(|(port, total)| {
            let mix = port_class[&port]
                .iter()
                .map(|(class, packets)| (*class, *packets as f64 / total.max(1) as f64))
                .collect();
            PortClassRow { port, mix }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::collect::YearCollector;
    use crate::campaign::CampaignConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use synscan_netmodel::Country;
    use synscan_wire::{ProbeRecord, TcpFlags};

    fn record(src: Ipv4Address, dst: u32, port: u16, ts: u64) -> ProbeRecord {
        ProbeRecord {
            ts_micros: ts,
            src_ip: src,
            dst_ip: Ipv4Address(dst),
            src_port: 1,
            dst_port: port,
            seq: 9,
            ip_id: 2,
            ttl: 64,
            flags: TcpFlags::SYN,
            window: 64,
        }
    }

    #[test]
    fn shares_reflect_class_activity() {
        let registry = InternetRegistry::build(21, &[]);
        let mut rng = StdRng::seed_from_u64(2);
        let residential = registry
            .sample_source(&mut rng, Country::China, ScannerClass::Residential)
            .unwrap();
        let institutional = registry.org_source_ip(registry.orgs()[0].id, 0);

        let mut collector = YearCollector::new(
            2022,
            CampaignConfig {
                min_distinct_dests: 5,
                min_rate_pps: 1.0,
                expiry_secs: 3600.0,
                monitored_addresses: 1 << 16,
            },
        );
        // The residential bot sends 10 packets; the institutional scanner 90.
        for i in 0..10u32 {
            collector.offer(&record(residential, 100 + i, 23, (i as u64) * 1000));
        }
        for i in 0..90u32 {
            collector.offer(&record(institutional, 200 + i, 443, (i as u64) * 1000 + 5));
        }
        let analysis = collector.finish();
        let shares = class_shares(&analysis, &registry);

        let inst = shares[&ScannerClass::Institutional];
        let res = shares[&ScannerClass::Residential];
        assert!((inst.sources - 0.5).abs() < 1e-9);
        assert!((inst.packets - 0.9).abs() < 1e-9);
        assert!((res.packets - 0.1).abs() < 1e-9);
        // Both produced one campaign each.
        assert!((inst.scans - 0.5).abs() < 1e-9);

        // Figure 5: port 443 fully institutional, port 23 fully residential.
        let rows = class_mix_by_port(&analysis, &registry, 5);
        let https = rows.iter().find(|r| r.port == 443).unwrap();
        assert!((https.mix[&ScannerClass::Institutional] - 1.0).abs() < 1e-9);
        let telnet = rows.iter().find(|r| r.port == 23).unwrap();
        assert!((telnet.mix[&ScannerClass::Residential] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_institutional_filter_removes_org_traffic() {
        let registry = InternetRegistry::build(23, &[]);
        let inst = registry.org_source_ip(registry.orgs()[0].id, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let bot = registry
            .sample_source(&mut rng, Country::Brazil, ScannerClass::Residential)
            .unwrap();
        let mut collector = YearCollector::new(
            2024,
            CampaignConfig {
                min_distinct_dests: 5,
                min_rate_pps: 1.0,
                expiry_secs: 3600.0,
                monitored_addresses: 1 << 16,
            },
        );
        for i in 0..50u32 {
            collector.offer(&record(inst, 100 + i, 443, (i as u64) * 1000));
        }
        for i in 0..10u32 {
            collector.offer(&record(bot, 300 + i, 23, (i as u64) * 1000 + 5));
        }
        let analysis = collector.finish();
        let filtered = non_institutional_port_packets(&analysis, &registry);
        assert!(!filtered.contains_key(&443), "org HTTPS traffic removed");
        assert_eq!(filtered.get(&23), Some(&10));
    }

    #[test]
    fn shares_sum_to_one() {
        let registry = InternetRegistry::build(22, &[]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut collector = YearCollector::new(2022, CampaignConfig::scaled(1 << 12));
        for class in ScannerClass::ALL {
            if class == ScannerClass::Unknown {
                continue;
            }
            if let Some(src) = registry.sample_source_any(&mut rng, class) {
                for i in 0..5u32 {
                    collector.offer(&record(src, 100 + i, 80, (i as u64) * 1000));
                }
            }
        }
        let analysis = collector.finish();
        let shares = class_shares(&analysis, &registry);
        let total_sources: f64 = shares.values().map(|s| s.sources).sum();
        let total_packets: f64 = shares.values().map(|s| s.packets).sum();
        assert!((total_sources - 1.0).abs() < 1e-9);
        assert!((total_packets - 1.0).abs() < 1e-9);
    }
}
