//! §5.4 and §6.5: where scanning originates, and port/tool geography.
//!
//! Reproduced claims: China >30% of scanning in 2015, diversification over
//! the decade, port-country biases (China dominating MySQL/RDP, the US
//! dominating HTTPS), counts of ports where one country originates > 80% of
//! traffic, and per-tool country mixes (ZMap ≈ US+China, Masscan 2018 ≈
//! Russia).

use std::collections::BTreeMap;

use synscan_netmodel::{Country, InternetRegistry};

use crate::campaign::Campaign;

/// Country shares of campaign packets.
pub fn country_packet_shares(
    campaigns: &[Campaign],
    registry: &InternetRegistry,
) -> BTreeMap<Country, f64> {
    let mut counts: BTreeMap<Country, u64> = BTreeMap::new();
    let mut total = 0u64;
    for campaign in campaigns {
        let country = registry.country(campaign.src_ip).unwrap_or(Country::Other);
        *counts.entry(country).or_default() += campaign.packets;
        total += campaign.packets;
    }
    counts
        .into_iter()
        .map(|(country, count)| (country, count as f64 / total.max(1) as f64))
        .collect()
}

/// Herfindahl–Hirschman concentration of the country mix — falls as the
/// ecosystem diversifies (§5.4).
pub fn country_concentration(shares: &BTreeMap<Country, f64>) -> f64 {
    shares.values().map(|s| s * s).sum()
}

/// Per-port country dominance: for each port, the country originating the
/// largest share of its packets. Returns `port -> (country, share)`.
pub fn port_country_dominance(
    campaigns: &[Campaign],
    registry: &InternetRegistry,
) -> BTreeMap<u16, (Country, f64)> {
    port_country_dominance_min(campaigns, registry, 0)
}

/// As [`port_country_dominance`], but only for ports carrying at least
/// `min_packets` — dominance over a port seen twice is noise, and at
/// simulation scale the long tail would otherwise be attributed to whoever
/// sent its only packets.
pub fn port_country_dominance_min(
    campaigns: &[Campaign],
    registry: &InternetRegistry,
    min_packets: u64,
) -> BTreeMap<u16, (Country, f64)> {
    let mut per_port: BTreeMap<u16, BTreeMap<Country, u64>> = BTreeMap::new();
    for campaign in campaigns {
        let country = registry.country(campaign.src_ip).unwrap_or(Country::Other);
        for (&port, &packets) in &campaign.port_packets {
            *per_port
                .entry(port)
                .or_default()
                .entry(country)
                .or_default() += packets;
        }
    }
    per_port
        .into_iter()
        .filter_map(|(port, countries)| {
            let total: u64 = countries.values().sum();
            if total < min_packets {
                return None;
            }
            let (country, count) = countries
                .into_iter()
                .max_by_key(|(_, c)| *c)
                .expect("non-empty");
            Some((port, (country, count as f64 / total.max(1) as f64)))
        })
        .collect()
}

/// Number of ports where `country` originates more than `threshold` of the
/// traffic (§5.4: China > 80% on 14,444 ports in 2022, US on 666, ...).
pub fn dominated_port_count(
    dominance: &BTreeMap<u16, (Country, f64)>,
    country: Country,
    threshold: f64,
) -> usize {
    dominance
        .values()
        .filter(|(c, share)| *c == country && *share > threshold)
        .count()
}

/// Country mix of one tool's campaigns (§6.5).
pub fn tool_country_mix(
    campaigns: &[Campaign],
    registry: &InternetRegistry,
    tool: synscan_scanners::traits::ToolKind,
) -> BTreeMap<Country, f64> {
    let mut counts: BTreeMap<Country, u64> = BTreeMap::new();
    let mut total = 0u64;
    for campaign in campaigns {
        if campaign.tool() != Some(tool) {
            continue;
        }
        let country = registry.country(campaign.src_ip).unwrap_or(Country::Other);
        *counts.entry(country).or_default() += 1;
        total += 1;
    }
    counts
        .into_iter()
        .map(|(country, count)| (country, count as f64 / total.max(1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap as Map;
    use synscan_netmodel::ScannerClass;
    use synscan_scanners::traits::ToolKind;

    use synscan_wire::Ipv4Address;

    fn campaign(src: Ipv4Address, port: u16, packets: u64, tool: Option<ToolKind>) -> Campaign {
        let mut votes = Map::new();
        if let Some(t) = tool {
            votes.insert(t, packets);
        }
        Campaign {
            src_ip: src,
            first_ts_micros: 0,
            last_ts_micros: 1_000_000,
            packets,
            distinct_dests: 100,
            port_packets: Map::from([(port, packets)]),
            tool_votes: votes,
        }
    }

    fn source(registry: &InternetRegistry, rng: &mut StdRng, country: Country) -> Ipv4Address {
        registry
            .sample_source(rng, country, ScannerClass::Hosting)
            .unwrap()
    }

    #[test]
    fn shares_and_concentration() {
        let registry = InternetRegistry::build(51, &[]);
        let mut rng = StdRng::seed_from_u64(6);
        let cn = source(&registry, &mut rng, Country::China);
        let us = source(&registry, &mut rng, Country::UnitedStates);
        let campaigns = vec![campaign(cn, 3389, 300, None), campaign(us, 443, 100, None)];
        let shares = country_packet_shares(&campaigns, &registry);
        assert!((shares[&Country::China] - 0.75).abs() < 1e-9);
        assert!((shares[&Country::UnitedStates] - 0.25).abs() < 1e-9);
        let hhi = country_concentration(&shares);
        assert!((hhi - (0.75f64.powi(2) + 0.25f64.powi(2))).abs() < 1e-9);
    }

    #[test]
    fn port_dominance_finds_the_biases() {
        let registry = InternetRegistry::build(52, &[]);
        let mut rng = StdRng::seed_from_u64(7);
        let cn = source(&registry, &mut rng, Country::China);
        let cn2 = source(&registry, &mut rng, Country::China);
        let us = source(&registry, &mut rng, Country::UnitedStates);
        let campaigns = vec![
            campaign(cn, 3306, 900, None),
            campaign(cn2, 3306, 50, None),
            campaign(us, 3306, 50, None),
            campaign(us, 443, 500, None),
        ];
        let dom = port_country_dominance(&campaigns, &registry);
        assert_eq!(dom[&3306].0, Country::China);
        assert!(dom[&3306].1 > 0.9);
        assert_eq!(dom[&443].0, Country::UnitedStates);
        assert_eq!(dominated_port_count(&dom, Country::China, 0.8), 1);
        assert_eq!(dominated_port_count(&dom, Country::UnitedStates, 0.8), 1);
        assert_eq!(dominated_port_count(&dom, Country::Russia, 0.8), 0);
    }

    #[test]
    fn dominance_min_packets_filters_thin_ports() {
        let registry = InternetRegistry::build(54, &[]);
        let mut rng = StdRng::seed_from_u64(9);
        let cn = source(&registry, &mut rng, Country::China);
        let campaigns = vec![
            campaign(cn, 3306, 500, None),
            campaign(cn, 9999, 2, None), // a two-packet tail port
        ];
        let all = port_country_dominance(&campaigns, &registry);
        assert!(all.contains_key(&9999));
        let filtered = port_country_dominance_min(&campaigns, &registry, 10);
        assert!(!filtered.contains_key(&9999));
        assert!(filtered.contains_key(&3306));
    }

    #[test]
    fn tool_mix_filters_by_attribution() {
        let registry = InternetRegistry::build(53, &[]);
        let mut rng = StdRng::seed_from_u64(8);
        let ru = source(&registry, &mut rng, Country::Russia);
        let cn = source(&registry, &mut rng, Country::China);
        let campaigns = vec![
            campaign(ru, 80, 10, Some(ToolKind::Masscan)),
            campaign(ru, 81, 10, Some(ToolKind::Masscan)),
            campaign(cn, 80, 10, Some(ToolKind::Zmap)),
        ];
        let mix = tool_country_mix(&campaigns, &registry, ToolKind::Masscan);
        assert!((mix[&Country::Russia] - 1.0).abs() < 1e-9);
        assert!(!mix.contains_key(&Country::China));
    }
}
