//! Figure 6: scanner recurrence and downtime between scans.
//!
//! §6.6: most scanners never come back; institutional scanners are the
//! exception, with a large share running more than 100 separate campaigns
//! and a pronounced mode of exactly-daily re-scans. The figure is a pair of
//! per-class CDFs: campaigns per source IP, and idle time between
//! consecutive campaigns of the same source.

use std::collections::{BTreeMap, HashMap};

use synscan_netmodel::{InternetRegistry, ScannerClass};
use synscan_stats::Ecdf;
use synscan_wire::Ipv4Address;

use crate::campaign::Campaign;

/// Per-class recurrence CDFs.
#[derive(Debug, Clone)]
pub struct RecurrenceCdfs {
    /// CDF of campaigns per source, per class.
    pub campaigns_per_source: BTreeMap<ScannerClass, Ecdf>,
    /// CDF of downtime between consecutive campaigns (seconds), per class.
    pub downtime_secs: BTreeMap<ScannerClass, Ecdf>,
}

impl RecurrenceCdfs {
    /// Fraction of sources of `class` with more than `n` campaigns.
    pub fn fraction_with_more_than(&self, class: ScannerClass, n: f64) -> f64 {
        self.campaigns_per_source
            .get(&class)
            .map(|cdf| cdf.tail(n))
            .unwrap_or(0.0)
    }

    /// Fraction of downtimes of `class` within `lo..=hi` seconds — used to
    /// detect the institutional "scan again next day" mode.
    pub fn downtime_mode_fraction(&self, class: ScannerClass, lo: f64, hi: f64) -> f64 {
        self.downtime_secs
            .get(&class)
            .map(|cdf| cdf.eval(hi) - cdf.eval(lo))
            .unwrap_or(0.0)
    }
}

/// Compute recurrence over one or more years' campaign lists (spanning years
/// is what reveals recurrence — pass all years concatenated).
pub fn recurrence(campaigns: &[Campaign], registry: &InternetRegistry) -> RecurrenceCdfs {
    // Source -> sorted campaign intervals.
    let mut per_source: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
    for campaign in campaigns {
        per_source
            .entry(campaign.src_ip.0)
            .or_default()
            .push((campaign.first_ts_micros, campaign.last_ts_micros));
    }

    let mut counts: BTreeMap<ScannerClass, Vec<f64>> = BTreeMap::new();
    let mut gaps: BTreeMap<ScannerClass, Vec<f64>> = BTreeMap::new();
    for (src, mut intervals) in per_source {
        let class = registry.class(Ipv4Address(src));
        intervals.sort_unstable();
        counts
            .entry(class)
            .or_default()
            .push(intervals.len() as f64);
        for pair in intervals.windows(2) {
            // Downtime = gap between end of one campaign and start of the next.
            let gap = pair[1].0.saturating_sub(pair[0].1) as f64 / 1e6;
            gaps.entry(class).or_default().push(gap);
        }
    }

    RecurrenceCdfs {
        campaigns_per_source: counts
            .into_iter()
            .map(|(class, v)| (class, Ecdf::new(v)))
            .collect(),
        downtime_secs: gaps
            .into_iter()
            .map(|(class, v)| (class, Ecdf::new(v)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap as Map;
    use synscan_netmodel::Country;

    fn campaign(src: Ipv4Address, start_secs: u64, end_secs: u64) -> Campaign {
        Campaign {
            src_ip: src,
            first_ts_micros: start_secs * 1_000_000,
            last_ts_micros: end_secs * 1_000_000,
            packets: 100,
            distinct_dests: 100,
            port_packets: Map::from([(80u16, 100u64)]),
            tool_votes: Map::new(),
        }
    }

    #[test]
    fn daily_recurrence_shows_as_a_mode() {
        let registry = InternetRegistry::build(31, &[]);
        let inst = registry.org_source_ip(registry.orgs()[0].id, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let res = registry
            .sample_source(&mut rng, Country::Brazil, ScannerClass::Residential)
            .unwrap();

        let mut campaigns = Vec::new();
        // Institutional: scans every day for 30 days, 1 h long each.
        for day in 0..30u64 {
            campaigns.push(campaign(inst, day * 86_400, day * 86_400 + 3600));
        }
        // Residential: one single campaign.
        campaigns.push(campaign(res, 1000, 2000));

        let rec = recurrence(&campaigns, &registry);
        assert!(
            rec.fraction_with_more_than(ScannerClass::Institutional, 20.0) > 0.99,
            "institutional source recurs > 20 times"
        );
        assert_eq!(
            rec.fraction_with_more_than(ScannerClass::Residential, 1.0),
            0.0
        );
        // The institutional downtime mode sits near 23 h (86,400 − 3,600 s).
        let mode = rec.downtime_mode_fraction(ScannerClass::Institutional, 80_000.0, 90_000.0);
        assert!(mode > 0.99, "daily mode fraction {mode}");
        // Residential class produced no gaps at all.
        assert!(!rec.downtime_secs.contains_key(&ScannerClass::Residential));
    }

    #[test]
    fn counts_group_by_source_not_campaign() {
        let registry = InternetRegistry::build(32, &[]);
        let mut rng = StdRng::seed_from_u64(5);
        let a = registry
            .sample_source(&mut rng, Country::Germany, ScannerClass::Hosting)
            .unwrap();
        let campaigns = vec![
            campaign(a, 0, 100),
            campaign(a, 10_000, 10_100),
            campaign(a, 50_000, 50_100),
        ];
        let rec = recurrence(&campaigns, &registry);
        let cdf = &rec.campaigns_per_source[&ScannerClass::Hosting];
        assert_eq!(cdf.len(), 1, "one source");
        assert_eq!(cdf.quantile(1.0), 3.0, "three campaigns");
        assert_eq!(rec.downtime_secs[&ScannerClass::Hosting].len(), 2);
    }
}
