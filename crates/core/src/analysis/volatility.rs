//! Figure 2: weekly change of scanning activity per /16 netblock.
//!
//! For every /16 present in two consecutive weeks, the change factor is
//! `max(current, previous) / min(current, previous)` — i.e. a block that
//! doubled *or* halved scores factor 2. The paper finds the ecosystem wildly
//! volatile: in more than 50% of /16s the activity changes by a factor ≥ 2
//! week over week, and in more than a third by ≥ 3; only 20–30% of blocks
//! are stable.

use std::collections::HashMap;

use synscan_stats::Ecdf;

use super::collect::{WeekCell, YearAnalysis};

/// The three per-metric change-factor CDFs of Figure 2.
#[derive(Debug, Clone)]
pub struct VolatilityCdfs {
    /// Change factor of distinct sources per /16.
    pub sources: Ecdf,
    /// Change factor of campaigns launched per /16.
    pub campaigns: Ecdf,
    /// Change factor of packets per /16.
    pub packets: Ecdf,
}

impl VolatilityCdfs {
    /// Fraction of blocks whose `metric` changed by at least `factor`.
    pub fn fraction_changing_by(&self, factor: f64) -> (f64, f64, f64) {
        (
            self.sources.tail(factor - 1e-12),
            self.campaigns.tail(factor - 1e-12),
            self.packets.tail(factor - 1e-12),
        )
    }
}

/// Compute week-over-week change factors across all /16s of one year.
///
/// Blocks absent in either week of a pair are skipped (no meaningful
/// factor); blocks present with zero in one metric but not the other are
/// capped at `CAP` to keep the CDF finite.
pub fn weekly_change(analysis: &YearAnalysis) -> VolatilityCdfs {
    weekly_change_from_cells(&analysis.week_blocks)
}

const CAP: f64 = 1000.0;

/// As [`weekly_change`] but over raw cells (exposed for tests/benches).
pub fn weekly_change_from_cells(cells: &HashMap<(u32, u16), WeekCell>) -> VolatilityCdfs {
    let max_week = cells.keys().map(|(w, _)| *w).max().unwrap_or(0);
    let mut sources = Vec::new();
    let mut campaigns = Vec::new();
    let mut packets = Vec::new();
    for week in 0..max_week {
        // Gather blocks present in either week of the pair.
        let blocks: std::collections::HashSet<u16> = cells
            .keys()
            .filter(|(w, _)| *w == week || *w == week + 1)
            .map(|(_, b)| *b)
            .collect();
        for block in blocks {
            let prev = cells.get(&(week, block));
            let cur = cells.get(&(week + 1, block));
            let (prev, cur) = match (prev, cur) {
                (Some(p), Some(c)) => (p.clone(), c.clone()),
                (Some(p), None) => (p.clone(), WeekCell::default()),
                (None, Some(c)) => (WeekCell::default(), c.clone()),
                (None, None) => continue,
            };
            sources.push(factor(prev.sources as f64, cur.sources as f64));
            campaigns.push(factor(prev.campaigns as f64, cur.campaigns as f64));
            packets.push(factor(prev.packets as f64, cur.packets as f64));
        }
    }
    VolatilityCdfs {
        sources: Ecdf::new(sources),
        campaigns: Ecdf::new(campaigns),
        packets: Ecdf::new(packets),
    }
}

/// Symmetric change factor (≥ 1); transitions to/from zero cap at `CAP`.
fn factor(prev: f64, cur: f64) -> f64 {
    if prev == 0.0 && cur == 0.0 {
        1.0
    } else if prev == 0.0 || cur == 0.0 {
        CAP
    } else {
        (cur / prev).max(prev / cur).min(CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(sources: u64, campaigns: u64, packets: u64) -> WeekCell {
        WeekCell {
            sources,
            campaigns,
            packets,
        }
    }

    #[test]
    fn stable_blocks_have_factor_one() {
        let mut cells = HashMap::new();
        cells.insert((0u32, 1u16), cell(10, 2, 100));
        cells.insert((1u32, 1u16), cell(10, 2, 100));
        let v = weekly_change_from_cells(&cells);
        assert_eq!(v.packets.samples(), &[1.0]);
        assert_eq!(v.sources.samples(), &[1.0]);
        let (s, c, p) = v.fraction_changing_by(2.0);
        assert_eq!((s, c, p), (0.0, 0.0, 0.0));
    }

    #[test]
    fn doubling_and_halving_both_score_factor_two() {
        let mut cells = HashMap::new();
        cells.insert((0u32, 1u16), cell(10, 1, 100));
        cells.insert((1u32, 1u16), cell(20, 1, 50));
        let v = weekly_change_from_cells(&cells);
        assert_eq!(v.sources.samples(), &[2.0]); // doubled
        assert_eq!(v.packets.samples(), &[2.0]); // halved
    }

    #[test]
    fn appearing_blocks_cap_the_factor() {
        let mut cells = HashMap::new();
        cells.insert((1u32, 5u16), cell(3, 1, 30)); // appears in week 1
        cells.insert((0u32, 6u16), cell(2, 1, 20)); // disappears after week 0
        cells.insert((1u32, 6u16), cell(0, 0, 0));
        let v = weekly_change_from_cells(&cells);
        // Block 5: 0 -> 3 sources = capped; block 6: 2 -> 0 = capped.
        assert!(v.sources.samples().iter().all(|&f| f == CAP || f == 1.0));
        let (s, _, _) = v.fraction_changing_by(2.0);
        assert!(s > 0.5);
    }

    #[test]
    fn multiple_week_pairs_accumulate() {
        let mut cells = HashMap::new();
        for week in 0..4u32 {
            cells.insert((week, 9u16), cell(1 << week, 1, 10 * (week as u64 + 1)));
        }
        let v = weekly_change_from_cells(&cells);
        // Three week pairs, sources double each week.
        assert_eq!(v.sources.samples(), &[2.0, 2.0, 2.0]);
        let (s, _, _) = v.fraction_changing_by(2.0);
        assert_eq!(s, 1.0);
        let (s3, _, _) = v.fraction_changing_by(3.0);
        assert_eq!(s3, 0.0);
    }
}
