//! Figures 8–10: port coverage of known scanning organizations.
//!
//! For every known org (Censys, Shodan, Palo Alto, Onyphe, Shadowserver,
//! Rapid7, universities, ...), the number of distinct ports its sources
//! scanned in the capture window. The paper finds Censys and Palo Alto at
//! the full 65,536-port range by 2024, Onyphe jumping from under half to
//! full between 2023 and 2024, and universities flat at a handful of ports.

use std::collections::{BTreeMap, HashSet};

use synscan_netmodel::InternetRegistry;

use crate::campaign::Campaign;

/// One row of Figure 8/9/10.
#[derive(Debug, Clone, serde::Serialize)]
pub struct OrgCoverageRow {
    /// Organization name.
    pub org: String,
    /// Distinct ports scanned in the window.
    pub ports_scanned: u32,
    /// Fraction of the 65,536-port TCP range.
    pub port_range_fraction: f64,
    /// Campaigns attributed to the org's sources.
    pub campaigns: u64,
    /// Distinct source IPs of the org seen scanning.
    pub sources: u64,
}

/// Compute per-org port coverage from a year's campaigns.
pub fn org_port_coverage(
    campaigns: &[Campaign],
    registry: &InternetRegistry,
) -> Vec<OrgCoverageRow> {
    #[derive(Default)]
    struct Acc {
        ports: HashSet<u16>,
        campaigns: u64,
        sources: HashSet<u32>,
    }
    let mut per_org: BTreeMap<u16, Acc> = BTreeMap::new();
    for campaign in campaigns {
        if let Some(org) = registry.known_org(campaign.src_ip) {
            let acc = per_org.entry(org.id.0).or_default();
            acc.ports.extend(campaign.port_packets.keys().copied());
            acc.campaigns += 1;
            acc.sources.insert(campaign.src_ip.0);
        }
    }
    let mut rows: Vec<OrgCoverageRow> = per_org
        .into_iter()
        .map(|(org_idx, acc)| {
            let org = &registry.orgs()[org_idx as usize];
            OrgCoverageRow {
                org: org.name.to_string(),
                ports_scanned: acc.ports.len() as u32,
                port_range_fraction: acc.ports.len() as f64 / 65_536.0,
                campaigns: acc.campaigns,
                sources: acc.sources.len() as u64,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.ports_scanned
            .cmp(&a.ports_scanned)
            .then(a.org.cmp(&b.org))
    });
    rows
}

/// Share of all packets sent by known orgs — the appendix's "0.36% of
/// sources, 51.31% of traffic" style headline. Returns
/// `(source_share, packet_share)`.
pub fn known_org_shares(
    campaigns: &[Campaign],
    registry: &InternetRegistry,
    total_sources: u64,
    total_packets: u64,
) -> (f64, f64) {
    let mut org_sources: HashSet<u32> = HashSet::new();
    let mut org_packets = 0u64;
    for campaign in campaigns {
        if registry.known_org(campaign.src_ip).is_some() {
            org_sources.insert(campaign.src_ip.0);
            org_packets += campaign.packets;
        }
    }
    (
        org_sources.len() as f64 / total_sources.max(1) as f64,
        org_packets as f64 / total_packets.max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;
    use synscan_wire::Ipv4Address;

    fn campaign(src: Ipv4Address, ports: &[u16]) -> Campaign {
        Campaign {
            src_ip: src,
            first_ts_micros: 0,
            last_ts_micros: 1_000_000,
            packets: ports.len() as u64 * 10,
            distinct_dests: 100,
            port_packets: ports.iter().map(|&p| (p, 10u64)).collect(),
            tool_votes: Map::new(),
        }
    }

    #[test]
    fn coverage_counts_distinct_ports_across_campaigns() {
        let registry = InternetRegistry::build(41, &[]);
        let org = &registry.orgs()[0];
        let src0 = registry.org_source_ip(org.id, 0);
        let src1 = registry.org_source_ip(org.id, 1);
        let campaigns = vec![
            campaign(src0, &[80, 443, 22]),
            campaign(src1, &[443, 8080]),
            // A non-org campaign is ignored.
            campaign(Ipv4Address::new(5, 5, 5, 5), &[80]),
        ];
        let rows = org_port_coverage(&campaigns, &registry);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].org, org.name);
        assert_eq!(rows[0].ports_scanned, 4); // {80, 443, 22, 8080}
        assert_eq!(rows[0].campaigns, 2);
        assert_eq!(rows[0].sources, 2);
    }

    #[test]
    fn shares_are_relative_to_totals() {
        let registry = InternetRegistry::build(42, &[]);
        let org = &registry.orgs()[1];
        let src = registry.org_source_ip(org.id, 0);
        let campaigns = vec![campaign(src, &[80])]; // 10 packets
        let (src_share, pkt_share) = known_org_shares(&campaigns, &registry, 100, 40);
        assert!((src_share - 0.01).abs() < 1e-9);
        assert!((pkt_share - 0.25).abs() < 1e-9);
    }

    #[test]
    fn rows_sort_by_coverage() {
        let registry = InternetRegistry::build(43, &[]);
        let a = &registry.orgs()[0];
        let b = &registry.orgs()[1];
        let campaigns = vec![
            campaign(registry.org_source_ip(a.id, 0), &[80]),
            campaign(registry.org_source_ip(b.id, 0), &[80, 443, 22]),
        ];
        let rows = org_port_coverage(&campaigns, &registry);
        assert_eq!(rows[0].org, b.name);
        assert!(rows[0].ports_scanned > rows[1].ports_scanned);
    }
}
