//! Figure 1: vulnerability disclosures spark a scanning surge that the
//! Internet quickly forgets.
//!
//! For a disclosure affecting `port` on day `d₀`, the figure plots the
//! port's daily traffic relative to its pre-disclosure baseline, per day
//! after disclosure. §4.3 verifies with a KS test that the *distribution of
//! scanning over ports* returns to normal within weeks.

use synscan_stats::ks::{ks_test_freq, KsResult};

use super::collect::YearAnalysis;

/// A disclosure event to analyze.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct EventSpec {
    /// The affected port.
    pub port: u16,
    /// Day index (relative to the capture window start) of the disclosure.
    pub disclosure_day: u32,
}

/// The decay curve of one event.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EventCurve {
    /// The event.
    pub event: EventSpec,
    /// Pre-disclosure baseline: mean packets/day on the port.
    pub baseline: f64,
    /// `relative[i]` = traffic on disclosure_day + i, as a multiple of the
    /// baseline.
    pub relative: Vec<f64>,
}

impl EventCurve {
    /// Peak surge multiple.
    pub fn peak(&self) -> f64 {
        self.relative.iter().copied().fold(0.0, f64::max)
    }

    /// First day-after-disclosure where traffic is back within
    /// `threshold` × baseline (e.g. 2.0), if it happens in the window.
    pub fn days_to_return(&self, threshold: f64) -> Option<usize> {
        // Skip day 0 (the spike itself may start late in the day).
        self.relative
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, &r)| r <= threshold)
            .map(|(i, _)| i)
    }
}

/// Compute the decay curve for one event over `days_after` days.
///
/// The baseline is the mean daily traffic on the port over all days strictly
/// before the disclosure (or 1.0 when the port was silent — matching the
/// "new port appears out of nowhere" situation of real disclosures).
pub fn event_curve(analysis: &YearAnalysis, event: EventSpec, days_after: u32) -> EventCurve {
    let daily = |day: u32| -> f64 {
        analysis
            .day_port_packets
            .get(&(day, event.port))
            .copied()
            .unwrap_or(0) as f64
    };
    let baseline = if event.disclosure_day == 0 {
        1.0
    } else {
        let sum: f64 = (0..event.disclosure_day).map(daily).sum();
        (sum / event.disclosure_day as f64).max(1.0)
    };
    let relative = (0..=days_after)
        .map(|i| daily(event.disclosure_day + i) / baseline)
        .collect();
    EventCurve {
        event,
        baseline,
        relative,
    }
}

/// §4.3's KS verification: compare the per-port traffic distribution of the
/// `window` days before the disclosure against the `window` days starting at
/// `after_start` days past it. A non-rejecting result means the ecosystem
/// has "returned to normal". Returns `None` when either window holds no
/// traffic (e.g. it falls outside the capture).
pub fn ks_return_to_normal(
    analysis: &YearAnalysis,
    event: EventSpec,
    window: u32,
    after_start: u32,
) -> Option<KsResult> {
    let collect_window = |from: i64, to: i64| -> Vec<(u32, f64)> {
        let mut freq: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
        for (&(day, port), &count) in &analysis.day_port_packets {
            if (day as i64) >= from && (day as i64) < to {
                *freq.entry(port).or_default() += count;
            }
        }
        freq.into_iter()
            .map(|(port, count)| (u32::from(port), count as f64))
            .collect()
    };
    let d0 = event.disclosure_day as i64;
    let before = collect_window(d0 - window as i64, d0);
    let after = collect_window(d0 + after_start as i64, d0 + (after_start + window) as i64);
    if before.is_empty() || after.is_empty() {
        return None;
    }
    // Effective n: number of ports involved — the distribution is over the
    // port dimension, not raw packets (packet counts are aggregates of the
    // same daily process, not independent draws).
    let n = (before.len() + after.len()).max(2) as f64;
    Some(ks_test_freq(&before, &after, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::collect::YearCollector;
    use crate::campaign::CampaignConfig;
    use synscan_wire::{Ipv4Address, ProbeRecord, TcpFlags};

    const DAY: u64 = 86_400 * 1_000_000;

    fn analysis_with_spike() -> YearAnalysis {
        let mut collector = YearCollector::new(2021, CampaignConfig::scaled(1 << 10));
        let mut emit = |day: u64, port: u16, count: u32| {
            for i in 0..count {
                collector.offer(&ProbeRecord {
                    ts_micros: day * DAY + (i as u64) * 1000,
                    src_ip: Ipv4Address(0x0a0a_0000 + i),
                    dst_ip: Ipv4Address(0x0b0b_0000 + i),
                    src_port: 1,
                    dst_port: port,
                    seq: 0,
                    ip_id: 0,
                    ttl: 64,
                    flags: TcpFlags::SYN,
                    window: 1,
                });
            }
        };
        // Steady background on 80 and 22, all days 0..30.
        for day in 0..30u64 {
            emit(day, 80, 50);
            emit(day, 22, 30);
        }
        // Port 7547 baseline 10/day, spikes 30x on day 10, decays by day 14.
        for day in 0..30u64 {
            let count = match day {
                10 => 300,
                11 => 150,
                12 => 60,
                13 => 20,
                _ => 10,
            };
            emit(day, 7547, count);
        }
        collector.finish()
    }

    #[test]
    fn curve_shows_spike_and_decay() {
        let analysis = analysis_with_spike();
        let curve = event_curve(
            &analysis,
            EventSpec {
                port: 7547,
                disclosure_day: 10,
            },
            10,
        );
        assert!((curve.baseline - 10.0).abs() < 1e-9);
        assert!((curve.peak() - 30.0).abs() < 1e-9);
        // Back within 2x baseline on day 3 after (day 13: 20 packets).
        assert_eq!(curve.days_to_return(2.0), Some(3));
        // Long after: exactly baseline.
        assert!((curve.relative[8] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ks_outside_the_capture_is_none() {
        let analysis = analysis_with_spike();
        let event = EventSpec {
            port: 7547,
            disclosure_day: 10,
        };
        // The "after" window starts past the 30-day capture: no verdict.
        assert!(ks_return_to_normal(&analysis, event, 5, 60).is_none());
    }

    #[test]
    fn silent_port_uses_unit_baseline() {
        let analysis = analysis_with_spike();
        let curve = event_curve(
            &analysis,
            EventSpec {
                port: 9999,
                disclosure_day: 5,
            },
            3,
        );
        assert_eq!(curve.baseline, 1.0);
        assert!(curve.relative.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn ks_rejects_during_spike_accepts_after() {
        let analysis = analysis_with_spike();
        let event = EventSpec {
            port: 7547,
            disclosure_day: 10,
        };
        // Window straddling the spike differs from the pre-spike window...
        let during = ks_return_to_normal(&analysis, event, 2, 0).unwrap();
        // ... while two weeks later the distribution is back to normal.
        let after = ks_return_to_normal(&analysis, event, 5, 15).unwrap();
        assert!(
            during.statistic > after.statistic,
            "during {during:?} vs after {after:?}"
        );
        assert!(after.statistic < 0.05, "{after:?}");
    }
}
