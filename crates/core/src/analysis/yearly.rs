//! Table 1: per-year scan volume, top targeted ports, and tool shares.

use std::collections::BTreeMap;

use synscan_scanners::traits::ToolKind;

use super::collect::YearAnalysis;

/// One "top ports" ranking: `(port, share)` pairs, descending by share.
pub type PortRanking = Vec<(u16, f64)>;

/// One Table 1 column.
#[derive(Debug, Clone, serde::Serialize)]
pub struct YearSummary {
    /// Calendar year.
    pub year: u16,
    /// Average admitted packets per day.
    pub packets_per_day: f64,
    /// Distinct scanning sources over the window.
    pub distinct_sources: u64,
    /// Campaigns per 30-day month.
    pub scans_per_month: f64,
    /// Total campaigns in the window.
    pub total_scans: u64,
    /// Top ports by packets: `(port, share of packets)`.
    pub top_ports_by_packets: PortRanking,
    /// Top ports by distinct sources: `(port, share of sources)`.
    pub top_ports_by_sources: PortRanking,
    /// Top ports by campaigns: `(port, share of campaigns)`.
    pub top_ports_by_scans: PortRanking,
    /// Share of campaigns per tracked tool (the Table 1 "Tools by scans").
    pub tool_scan_shares: BTreeMap<String, f64>,
    /// Share of packets per tracked tool.
    pub tool_packet_shares: BTreeMap<String, f64>,
}

/// Build a Table 1 column from a year's aggregates.
///
/// `top_n` controls ranking depth (the paper prints 5).
pub fn summarize(analysis: &YearAnalysis, top_n: usize) -> YearSummary {
    let total_packets = analysis.total_packets.max(1) as f64;

    let top_ports_by_packets = rank(
        analysis.port_packets.iter().map(|(p, c)| (*p, *c as f64)),
        total_packets,
        top_n,
    );
    let top_ports_by_sources = rank(
        analysis.port_sources.iter().map(|(p, c)| (*p, *c as f64)),
        analysis.distinct_sources.max(1) as f64,
        top_n,
    );

    // Campaigns are attributed to their dominant port (most packets).
    let mut scan_port_counts: BTreeMap<u16, u64> = BTreeMap::new();
    let mut tool_scans: BTreeMap<Option<ToolKind>, u64> = BTreeMap::new();
    for campaign in &analysis.campaigns {
        if let Some((port, _)) = campaign
            .port_packets
            .iter()
            .max_by_key(|(_, count)| **count)
        {
            *scan_port_counts.entry(*port).or_default() += 1;
        }
        *tool_scans.entry(campaign.tool()).or_default() += 1;
    }
    let total_scans = analysis.campaigns.len() as u64;
    let top_ports_by_scans = rank(
        scan_port_counts.iter().map(|(p, c)| (*p, *c as f64)),
        total_scans.max(1) as f64,
        top_n,
    );

    let tool_scan_shares = ToolKind::ALL
        .iter()
        .map(|tool| {
            let count = tool_scans.get(&Some(*tool)).copied().unwrap_or(0);
            (
                tool.name().to_string(),
                count as f64 / total_scans.max(1) as f64,
            )
        })
        .collect();

    let mut tool_packets: BTreeMap<String, f64> = BTreeMap::new();
    for ((tool, _), count) in &analysis.tool_port_packets {
        let name = tool.map(|t| t.name()).unwrap_or("custom");
        *tool_packets.entry(name.to_string()).or_default() += *count as f64 / total_packets;
    }

    YearSummary {
        year: analysis.year,
        packets_per_day: analysis.packets_per_day(),
        distinct_sources: analysis.distinct_sources,
        scans_per_month: analysis.scans_per_month(),
        total_scans,
        top_ports_by_packets,
        top_ports_by_sources,
        top_ports_by_scans,
        tool_scan_shares,
        tool_packet_shares: tool_packets,
    }
}

fn rank(counts: impl Iterator<Item = (u16, f64)>, total: f64, top_n: usize) -> PortRanking {
    let mut entries: Vec<(u16, f64)> = counts.map(|(p, c)| (p, c / total)).collect();
    entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    entries.truncate(top_n);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::collect::YearCollector;
    use crate::campaign::CampaignConfig;
    use synscan_wire::{Ipv4Address, ProbeRecord, TcpFlags};

    fn record(src: u32, dst: u32, port: u16, ts: u64) -> ProbeRecord {
        ProbeRecord {
            ts_micros: ts,
            src_ip: Ipv4Address(src),
            dst_ip: Ipv4Address(dst),
            src_port: 999,
            dst_port: port,
            seq: 1,
            ip_id: 3,
            ttl: 61,
            flags: TcpFlags::SYN,
            window: 512,
        }
    }

    fn analysis() -> YearAnalysis {
        let cfg = CampaignConfig {
            min_distinct_dests: 5,
            min_rate_pps: 1.0,
            expiry_secs: 3600.0,
            monitored_addresses: 1 << 16,
        };
        let mut collector = YearCollector::new(2020, cfg);
        // 30 packets on 80 from src 1; 10 on 22 from src 2; 10 on 443 from src 3.
        for i in 0..30u32 {
            collector.offer(&record(1, 100 + i, 80, (i as u64) * 1000));
        }
        for i in 0..10u32 {
            collector.offer(&record(2, 200 + i, 22, (i as u64) * 1000 + 1));
        }
        for i in 0..10u32 {
            collector.offer(&record(3, 300 + i, 443, (i as u64) * 1000 + 2));
        }
        collector.finish()
    }

    #[test]
    fn top_ports_by_packets_are_ranked() {
        let summary = summarize(&analysis(), 3);
        assert_eq!(summary.top_ports_by_packets[0].0, 80);
        assert!((summary.top_ports_by_packets[0].1 - 0.6).abs() < 1e-9);
        assert_eq!(summary.top_ports_by_packets.len(), 3);
    }

    #[test]
    fn top_ports_by_sources_normalizes_by_sources() {
        let summary = summarize(&analysis(), 5);
        // Each port contacted by exactly one of 3 sources: share 1/3.
        for (_, share) in &summary.top_ports_by_sources {
            assert!((share - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scans_attributed_to_dominant_port() {
        let summary = summarize(&analysis(), 5);
        assert_eq!(summary.total_scans, 3);
        let scan_ports: Vec<u16> = summary.top_ports_by_scans.iter().map(|(p, _)| *p).collect();
        assert!(scan_ports.contains(&80));
        assert!(scan_ports.contains(&22));
        assert!(scan_ports.contains(&443));
    }

    #[test]
    fn tool_shares_default_to_zero_without_fingerprints() {
        let summary = summarize(&analysis(), 5);
        assert_eq!(summary.tool_scan_shares["zmap"], 0.0);
        assert_eq!(summary.tool_scan_shares["masscan"], 0.0);
        // All packets fall under the custom/unattributed bucket.
        assert!((summary.tool_packet_shares["custom"] - 1.0).abs() < 1e-9);
    }
}
