//! §5.2: vertical scans — campaigns targeting many ports.
//!
//! Reproduced claims: the count of campaigns targeting > 10,000 ports grows
//! from 1 (2015) to 2,134 (2020); > 100-port scans stay under 0.5% of all
//! campaigns; > 1,000-port scans average ~0.3 Gbps versus an overall average
//! of ~14 Mbps.

use synscan_stats::TelescopeModel;

use crate::campaign::Campaign;

/// Vertical-scan statistics for one year.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct VerticalStats {
    /// Campaigns targeting more than 100 distinct ports.
    pub over_100_ports: u64,
    /// Campaigns targeting more than 1,000 distinct ports.
    pub over_1000_ports: u64,
    /// Campaigns targeting more than 10,000 distinct ports.
    pub over_10000_ports: u64,
    /// Largest number of distinct ports in any single campaign.
    pub max_ports: u32,
    /// Fraction of campaigns targeting more than 100 ports.
    pub over_100_fraction: f64,
    /// Mean estimated bandwidth (bps) of the > 1,000-port campaigns.
    pub over_1000_mean_bps: f64,
    /// Mean estimated bandwidth (bps) over all campaigns.
    pub overall_mean_bps: f64,
}

/// Compute vertical-scan statistics.
pub fn vertical_stats(campaigns: &[Campaign], monitored: u64) -> VerticalStats {
    let model = TelescopeModel::new(monitored);
    let mut over_100 = 0u64;
    let mut over_1000 = 0u64;
    let mut over_10000 = 0u64;
    let mut max_ports = 0u32;
    let mut big_bps_sum = 0.0;
    let mut all_bps_sum = 0.0;
    for campaign in campaigns {
        let ports = campaign.distinct_ports() as u32;
        max_ports = max_ports.max(ports);
        let bps = campaign.estimates(&model).rate_bps;
        all_bps_sum += bps;
        if ports > 100 {
            over_100 += 1;
        }
        if ports > 1000 {
            over_1000 += 1;
            big_bps_sum += bps;
        }
        if ports > 10_000 {
            over_10000 += 1;
        }
    }
    let n = campaigns.len().max(1) as f64;
    VerticalStats {
        over_100_ports: over_100,
        over_1000_ports: over_1000,
        over_10000_ports: over_10000,
        max_ports,
        over_100_fraction: over_100 as f64 / n,
        over_1000_mean_bps: if over_1000 > 0 {
            big_bps_sum / over_1000 as f64
        } else {
            0.0
        },
        overall_mean_bps: all_bps_sum / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use synscan_wire::Ipv4Address;

    fn campaign(src: u32, n_ports: u32, packets_per_port: u64, dur_secs: u64) -> Campaign {
        Campaign {
            src_ip: Ipv4Address(src),
            first_ts_micros: 0,
            last_ts_micros: dur_secs * 1_000_000,
            packets: n_ports as u64 * packets_per_port,
            distinct_dests: 500,
            port_packets: (0..n_ports).map(|p| (p as u16, packets_per_port)).collect(),
            tool_votes: BTreeMap::new(),
        }
    }

    #[test]
    fn thresholds_count_correctly() {
        let campaigns = vec![
            campaign(1, 1, 100, 100),
            campaign(2, 150, 10, 100),
            campaign(3, 2000, 5, 100),
            campaign(4, 20_000, 1, 100),
        ];
        let stats = vertical_stats(&campaigns, 1 << 16);
        assert_eq!(stats.over_100_ports, 3);
        assert_eq!(stats.over_1000_ports, 2);
        assert_eq!(stats.over_10000_ports, 1);
        assert_eq!(stats.max_ports, 20_000);
        assert!((stats.over_100_fraction - 0.75).abs() < 1e-9);
    }

    #[test]
    fn vertical_scans_are_faster_on_average() {
        // Horizontal: 100 packets over 1000 s. Vertical: 10,000 over 100 s.
        let campaigns = vec![campaign(1, 1, 100, 1000), campaign(2, 2000, 5, 100)];
        let stats = vertical_stats(&campaigns, 1 << 16);
        // The vertical scan (100 pps at the telescope) dominates the mean;
        // the overall mean is dragged down by the slow horizontal scan.
        assert!(stats.over_1000_mean_bps > stats.overall_mean_bps);
        assert!(
            stats.over_1000_mean_bps
                > 100.0 * (stats.overall_mean_bps * 2.0 - stats.over_1000_mean_bps)
        );
    }

    #[test]
    fn empty_input_is_safe() {
        let stats = vertical_stats(&[], 1 << 16);
        assert_eq!(stats.over_100_ports, 0);
        assert_eq!(stats.over_1000_mean_bps, 0.0);
        assert_eq!(stats.max_ports, 0);
    }

    #[test]
    fn full_port_range_campaign_is_counted() {
        // BTreeMap keys are u16: port 0..=65535. 65,536 distinct ports.
        let c = Campaign {
            src_ip: Ipv4Address(1),
            first_ts_micros: 0,
            last_ts_micros: 1_000_000,
            packets: 65_536,
            distinct_dests: 500,
            port_packets: (0..=65_535u16).map(|p| (p, 1u64)).collect(),
            tool_votes: BTreeMap::new(),
        };
        let stats = vertical_stats(&[c], 1 << 16);
        assert_eq!(stats.max_ports, 65_536);
        assert_eq!(stats.over_10000_ports, 1);
    }
}
