//! Figure 3 and §5.1: how many ports does each scanner target?
//!
//! Reproduces: the CDF of distinct ports per source IP (83% single-port in
//! 2015 → 74% in 2020 → 65% in 2022), the co-scanning fraction (18% of
//! port-80 scanners also probing 8080 in 2015 → 87% in 2020), privileged-
//! port coverage above a noise floor, and the per-port daily probe floor
//! ("all ports receive more than 1,000 probes per day by 2022").

use synscan_netmodel::PortCensus;
use synscan_stats::{pearson, Ecdf, PearsonResult};

use super::collect::YearAnalysis;

/// The Figure 3 CDF: distinct destination ports per source.
pub fn ports_per_source_cdf(analysis: &YearAnalysis) -> Ecdf {
    analysis
        .source_port_counts
        .values()
        .map(|&c| c as f64)
        .collect()
}

/// Fraction of sources targeting exactly one port.
pub fn single_port_fraction(analysis: &YearAnalysis) -> f64 {
    let total = analysis.source_port_counts.len().max(1) as f64;
    let single = analysis
        .source_port_counts
        .values()
        .filter(|&&c| c == 1)
        .count() as f64;
    single / total
}

/// Fraction of sources targeting at least `n` ports.
pub fn at_least_n_ports_fraction(analysis: &YearAnalysis, n: u32) -> f64 {
    let total = analysis.source_port_counts.len().max(1) as f64;
    let many = analysis
        .source_port_counts
        .values()
        .filter(|&&c| c >= n)
        .count() as f64;
    many / total
}

/// Co-scanning: of the sources probing `port_a`, the fraction that also
/// probed `port_b` (§5.1's 80→8080 statistic).
pub fn co_scan_fraction(analysis: &YearAnalysis, port_a: u16, port_b: u16) -> Option<f64> {
    let a = analysis.port_source_sets.get(&port_a)?;
    if a.is_empty() {
        return None;
    }
    let b = analysis.port_source_sets.get(&port_b);
    let both = match b {
        Some(b) => a.iter().filter(|src| b.contains(src)).count(),
        None => 0,
    };
    Some(both as f64 / a.len() as f64)
}

/// Fraction of privileged ports (1–1023) receiving more than `noise_floor`
/// × the typical popular-port traffic (§5.1: 31% in 2015 above a 1% noise
/// floor, blanket coverage later). The reference level is the mean packet
/// count of the 20 busiest privileged ports, so a single full-range sweep
/// leaving one packet on every port does not count as "coverage".
pub fn privileged_port_coverage(analysis: &YearAnalysis, noise_floor: f64) -> f64 {
    let mut privileged: Vec<u64> = analysis
        .port_packets
        .iter()
        .filter(|(p, _)| **p >= 1 && **p <= 1023)
        .map(|(_, c)| *c)
        .collect();
    if privileged.is_empty() {
        return 0.0;
    }
    privileged.sort_unstable_by(|a, b| b.cmp(a));
    let top: &[u64] = &privileged[..privileged.len().min(20)];
    let reference = top.iter().sum::<u64>() as f64 / top.len() as f64;
    let covered = (1u16..=1023)
        .filter(|p| {
            analysis.port_packets.get(p).copied().unwrap_or(0) as f64 > reference * noise_floor
        })
        .count();
    covered as f64 / 1023.0
}

/// Co-scanning at *campaign* granularity (§5.1's "18% of scans targeting
/// port 80 were also targeting port 8080" — scans, not sources): of the
/// campaigns touching `port_a`, the fraction that also touch `port_b`.
pub fn campaign_co_scan_fraction(analysis: &YearAnalysis, port_a: u16, port_b: u16) -> Option<f64> {
    let on_a: Vec<_> = analysis
        .campaigns
        .iter()
        .filter(|c| c.port_packets.contains_key(&port_a))
        .collect();
    if on_a.is_empty() {
        return None;
    }
    let both = on_a
        .iter()
        .filter(|c| c.port_packets.contains_key(&port_b))
        .count();
    Some(both as f64 / on_a.len() as f64)
}

/// §5.1's (no-)correlation between deployed services and scanning interest:
/// Pearson r between the open-service count per port (from a vertical
/// census) and the scan packets per port. The paper finds R = 0.047 — "no
/// relation between the number of services and the number of scans".
/// Computed over the union of census ports and the year's 50 busiest ports,
/// zero-filling the missing side.
pub fn services_scans_correlation(
    analysis: &YearAnalysis,
    census: &PortCensus,
) -> Option<PearsonResult> {
    correlate_census(&analysis.port_packets, census)
}

/// The same correlation over an arbitrary per-port packet map — §6.8 advises
/// filtering institutional traffic out first ("papers quantifying the
/// Internet are essentially looking into the mirror" otherwise); callers can
/// pass the filtered map.
pub fn correlate_census(
    port_packets: &std::collections::BTreeMap<u16, u64>,
    census: &PortCensus,
) -> Option<PearsonResult> {
    let mut ports: std::collections::BTreeSet<u16> = census.open_ports.keys().copied().collect();
    let mut busiest: Vec<(u16, u64)> = port_packets.iter().map(|(p, c)| (*p, *c)).collect();
    busiest.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    ports.extend(busiest.iter().take(50).map(|(p, _)| *p));

    let xs: Vec<f64> = ports.iter().map(|p| census.open_count(*p) as f64).collect();
    let ys: Vec<f64> = ports
        .iter()
        .map(|p| port_packets.get(p).copied().unwrap_or(0) as f64)
        .collect();
    pearson(&xs, &ys)
}

/// Number of distinct ports receiving at least `min_packets_per_day`.
pub fn ports_above_daily_floor(analysis: &YearAnalysis, min_packets_per_day: f64) -> usize {
    let days = analysis.window_days();
    analysis
        .port_packets
        .values()
        .filter(|&&c| c as f64 / days >= min_packets_per_day)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::collect::YearCollector;
    use crate::campaign::CampaignConfig;
    use synscan_wire::{Ipv4Address, ProbeRecord, TcpFlags};

    fn record(src: u32, dst: u32, port: u16, ts: u64) -> ProbeRecord {
        ProbeRecord {
            ts_micros: ts,
            src_ip: Ipv4Address(src),
            dst_ip: Ipv4Address(dst),
            src_port: 1,
            dst_port: port,
            seq: 9,
            ip_id: 2,
            ttl: 64,
            flags: TcpFlags::SYN,
            window: 64,
        }
    }

    fn build(offers: &[(u32, u16)]) -> YearAnalysis {
        let mut collector = YearCollector::new(2020, CampaignConfig::scaled(1 << 10));
        for (i, &(src, port)) in offers.iter().enumerate() {
            collector.offer(&record(src, 1000 + i as u32, port, i as u64 * 1000));
        }
        collector.finish()
    }

    #[test]
    fn single_port_fraction_counts_correctly() {
        // Sources 1 and 2 scan one port; source 3 scans three ports.
        let analysis = build(&[(1, 80), (1, 80), (2, 22), (3, 80), (3, 8080), (3, 443)]);
        assert!((single_port_fraction(&analysis) - 2.0 / 3.0).abs() < 1e-9);
        assert!((at_least_n_ports_fraction(&analysis, 3) - 1.0 / 3.0).abs() < 1e-9);
        let cdf = ports_per_source_cdf(&analysis);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf.eval(1.0), 2.0 / 3.0);
    }

    #[test]
    fn co_scan_fraction_intersects_source_sets() {
        let analysis = build(&[(1, 80), (1, 8080), (2, 80), (3, 80), (3, 8080), (4, 8080)]);
        // Of 3 sources on port 80 (1,2,3), two also scan 8080.
        let f = co_scan_fraction(&analysis, 80, 8080).unwrap();
        assert!((f - 2.0 / 3.0).abs() < 1e-9);
        // No one scans 9999.
        assert_eq!(co_scan_fraction(&analysis, 80, 9999), Some(0.0));
        assert_eq!(co_scan_fraction(&analysis, 9999, 80), None);
    }

    #[test]
    fn privileged_coverage_with_concentrated_traffic() {
        // All packets on two privileged ports: coverage = 2/1023.
        let analysis = build(&[(1, 22), (2, 22), (3, 80), (4, 80)]);
        let coverage = privileged_port_coverage(&analysis, 0.01);
        assert!((coverage - 2.0 / 1023.0).abs() < 1e-9);
    }

    #[test]
    fn services_correlation_is_low_when_scanning_ignores_deployment() {
        // Scanning concentrated on ports with few deployed services (2323,
        // 8545): the correlation against the census must be weak.
        let mut offers = Vec::new();
        for i in 0..200u32 {
            offers.push((i, 2323u16));
        }
        for i in 0..150u32 {
            offers.push((1000 + i, 8545u16));
        }
        for i in 0..20u32 {
            offers.push((2000 + i, 443u16));
        }
        let analysis = build(&offers);
        let census = synscan_netmodel::PortCensus::synthesize(1, 100_000);
        let r = services_scans_correlation(&analysis, &census).unwrap();
        assert!(r.r.abs() < 0.3, "R = {} should be near zero", r.r);
    }

    #[test]
    fn services_correlation_detects_deployment_tracking() {
        // A hypothetical scanner population probing ports proportionally to
        // deployment would correlate strongly — the negative control.
        let census = synscan_netmodel::PortCensus::synthesize(2, 100_000);
        let mut offers = Vec::new();
        let mut src = 0u32;
        for (&port, &count) in &census.open_ports {
            for _ in 0..(count / 50).max(1) {
                offers.push((src, port));
                src += 1;
            }
        }
        let analysis = build(&offers);
        let r = services_scans_correlation(&analysis, &census).unwrap();
        assert!(r.r > 0.9, "R = {} should be near one", r.r);
    }

    #[test]
    fn daily_floor_counts_ports() {
        let analysis = build(&[(1, 80), (2, 80), (3, 80), (4, 22)]);
        // Window < 1 day -> treated as 1 day; port 80 has 3 packets, 22 has 1.
        assert_eq!(ports_above_daily_floor(&analysis, 2.0), 1);
        assert_eq!(ports_above_daily_floor(&analysis, 1.0), 2);
        assert_eq!(ports_above_daily_floor(&analysis, 10.0), 0);
    }
}
