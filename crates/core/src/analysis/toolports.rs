//! Figure 4: the top traffic ports and the mix of tools probing them.

use std::collections::BTreeMap;

use synscan_scanners::traits::ToolKind;

use super::collect::YearAnalysis;

/// The tool mix on one port: shares of the port's packets per tool, plus the
/// unattributed remainder under `"custom"`.
pub type ToolMix = BTreeMap<String, f64>;

/// One row of Figure 4: a port, its share of total traffic, and the mix of
/// tools the traffic originates from.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PortToolRow {
    /// The port.
    pub port: u16,
    /// Share of the year's packets on this port.
    pub traffic_share: f64,
    /// Per-tool share of this port's packets.
    pub mix: ToolMix,
}

/// Compute the Figure 4 matrix: the `top_n` ports by packets with the tool
/// mix of each.
pub fn tool_mix_by_port(analysis: &YearAnalysis, top_n: usize) -> Vec<PortToolRow> {
    let total = analysis.total_packets.max(1) as f64;
    let mut ports: Vec<(u16, u64)> = analysis
        .port_packets
        .iter()
        .map(|(p, c)| (*p, *c))
        .collect();
    ports.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ports.truncate(top_n);

    ports
        .into_iter()
        .map(|(port, count)| {
            let mut mix: ToolMix = BTreeMap::new();
            for tool in ToolKind::ALL {
                let packets = analysis
                    .tool_port_packets
                    .get(&(Some(tool), port))
                    .copied()
                    .unwrap_or(0);
                if tool == ToolKind::Custom {
                    continue;
                }
                mix.insert(
                    tool.name().to_string(),
                    packets as f64 / count.max(1) as f64,
                );
            }
            let unattributed = analysis
                .tool_port_packets
                .get(&(None, port))
                .copied()
                .unwrap_or(0)
                + analysis
                    .tool_port_packets
                    .get(&(Some(ToolKind::Custom), port))
                    .copied()
                    .unwrap_or(0);
            mix.insert(
                "custom".to_string(),
                unattributed as f64 / count.max(1) as f64,
            );
            PortToolRow {
                port,
                traffic_share: count as f64 / total,
                mix,
            }
        })
        .collect()
}

/// Share of *all* packets attributable to the tracked tools (the §6.1
/// "tracked tools generate X% of scanning traffic" series: 25% in 2015,
/// 92% in 2020, 95% in 2022, under 40% in 2024).
pub fn tracked_tool_traffic_share(analysis: &YearAnalysis) -> f64 {
    let total = analysis.total_packets.max(1) as f64;
    let tracked: u64 = analysis
        .tool_port_packets
        .iter()
        .filter(|((tool, _), _)| matches!(tool, Some(t) if *t != ToolKind::Custom))
        .map(|(_, c)| *c)
        .sum();
    tracked as f64 / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::collect::YearCollector;
    use crate::campaign::CampaignConfig;
    use synscan_scanners::traits::craft_record;
    use synscan_scanners::zmap::ZmapScanner;
    use synscan_wire::{Ipv4Address, ProbeRecord, TcpFlags};

    fn analysis() -> YearAnalysis {
        let mut collector = YearCollector::new(2020, CampaignConfig::scaled(1 << 10));
        let z = ZmapScanner::new(1);
        // 10 ZMap packets on 443.
        for i in 0..10u64 {
            collector.offer(&craft_record(
                &z,
                Ipv4Address(0x0505_0101),
                Ipv4Address(0x0600_0000 + i as u32),
                443,
                i,
                i * 1000,
                5,
            ));
        }
        // 30 plain packets on 80.
        for i in 0..30u64 {
            collector.offer(&ProbeRecord {
                ts_micros: i * 1000 + 7,
                src_ip: Ipv4Address(0x0707_0101),
                dst_ip: Ipv4Address(0x0800_0000 + i as u32),
                src_port: 2,
                dst_port: 80,
                seq: 5,
                ip_id: 9,
                ttl: 60,
                flags: TcpFlags::SYN,
                window: 3,
            });
        }
        collector.finish()
    }

    #[test]
    fn rows_are_ranked_by_traffic() {
        let rows = tool_mix_by_port(&analysis(), 10);
        assert_eq!(rows[0].port, 80);
        assert_eq!(rows[1].port, 443);
        assert!((rows[0].traffic_share - 0.75).abs() < 1e-9);
    }

    #[test]
    fn mixes_attribute_tools_per_port() {
        let rows = tool_mix_by_port(&analysis(), 10);
        let https = rows.iter().find(|r| r.port == 443).unwrap();
        assert!((https.mix["zmap"] - 1.0).abs() < 1e-9);
        assert_eq!(https.mix["custom"], 0.0);
        let http = rows.iter().find(|r| r.port == 80).unwrap();
        assert_eq!(http.mix["zmap"], 0.0);
        assert!((http.mix["custom"] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mixes_sum_to_one() {
        for row in tool_mix_by_port(&analysis(), 10) {
            let total: f64 = row.mix.values().sum();
            assert!((total - 1.0).abs() < 1e-9, "port {}: {total}", row.port);
        }
    }

    #[test]
    fn tracked_share_counts_only_fingerprinted_traffic() {
        // 10 of 40 packets are ZMap.
        assert!((tracked_tool_traffic_share(&analysis()) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn top_n_truncates() {
        assert_eq!(tool_mix_by_port(&analysis(), 1).len(), 1);
    }
}
