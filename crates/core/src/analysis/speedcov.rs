//! Figure 7 and §6.3–6.4: scan speed and IPv4 coverage, by scanner type and
//! by tool.
//!
//! Headlines reproduced: institutional scanners are ~92× faster than the
//! average; 84% of institutional scans exceed 1,000 pps while only 12% of
//! residential scans exceed ~1,000 pps (0.06 Mbps); NMap sources average
//! faster speeds than Masscan sources despite the tools' capabilities; the
//! top-100 speeds grow over the years (Pearson R ≈ 0.356); ZMap coverage
//! shows collaboration modes (e.g. /24 fleets splitting the IPv4 space).

use std::collections::BTreeMap;

use synscan_netmodel::{InternetRegistry, ScannerClass};
use synscan_stats::{pearson, Ecdf, PearsonResult};

use synscan_scanners::traits::ToolKind;

use crate::campaign::Campaign;

/// Speed & coverage ECDFs keyed by an arbitrary grouping.
#[derive(Debug, Clone)]
pub struct SpeedCoverage<K: Ord> {
    /// Estimated Internet-wide rate (pps) per campaign, grouped.
    pub speed_pps: BTreeMap<K, Ecdf>,
    /// Estimated IPv4 coverage fraction per campaign, grouped.
    pub coverage: BTreeMap<K, Ecdf>,
}

impl<K: Ord> SpeedCoverage<K> {
    /// Mean estimated speed of a group.
    pub fn mean_speed(&self, key: &K) -> Option<f64> {
        self.speed_pps.get(key).map(|e| e.mean())
    }

    /// Fraction of a group's campaigns exceeding `pps`.
    pub fn fraction_faster_than(&self, key: &K, pps: f64) -> Option<f64> {
        self.speed_pps.get(key).map(|e| e.tail(pps))
    }
}

/// Group campaigns by scanner class (Figure 7).
pub fn by_class(
    campaigns: &[Campaign],
    registry: &InternetRegistry,
    monitored: u64,
) -> SpeedCoverage<ScannerClass> {
    group(campaigns, monitored, |c| registry.class(c.src_ip))
}

/// Group campaigns by attributed tool (§6.3); unattributed → `Custom`.
pub fn by_tool(campaigns: &[Campaign], monitored: u64) -> SpeedCoverage<ToolKind> {
    group(campaigns, monitored, |c| {
        c.tool().unwrap_or(ToolKind::Custom)
    })
}

fn group<K: Ord + Copy>(
    campaigns: &[Campaign],
    monitored: u64,
    key: impl Fn(&Campaign) -> K,
) -> SpeedCoverage<K> {
    let model = synscan_stats::TelescopeModel::new(monitored);
    let mut speed: BTreeMap<K, Vec<f64>> = BTreeMap::new();
    let mut coverage: BTreeMap<K, Vec<f64>> = BTreeMap::new();
    for campaign in campaigns {
        let k = key(campaign);
        let est = campaign.estimates(&model);
        speed.entry(k).or_default().push(est.rate_pps);
        coverage.entry(k).or_default().push(est.ipv4_coverage);
    }
    SpeedCoverage {
        speed_pps: speed.into_iter().map(|(k, v)| (k, Ecdf::new(v))).collect(),
        coverage: coverage
            .into_iter()
            .map(|(k, v)| (k, Ecdf::new(v)))
            .collect(),
    }
}

/// §6.3: the speed of the top `n` fastest campaigns of each year, for the
/// "top speeds grow over the years" Pearson trend. Input: per-year campaign
/// lists with their telescope sizes; output: `(r, p)` over (year, speed)
/// pairs of the per-year top-`n` mean.
pub fn top_speed_trend(years: &[(u16, &[Campaign], u64)], n: usize) -> Option<PearsonResult> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (year, campaigns, monitored) in years {
        let model = synscan_stats::TelescopeModel::new(*monitored);
        let mut speeds: Vec<f64> = campaigns
            .iter()
            .map(|c| c.estimates(&model).rate_pps)
            .collect();
        speeds.sort_by(|a, b| b.partial_cmp(a).unwrap());
        speeds.truncate(n);
        if speeds.is_empty() {
            continue;
        }
        xs.push(*year as f64);
        ys.push(speeds.iter().sum::<f64>() / speeds.len() as f64);
    }
    pearson(&xs, &ys)
}

/// §5.3: the speed ↔ ports-targeted correlation (R ≈ 0.88 in the paper).
/// Computed over log-speed vs log-ports to match the figure's axes.
pub fn speed_ports_correlation(campaigns: &[Campaign], monitored: u64) -> Option<PearsonResult> {
    let model = synscan_stats::TelescopeModel::new(monitored);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for campaign in campaigns {
        xs.push((campaign.distinct_ports() as f64).ln());
        ys.push(campaign.estimates(&model).rate_pps.max(1e-9).ln());
    }
    pearson(&xs, &ys)
}

/// §6.4: histogram of campaign coverage values to expose collaboration
/// modes — a fleet of `n` hosts splitting the space shows a spike at `1/n`.
/// Returns `(coverage_bucket, count)` with buckets of `bucket_width`.
pub fn coverage_modes(
    campaigns: &[Campaign],
    monitored: u64,
    bucket_width: f64,
) -> BTreeMap<u32, u64> {
    let model = synscan_stats::TelescopeModel::new(monitored);
    let mut buckets: BTreeMap<u32, u64> = BTreeMap::new();
    for campaign in campaigns {
        let cov = campaign.estimates(&model).ipv4_coverage;
        let bucket = (cov / bucket_width) as u32;
        *buckets.entry(bucket).or_default() += 1;
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;
    use synscan_wire::Ipv4Address;

    fn campaign(
        src: u32,
        packets: u64,
        dests: u64,
        dur_secs: u64,
        tool: Option<ToolKind>,
    ) -> Campaign {
        let mut votes = Map::new();
        if let Some(t) = tool {
            votes.insert(t, packets);
        }
        Campaign {
            src_ip: Ipv4Address(src),
            first_ts_micros: 0,
            last_ts_micros: dur_secs * 1_000_000,
            packets,
            distinct_dests: dests,
            port_packets: Map::from([(80u16, packets)]),
            tool_votes: votes,
        }
    }

    #[test]
    fn faster_campaigns_rank_faster() {
        let monitored = 1u64 << 16;
        let campaigns = vec![
            campaign(1, 1000, 1000, 10, Some(ToolKind::Zmap)), // 100 tel-pps
            campaign(2, 1000, 1000, 1000, Some(ToolKind::Nmap)), // 1 tel-pps
        ];
        let sc = by_tool(&campaigns, monitored);
        let zmap = sc.mean_speed(&ToolKind::Zmap).unwrap();
        let nmap = sc.mean_speed(&ToolKind::Nmap).unwrap();
        assert!(zmap > 50.0 * nmap);
    }

    #[test]
    fn fraction_faster_than_threshold() {
        let monitored = 1u64 << 16;
        let campaigns = vec![
            campaign(1, 6000, 1000, 1, None),    // very fast
            campaign(2, 100, 100, 10_000, None), // very slow
        ];
        let sc = by_tool(&campaigns, monitored);
        let frac = sc
            .fraction_faster_than(&ToolKind::Custom, 100_000.0)
            .unwrap();
        assert!((frac - 0.5).abs() < 1e-9);
    }

    #[test]
    fn top_speed_trend_detects_growth() {
        let monitored = 1u64 << 16;
        // Speeds grow 2x each year.
        let y1 = vec![campaign(1, 1000, 1000, 100, None)];
        let y2 = vec![campaign(2, 2000, 1000, 100, None)];
        let y3 = vec![campaign(3, 4000, 1000, 100, None)];
        let years: Vec<(u16, &[Campaign], u64)> = vec![
            (2018, &y1, monitored),
            (2019, &y2, monitored),
            (2020, &y3, monitored),
        ];
        let trend = top_speed_trend(&years, 10).unwrap();
        assert!(trend.r > 0.9, "r = {}", trend.r);
    }

    #[test]
    fn speed_ports_correlation_positive_when_coupled() {
        let monitored = 1u64 << 16;
        // More ports -> faster, by construction.
        let campaigns: Vec<Campaign> = (1..=20u64)
            .map(|i| {
                let mut c = campaign(i as u32, i * 500, 500, 100, None);
                c.port_packets = (0..i).map(|p| (p as u16 + 1, 500u64)).collect();
                c
            })
            .collect();
        let r = speed_ports_correlation(&campaigns, monitored).unwrap();
        assert!(r.r > 0.95, "r = {}", r.r);
        assert!(r.significant_at(0.05));
    }

    #[test]
    fn coverage_modes_show_fleet_spikes() {
        let monitored = 1u64 << 16;
        // A fleet of 256 hosts each covering 1/256 of IPv4: distinct dests
        // per host ≈ 65,536/256 = 256.
        let campaigns: Vec<Campaign> = (0..50u32)
            .map(|i| campaign(i, 256, 256, 3600, Some(ToolKind::Zmap)))
            .collect();
        let modes = coverage_modes(&campaigns, monitored, 0.001);
        // All 50 campaigns fall in the same bucket (~0.0039 coverage).
        let (bucket, count) = modes.iter().max_by_key(|(_, c)| **c).unwrap();
        assert_eq!(*count, 50);
        assert!((*bucket as f64 * 0.001 - 1.0 / 256.0).abs() < 0.002);
    }
}
