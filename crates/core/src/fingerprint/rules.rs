//! Single-packet fingerprint invariants (§3.3).

use synscan_wire::ProbeRecord;

use synscan_scanners::masscan::MasscanScanner;
use synscan_scanners::traits::ToolKind;
use synscan_scanners::zmap::ZMAP_IP_ID;

/// Does the Masscan relation `ip_id = (dstIP ⊕ dstPort ⊕ seq) & 0xffff` hold?
pub fn is_masscan(record: &ProbeRecord) -> bool {
    record.ip_id == MasscanScanner::ip_id_for(record.dst_ip, record.dst_port, record.seq)
}

/// Does the ZMap constant identification hold?
pub fn is_zmap(record: &ProbeRecord) -> bool {
    record.ip_id == ZMAP_IP_ID
}

/// Does the Mirai `seq = dstIP` quirk hold?
pub fn is_mirai(record: &ProbeRecord) -> bool {
    record.seq == record.dst_ip.0
}

/// Evaluate all single-packet rules with the specificity precedence used in
/// the paper's methodology: Mirai's 32-bit equality is the most specific
/// (chance 2⁻³²), then Masscan's computed 16-bit relation, then ZMap's
/// constant (both chance 2⁻¹⁶, but a constant can be *spoofed* more easily
/// and collides with the Masscan relation whenever the computed value
/// happens to be 54321 — the computed relation carries more evidence).
pub fn single_packet_verdict(record: &ProbeRecord) -> Option<ToolKind> {
    if is_mirai(record) {
        return Some(ToolKind::Mirai);
    }
    if is_masscan(record) {
        return Some(ToolKind::Masscan);
    }
    if is_zmap(record) {
        return Some(ToolKind::Zmap);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use synscan_wire::{Ipv4Address, TcpFlags};

    fn base() -> ProbeRecord {
        ProbeRecord {
            ts_micros: 0,
            src_ip: Ipv4Address(1),
            dst_ip: Ipv4Address(0x0a14_1e28),
            src_port: 4000,
            dst_port: 443,
            seq: 0x1111_2222,
            ip_id: 0,
            ttl: 64,
            flags: TcpFlags::SYN,
            window: 1024,
        }
    }

    #[test]
    fn masscan_relation_detects_crafted_id() {
        let mut rec = base();
        rec.ip_id = ((rec.dst_ip.0 ^ u32::from(rec.dst_port) ^ rec.seq) & 0xffff) as u16;
        assert!(is_masscan(&rec));
        assert_eq!(single_packet_verdict(&rec), Some(ToolKind::Masscan));
        rec.ip_id ^= 1;
        assert!(!is_masscan(&rec));
    }

    #[test]
    fn zmap_constant_detected() {
        let mut rec = base();
        rec.ip_id = 54_321;
        assert!(is_zmap(&rec));
        assert_eq!(single_packet_verdict(&rec), Some(ToolKind::Zmap));
    }

    #[test]
    fn mirai_quirk_detected_and_wins_precedence() {
        let mut rec = base();
        rec.seq = rec.dst_ip.0;
        rec.ip_id = 54_321; // also looks like zmap
        assert!(is_mirai(&rec));
        assert_eq!(single_packet_verdict(&rec), Some(ToolKind::Mirai));
    }

    #[test]
    fn masscan_beats_zmap_on_collision() {
        // Craft a packet where the masscan relation evaluates to 54321.
        let mut rec = base();
        // Choose seq so that (dst ^ dport ^ seq) & 0xffff == 54321.
        let want = 54_321u32;
        rec.seq =
            (rec.dst_ip.0 ^ u32::from(rec.dst_port) ^ want) & 0xffff | (rec.seq & 0xffff_0000);
        rec.ip_id = 54_321;
        assert!(is_masscan(&rec) && is_zmap(&rec));
        assert_eq!(single_packet_verdict(&rec), Some(ToolKind::Masscan));
    }

    #[test]
    fn plain_packet_matches_nothing() {
        let rec = base();
        assert_eq!(single_packet_verdict(&rec), None);
    }
}
