//! Pairwise fingerprint relations (NMap, Unicornscan) with per-source state.
//!
//! Both relations compare two probes of one source:
//!
//! * **NMap**: `(seq₁⊕seq₂) & 0xFFFF == (seq₁⊕seq₂) >> 16` — the keystream
//!   reuse of the session secret makes the XOR of two sequence numbers a
//!   16-bit value repeated into both halves.
//! * **Unicornscan**: `seq₁⊕seq₂ == dstIP₁⊕dstIP₂ ⊕ srcPort₁⊕srcPort₂ ⊕
//!   ((dstPort₁⊕dstPort₂) << 16)`.
//!
//! A single chance match (probability 2⁻¹⁶ per candidate pair) would produce
//! too many false attributions over billions of packets, so a relation only
//! fires after **two independent pair matches** within the history window —
//! squaring the false-positive rate — unless the probes' XOR is non-trivial.

use synscan_wire::ProbeRecord;

use synscan_scanners::nmap::nmap_pair_relation;
use synscan_scanners::traits::ToolKind;
use synscan_scanners::unicorn::unicorn_pair_relation;

use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};

/// Number of recent probes kept per source.
const WINDOW: usize = 8;

/// Minimal stored view of a probe for pairwise testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StoredProbe {
    seq: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
}

impl From<&ProbeRecord> for StoredProbe {
    fn from(r: &ProbeRecord) -> Self {
        Self {
            seq: r.seq,
            dst_ip: r.dst_ip.0,
            src_port: r.src_port,
            dst_port: r.dst_port,
        }
    }
}

/// Sliding pairwise state for one source.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PairwiseState {
    window: Vec<StoredProbe>,
    last_seen_micros: u64,
    /// Sticky attribution: once a source has produced two confirming pairs,
    /// subsequent probes inherit the label without re-testing.
    confirmed: Option<ToolKind>,
}

impl PairwiseState {
    /// Timestamp of the last probe pushed.
    pub fn last_seen_micros(&self) -> u64 {
        self.last_seen_micros
    }

    /// Test a new probe against the stored window.
    pub fn test(&mut self, record: &ProbeRecord) -> Option<ToolKind> {
        if let Some(tool) = self.confirmed {
            return Some(tool);
        }
        let new: StoredProbe = record.into();
        let mut nmap_matches = 0usize;
        let mut unicorn_matches = 0usize;
        for old in &self.window {
            // Identical sequence numbers satisfy both relations trivially
            // (x = 0); retransmissions must not count as evidence.
            if old.seq == new.seq {
                continue;
            }
            if nmap_pair_relation(old.seq, new.seq) {
                nmap_matches += 1;
            }
            if unicorn_pair_relation(
                old.seq,
                synscan_wire::Ipv4Address(old.dst_ip),
                old.src_port,
                old.dst_port,
                new.seq,
                synscan_wire::Ipv4Address(new.dst_ip),
                new.src_port,
                new.dst_port,
            ) {
                unicorn_matches += 1;
            }
        }
        // Unicorn's relation implies specific structure across four fields;
        // one match against a window entry is already strong. NMap's is a
        // bare 16-bit coincidence; demand it holds against the entire
        // non-trivial window (it always does for genuine NMap traffic since
        // every pair of session packets satisfies it).
        let candidates = self.window.iter().filter(|o| o.seq != new.seq).count();
        if unicorn_matches >= 1 && unicorn_matches == candidates && candidates >= 1 {
            if candidates >= 2 {
                self.confirmed = Some(ToolKind::Unicorn);
            }
            return Some(ToolKind::Unicorn);
        }
        if nmap_matches >= 1 && nmap_matches == candidates && candidates >= 1 {
            if candidates >= 2 {
                self.confirmed = Some(ToolKind::Nmap);
            }
            return Some(ToolKind::Nmap);
        }
        None
    }

    /// Forget the window and any sticky attribution, as if the source were
    /// new. Used by the engine's deterministic per-source expiry; the last
    /// seen timestamp is kept so eviction bookkeeping stays monotonic.
    pub fn reset(&mut self) {
        self.window.clear();
        self.confirmed = None;
    }

    /// Record a probe into the window.
    pub fn push(&mut self, record: &ProbeRecord) {
        self.last_seen_micros = self.last_seen_micros.max(record.ts_micros);
        if self.window.len() == WINDOW {
            self.window.remove(0);
        }
        self.window.push(record.into());
    }

    /// Serialize the window, last-seen stamp, and sticky attribution for a
    /// pipeline checkpoint.
    pub fn snapshot_to(&self, w: &mut SnapWriter) {
        w.put_u8(self.window.len() as u8);
        for probe in &self.window {
            w.put_u32(probe.seq);
            w.put_u32(probe.dst_ip);
            w.put_u16(probe.src_port);
            w.put_u16(probe.dst_port);
        }
        w.put_u64(self.last_seen_micros);
        match self.confirmed {
            Some(tool) => {
                w.put_u8(1);
                w.put_tool(tool);
            }
            None => w.put_u8(0),
        }
    }

    /// Rebuild state written by [`PairwiseState::snapshot_to`].
    pub fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, CheckpointError> {
        let len = usize::from(r.take_u8()?);
        if len > WINDOW {
            return Err(CheckpointError::Corrupt(format!(
                "pairwise window of {len} probes"
            )));
        }
        let mut window = Vec::with_capacity(len);
        for _ in 0..len {
            window.push(StoredProbe {
                seq: r.take_u32()?,
                dst_ip: r.take_u32()?,
                src_port: r.take_u16()?,
                dst_port: r.take_u16()?,
            });
        }
        let last_seen_micros = r.take_u64()?;
        let confirmed = match r.take_u8()? {
            0 => None,
            1 => Some(r.take_tool()?),
            t => return Err(CheckpointError::Corrupt(format!("confirmed tag {t}"))),
        };
        Ok(Self {
            window,
            last_seen_micros,
            confirmed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synscan_scanners::nmap::NmapScanner;
    use synscan_scanners::traits::{craft_record, ProbeCrafter};
    use synscan_scanners::unicorn::UnicornScanner;
    use synscan_wire::Ipv4Address;

    fn probe<C: ProbeCrafter>(c: &C, i: u64) -> ProbeRecord {
        craft_record(
            c,
            Ipv4Address(9),
            Ipv4Address(0x1000_0000 + (i as u32) * 331),
            (i * 7 % 50_000) as u16 + 1,
            i,
            i * 100,
            5,
        )
    }

    #[test]
    fn nmap_confirms_and_sticks() {
        let n = NmapScanner::new(1);
        let mut state = PairwiseState::default();
        let p0 = probe(&n, 0);
        assert_eq!(state.test(&p0), None);
        state.push(&p0);
        let p1 = probe(&n, 1);
        assert_eq!(state.test(&p1), Some(ToolKind::Nmap));
        state.push(&p1);
        let p2 = probe(&n, 2);
        assert_eq!(state.test(&p2), Some(ToolKind::Nmap));
        state.push(&p2);
        assert_eq!(state.confirmed, Some(ToolKind::Nmap));
    }

    #[test]
    fn unicorn_detected() {
        let u = UnicornScanner::new(2);
        let mut state = PairwiseState::default();
        let p0 = probe(&u, 0);
        state.test(&p0);
        state.push(&p0);
        let p1 = probe(&u, 1);
        assert_eq!(state.test(&p1), Some(ToolKind::Unicorn));
    }

    #[test]
    fn retransmissions_are_not_evidence() {
        // Two identical probes (same seq) trivially XOR to zero; the state
        // must not attribute them.
        let u = UnicornScanner::new(3);
        let p = probe(&u, 0);
        let mut state = PairwiseState::default();
        state.push(&p);
        let mut retrans = p;
        retrans.ts_micros += 1000;
        assert_eq!(state.test(&retrans), None);
    }

    #[test]
    fn mixed_window_blocks_false_nmap() {
        // A window containing non-NMap traffic: an accidental single match
        // must not attribute, because the match count won't cover the
        // whole window.
        let mut state = PairwiseState::default();
        let mk = |seq: u32| ProbeRecord {
            ts_micros: 0,
            src_ip: Ipv4Address(1),
            dst_ip: Ipv4Address(500),
            src_port: 1,
            dst_port: 2,
            seq,
            ip_id: 0,
            ttl: 64,
            flags: synscan_wire::TcpFlags::SYN,
            window: 0,
        };
        // Two stored probes; the new one satisfies the relation with the
        // first (xor = 0x00050005) but not the second (xor = 0x12340000).
        state.push(&mk(0x1111_1111));
        state.push(&mk(0x2345_1111));
        let candidate = mk(0x1114_1114);
        assert_eq!(state.test(&candidate), None);
    }

    fn round_trip(state: &PairwiseState) -> PairwiseState {
        let mut w = SnapWriter::new();
        state.snapshot_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = PairwiseState::restore_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "snapshot fully consumed");
        back
    }

    #[test]
    fn snapshot_round_trips_empty_partial_and_confirmed_states() {
        // Empty (default) state.
        let empty = PairwiseState::default();
        assert_eq!(round_trip(&empty), empty);

        // Partially filled window, no attribution yet.
        let n = NmapScanner::new(7);
        let mut partial = PairwiseState::default();
        let p = probe(&n, 0);
        partial.push(&p);
        assert_eq!(round_trip(&partial), partial);

        // Saturated window with a sticky confirmation.
        let mut confirmed = PairwiseState::default();
        for i in 0..20u64 {
            let p = probe(&n, i);
            confirmed.test(&p);
            confirmed.push(&p);
        }
        assert_eq!(confirmed.confirmed, Some(ToolKind::Nmap));
        let back = round_trip(&confirmed);
        assert_eq!(back, confirmed);
        // The restored state classifies exactly like the original.
        let next = probe(&n, 21);
        assert_eq!(
            back.clone().test(&next),
            confirmed.clone().test(&next),
            "restored state behaves identically"
        );
    }

    #[test]
    fn oversized_window_snapshot_is_rejected() {
        let mut w = SnapWriter::new();
        w.put_u8(WINDOW as u8 + 1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            PairwiseState::restore_from(&mut r),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn window_is_bounded() {
        let n = NmapScanner::new(4);
        let mut state = PairwiseState::default();
        for i in 0..100u64 {
            let p = probe(&n, i);
            state.test(&p);
            state.push(&p);
        }
        assert!(state.window.len() <= WINDOW);
        assert_eq!(state.last_seen_micros(), 99 * 100);
    }
}
