//! Scanning-tool fingerprinting (§3.3).
//!
//! Two classes of evidence link a probe to the tool that crafted it:
//!
//! * **Single-packet invariants** ([`rules`]) verifiable on one frame in
//!   isolation — Masscan's identification relation, ZMap's constant
//!   identification, Mirai's destination-as-sequence quirk.
//! * **Pairwise relations** ([`pairwise`]) that hold between any two frames
//!   of one tool session — NMap's reused keystream and Unicornscan's XOR
//!   encoding. These need per-source state: the engine keeps a small window
//!   of recent probes per source and tests new arrivals against it.
//!
//! [`FingerprintEngine`] combines both into per-packet verdicts and
//! per-source/per-campaign attributions.

pub mod pairwise;
pub mod rules;

use std::collections::HashMap;

use synscan_wire::{Ipv4Address, ProbeRecord};

use synscan_scanners::traits::ToolKind;

use self::pairwise::PairwiseState;
use self::rules::single_packet_verdict;

use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use crate::intern::SourceId;

/// The verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketVerdict {
    /// A single-packet invariant matched.
    Single(ToolKind),
    /// A pairwise relation matched against an earlier probe of this source.
    Paired(ToolKind),
    /// No tracked tool matched.
    Unattributed,
}

impl PacketVerdict {
    /// The attributed tool, if any.
    pub fn tool(&self) -> Option<ToolKind> {
        match self {
            PacketVerdict::Single(t) | PacketVerdict::Paired(t) => Some(*t),
            PacketVerdict::Unattributed => None,
        }
    }
}

/// Streaming fingerprint engine with bounded per-source state.
#[derive(Debug)]
pub struct FingerprintEngine {
    pairwise: HashMap<Ipv4Address, PairwiseState>,
    /// Per-source gaps longer than this reset the source's pairwise state
    /// *inside* [`FingerprintEngine::classify`], deterministically.
    ///
    /// With the reset keyed to the record stream itself, the periodic
    /// [`FingerprintEngine::evict_idle`] housekeeping is purely a memory
    /// bound — *when* it runs can no longer change any verdict, which is
    /// what lets sharded workers housekeep on their own cadence and still
    /// reproduce the sequential run bit for bit.
    expiry_micros: u64,
}

impl Default for FingerprintEngine {
    fn default() -> Self {
        Self {
            pairwise: HashMap::new(),
            expiry_micros: u64::MAX,
        }
    }
}

impl FingerprintEngine {
    /// Fresh engine that never expires pairwise state on its own (callers
    /// manage memory via [`FingerprintEngine::evict_idle`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh engine whose per-source state resets after `expiry_micros` of
    /// source silence, independent of eviction cadence.
    pub fn with_expiry(expiry_micros: u64) -> Self {
        Self {
            pairwise: HashMap::new(),
            expiry_micros,
        }
    }

    /// Classify one probe, updating per-source pairwise state.
    ///
    /// Precedence: single-packet invariants are checked first (they are
    /// verifiable without history and far more specific); pairwise relations
    /// only fire for packets with no single-packet match, which prevents two
    /// Mirai probes (whose sequence numbers both equal their destinations)
    /// from accidentally satisfying the NMap half-equality and being
    /// double-attributed.
    pub fn classify(&mut self, record: &ProbeRecord) -> PacketVerdict {
        // One hash lookup per packet: this is the hottest map access in the
        // whole pipeline.
        let state = self.pairwise.entry(record.src_ip).or_default();
        if record.ts_micros.saturating_sub(state.last_seen_micros()) > self.expiry_micros {
            state.reset();
        }
        if let Some(tool) = single_packet_verdict(record) {
            // A single-packet match still refreshes pairwise history so a
            // later unmarked packet can pair against it if needed.
            state.push(record);
            return PacketVerdict::Single(tool);
        }
        let verdict = state.test(record);
        state.push(record);
        match verdict {
            Some(tool) => PacketVerdict::Paired(tool),
            None => PacketVerdict::Unattributed,
        }
    }

    /// Drop per-source state for sources idle since before `cutoff_micros`
    /// (bounded-memory operation over long streams).
    pub fn evict_idle(&mut self, cutoff_micros: u64) {
        self.pairwise
            .retain(|_, state| state.last_seen_micros() >= cutoff_micros);
    }

    /// Number of sources currently tracked.
    pub fn tracked_sources(&self) -> usize {
        self.pairwise.len()
    }
}

/// Fingerprint engine keyed by interned source id instead of address.
///
/// Functionally identical to [`FingerprintEngine`] — same rules, same
/// pairwise windows, same lazy expiry reset — but per-source state is a
/// dense `Vec<PairwiseState>` indexed by [`SourceId`], so `classify` does no
/// hashing at all: the caller interned the address already (one probe,
/// shared with the campaign detector) and everything here is an array
/// index. Memory is bounded by the interner: one fixed-size probe window
/// per distinct source, no eviction needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedFingerprint {
    states: Vec<PairwiseState>,
    /// Same lazy-reset contract as [`FingerprintEngine::with_expiry`]: gaps
    /// longer than this reset the source's window inside `classify`,
    /// deterministically, independent of any housekeeping cadence.
    expiry_micros: u64,
}

impl InternedFingerprint {
    /// Fresh engine whose per-source state resets after `expiry_micros` of
    /// source silence.
    pub fn with_expiry(expiry_micros: u64) -> Self {
        Self {
            states: Vec::new(),
            expiry_micros,
        }
    }

    /// Pre-size the state vector for roughly `sources` distinct sources.
    pub fn reserve(&mut self, sources: usize) {
        self.states.reserve(sources);
    }

    /// Classify one probe of the source interned as `sid`, updating its
    /// pairwise state. Same precedence as [`FingerprintEngine::classify`].
    #[inline]
    pub fn classify(&mut self, sid: SourceId, record: &ProbeRecord) -> PacketVerdict {
        let idx = sid as usize;
        if idx >= self.states.len() {
            self.states.resize_with(idx + 1, PairwiseState::default);
        }
        let state = &mut self.states[idx];
        if record.ts_micros.saturating_sub(state.last_seen_micros()) > self.expiry_micros {
            state.reset();
        }
        if let Some(tool) = single_packet_verdict(record) {
            // A single-packet match still refreshes pairwise history so a
            // later unmarked packet can pair against it if needed.
            state.push(record);
            return PacketVerdict::Single(tool);
        }
        let verdict = state.test(record);
        state.push(record);
        match verdict {
            Some(tool) => PacketVerdict::Paired(tool),
            None => PacketVerdict::Unattributed,
        }
    }

    /// Number of sources with allocated state.
    pub fn tracked_sources(&self) -> usize {
        self.states.len()
    }

    /// Serialize every per-source pairwise window (dense-id order) and the
    /// expiry for a pipeline checkpoint.
    pub fn snapshot_to(&self, w: &mut SnapWriter) {
        w.put_u64(self.expiry_micros);
        w.put_u64(self.states.len() as u64);
        for state in &self.states {
            state.snapshot_to(w);
        }
    }

    /// Rebuild an engine written by [`InternedFingerprint::snapshot_to`].
    pub fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, CheckpointError> {
        let expiry_micros = r.take_u64()?;
        let len = r.take_len(10)?;
        let mut states = Vec::with_capacity(len);
        for _ in 0..len {
            states.push(PairwiseState::restore_from(r)?);
        }
        Ok(Self {
            states,
            expiry_micros,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synscan_scanners::custom::CustomScanner;
    use synscan_scanners::masscan::MasscanScanner;
    use synscan_scanners::mirai::MiraiScanner;
    use synscan_scanners::nmap::NmapScanner;
    use synscan_scanners::traits::{craft_record, ProbeCrafter};
    use synscan_scanners::unicorn::UnicornScanner;
    use synscan_scanners::zmap::ZmapScanner;

    fn records_for<C: ProbeCrafter>(crafter: &C, src: u32, n: u64) -> Vec<ProbeRecord> {
        (0..n)
            .map(|i| {
                let dst = Ipv4Address(0x0b00_0000 + (i as u32) * 977);
                let port = (i * 37 % 60_000) as u16 + 1;
                craft_record(crafter, Ipv4Address(src), dst, port, i, i * 1000, 10)
            })
            .collect()
    }

    #[test]
    fn zmap_is_attributed_on_the_first_packet() {
        let mut engine = FingerprintEngine::new();
        for rec in records_for(&ZmapScanner::new(1), 100, 10) {
            assert_eq!(engine.classify(&rec), PacketVerdict::Single(ToolKind::Zmap));
        }
    }

    #[test]
    fn masscan_is_attributed_on_the_first_packet() {
        let mut engine = FingerprintEngine::new();
        for rec in records_for(&MasscanScanner::new(2), 101, 10) {
            assert_eq!(
                engine.classify(&rec),
                PacketVerdict::Single(ToolKind::Masscan)
            );
        }
    }

    #[test]
    fn mirai_is_attributed_on_the_first_packet() {
        let mut engine = FingerprintEngine::new();
        let m = MiraiScanner::new(3);
        for i in 0..10u64 {
            let dst = m.pick_target(i);
            let rec = craft_record(&m, Ipv4Address(102), dst, m.pick_port(i), i, i, 5);
            assert_eq!(
                engine.classify(&rec),
                PacketVerdict::Single(ToolKind::Mirai)
            );
        }
    }

    #[test]
    fn nmap_needs_two_packets() {
        let mut engine = FingerprintEngine::new();
        let recs = records_for(&NmapScanner::new(4), 103, 10);
        assert_eq!(engine.classify(&recs[0]), PacketVerdict::Unattributed);
        for rec in &recs[1..] {
            assert_eq!(engine.classify(rec), PacketVerdict::Paired(ToolKind::Nmap));
        }
    }

    #[test]
    fn unicorn_needs_two_packets() {
        let mut engine = FingerprintEngine::new();
        let recs = records_for(&UnicornScanner::new(5), 104, 10);
        assert_eq!(engine.classify(&recs[0]), PacketVerdict::Unattributed);
        for rec in &recs[1..] {
            assert_eq!(
                engine.classify(rec),
                PacketVerdict::Paired(ToolKind::Unicorn)
            );
        }
    }

    #[test]
    fn custom_tools_stay_unattributed() {
        let mut engine = FingerprintEngine::new();
        let mut attributed = 0;
        for rec in records_for(&CustomScanner::new(6), 105, 500) {
            if engine.classify(&rec).tool().is_some() {
                attributed += 1;
            }
        }
        // Pairwise chance matches are ~2^-16 per candidate pair.
        assert!(attributed <= 2, "{attributed} false attributions");
    }

    #[test]
    fn sources_do_not_cross_contaminate() {
        let mut engine = FingerprintEngine::new();
        // Interleave an NMap source and a custom source: the NMap pairing
        // must only consider same-source history.
        let nmap = records_for(&NmapScanner::new(7), 200, 5);
        let custom = records_for(&CustomScanner::new(8), 201, 5);
        for i in 0..5 {
            let vn = engine.classify(&nmap[i]);
            let vc = engine.classify(&custom[i]);
            if i > 0 {
                assert_eq!(vn, PacketVerdict::Paired(ToolKind::Nmap));
            }
            assert_eq!(vc.tool(), None);
        }
    }

    #[test]
    fn expiry_resets_pairwise_state_deterministically() {
        let expiry = 1_000_000u64; // 1 s
        let n = NmapScanner::new(11);
        let mk = |i: u64, ts: u64| {
            craft_record(
                &n,
                Ipv4Address(300),
                Ipv4Address(0x0d00_0000 + (i as u32) * 701),
                (i * 13 % 50_000) as u16 + 1,
                i,
                ts,
                6,
            )
        };
        let mut engine = FingerprintEngine::with_expiry(expiry);
        assert_eq!(engine.classify(&mk(0, 0)), PacketVerdict::Unattributed);
        assert_eq!(
            engine.classify(&mk(1, 100)),
            PacketVerdict::Paired(ToolKind::Nmap)
        );
        // A gap past the expiry clears the window: the next probe has no
        // history to pair against, exactly as if the source were new.
        assert_eq!(
            engine.classify(&mk(2, 100 + expiry + 1)),
            PacketVerdict::Unattributed
        );
        // An engine without expiry still pairs across the gap.
        let mut forever = FingerprintEngine::new();
        forever.classify(&mk(0, 0));
        forever.classify(&mk(1, 100));
        assert_eq!(
            forever.classify(&mk(2, 100 + expiry + 1)),
            PacketVerdict::Paired(ToolKind::Nmap)
        );
    }

    #[test]
    fn interned_engine_matches_address_keyed_engine() {
        use crate::intern::SourceTable;
        // Mixed single-packet, pairwise, and unattributable sources, replayed
        // a second time past the expiry gap: the dense-id engine must agree
        // with the map-keyed reference verdict for verdict.
        let expiry = 2_000_000u64;
        let nmap = records_for(&NmapScanner::new(21), 400, 8);
        let zmap = records_for(&ZmapScanner::new(22), 401, 8);
        let custom = records_for(&CustomScanner::new(23), 402, 8);
        let mut stream: Vec<ProbeRecord> = Vec::new();
        for i in 0..8 {
            stream.extend([nmap[i], zmap[i], custom[i]]);
        }
        let shift = expiry * 2;
        let late: Vec<ProbeRecord> = stream
            .iter()
            .map(|r| {
                let mut r = *r;
                r.ts_micros += shift;
                r
            })
            .collect();
        stream.extend(late);

        let mut reference = FingerprintEngine::with_expiry(expiry);
        let mut fast = InternedFingerprint::with_expiry(expiry);
        let mut table = SourceTable::new();
        for rec in &stream {
            let sid = table.intern(rec.src_ip.0);
            assert_eq!(fast.classify(sid, rec), reference.classify(rec), "{rec:?}");
        }
        assert_eq!(fast.tracked_sources(), 3);
    }

    #[test]
    fn interned_snapshot_round_trips_and_preserves_verdicts() {
        use crate::intern::SourceTable;
        let expiry = 2_000_000u64;

        // Empty engine round-trips.
        let empty = InternedFingerprint::with_expiry(expiry);
        let mut w = SnapWriter::new();
        empty.snapshot_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = InternedFingerprint::restore_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back, empty);

        // Populated engine: pairwise windows, sticky confirmations, and a
        // default (never-seen) slot in the middle of the dense range.
        let nmap = records_for(&NmapScanner::new(31), 500, 6);
        let custom = records_for(&CustomScanner::new(32), 501, 6);
        let zmap = records_for(&ZmapScanner::new(33), 502, 6);
        let mut engine = InternedFingerprint::with_expiry(expiry);
        let mut table = SourceTable::new();
        for rec in nmap.iter().chain(&custom).chain(&zmap) {
            let sid = table.intern(rec.src_ip.0);
            engine.classify(sid, rec);
        }
        let mut w = SnapWriter::new();
        engine.snapshot_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut restored = InternedFingerprint::restore_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "snapshot fully consumed");
        assert_eq!(restored, engine);

        // The restored engine classifies the continuation of each stream
        // exactly like the original would.
        let mut engine = engine;
        for rec in records_for(&NmapScanner::new(31), 500, 8).iter().skip(6) {
            let sid = table.intern(rec.src_ip.0);
            assert_eq!(restored.classify(sid, rec), engine.classify(sid, rec));
        }
    }

    #[test]
    fn eviction_bounds_memory() {
        let mut engine = FingerprintEngine::new();
        for src in 0..100u32 {
            let rec = craft_record(
                &CustomScanner::new(9),
                Ipv4Address(src),
                Ipv4Address(0x0c00_0001),
                80,
                0,
                u64::from(src), // distinct, increasing timestamps
                4,
            );
            engine.classify(&rec);
        }
        assert_eq!(engine.tracked_sources(), 100);
        engine.evict_idle(50);
        assert_eq!(engine.tracked_sources(), 50);
    }
}
