//! The compact probe representation used by the measurement pipeline, and a
//! builder that serializes probes back into full Ethernet/IPv4/TCP frames.
//!
//! A decade of telescope traffic is tens of billions of packets; the analysis
//! keeps only the fields the paper's methodology needs, packed into 32 bytes.

use crate::ethernet::{self, EtherType, EthernetFrame, MacAddress};
use crate::ipv4::{self, Address, Ipv4Packet, Ipv4Repr, Protocol};
use crate::tcp::{self, TcpFlags, TcpPacket, TcpRepr};
use crate::{Result, WireError};

/// One observed TCP frame, reduced to the fields §3 of the paper uses:
/// timing, endpoints, and the header fields carrying tool fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(not(synscan_standalone), derive(serde::Serialize, serde::Deserialize))]
pub struct ProbeRecord {
    /// Capture timestamp in microseconds since the epoch.
    pub ts_micros: u64,
    /// Source address — the actual scanner (never spoofed; a reply is wanted).
    pub src_ip: Address,
    /// Destination address — an address inside the telescope.
    pub dst_ip: Address,
    /// TCP source port.
    pub src_port: u16,
    /// TCP destination port — the scanned service.
    pub dst_port: u16,
    /// TCP sequence number (state-encoding field of stateless scanners).
    pub seq: u32,
    /// IPv4 identification field (ZMap: 54321; Masscan: dip^dport^seq).
    pub ip_id: u16,
    /// IPv4 TTL as received.
    pub ttl: u8,
    /// TCP flags byte.
    pub flags: TcpFlags,
    /// TCP receive window.
    pub window: u16,
}

impl ProbeRecord {
    /// Seconds since the epoch, as `f64` (for rate computations).
    pub fn ts_secs(&self) -> f64 {
        self.ts_micros as f64 / 1e6
    }

    /// True if this probe is a pure SYN (the scan filter of §3.2).
    pub fn is_syn_scan(&self) -> bool {
        self.flags.is_pure_syn()
    }

    /// Parse an Ethernet frame into a record, requiring IPv4 + TCP.
    pub fn from_ethernet(ts_micros: u64, frame: &[u8]) -> Result<Self> {
        let eth = EthernetFrame::new_checked(frame)?;
        if eth.ethertype() != EtherType::Ipv4 {
            return Err(WireError::Unsupported);
        }
        Self::from_ipv4(ts_micros, eth.payload())
    }

    /// Parse a raw IPv4 packet into a record, requiring TCP.
    pub fn from_ipv4(ts_micros: u64, packet: &[u8]) -> Result<Self> {
        let ip = Ipv4Packet::new_checked(packet)?;
        if ip.protocol() != Protocol::Tcp {
            return Err(WireError::Unsupported);
        }
        let tcp = TcpPacket::new_checked(ip.payload())?;
        Ok(Self {
            ts_micros,
            src_ip: ip.src_addr(),
            dst_ip: ip.dst_addr(),
            src_port: tcp.src_port(),
            dst_port: tcp.dst_port(),
            seq: tcp.seq_number(),
            ip_id: ip.ident(),
            ttl: ip.ttl(),
            flags: tcp.flags(),
            window: tcp.window_len(),
        })
    }

    /// Total frame length when serialized (Ethernet + IPv4 + bare TCP).
    pub const fn frame_len() -> usize {
        ethernet::HEADER_LEN + ipv4::HEADER_LEN + tcp::HEADER_LEN
    }
}

/// Serializes [`ProbeRecord`]s back into complete, checksummed frames.
///
/// Used by the synthetic workload generator to produce pcap files that are
/// bit-for-bit plausible telescope captures, and by round-trip tests.
#[derive(Debug, Clone)]
pub struct SynFrameBuilder {
    src_mac: MacAddress,
    dst_mac: MacAddress,
}

impl Default for SynFrameBuilder {
    fn default() -> Self {
        Self {
            // Locally-administered MACs standing in for the upstream router
            // and the telescope capture port.
            src_mac: MacAddress([0x02, 0x00, 0x5e, 0x00, 0x00, 0x01]),
            dst_mac: MacAddress([0x02, 0x00, 0x5e, 0x00, 0x00, 0x02]),
        }
    }
}

impl SynFrameBuilder {
    /// Create a builder with explicit MAC endpoints.
    pub fn new(src_mac: MacAddress, dst_mac: MacAddress) -> Self {
        Self { src_mac, dst_mac }
    }

    /// Serialize one record into a fresh frame buffer.
    pub fn build(&self, record: &ProbeRecord) -> Vec<u8> {
        let mut buf = vec![0u8; ProbeRecord::frame_len()];
        self.build_into(record, &mut buf);
        buf
    }

    /// Serialize into a caller-provided buffer of exactly
    /// [`ProbeRecord::frame_len()`] bytes.
    pub fn build_into(&self, record: &ProbeRecord, buf: &mut [u8]) {
        assert_eq!(buf.len(), ProbeRecord::frame_len());
        let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
        eth.set_src_mac(self.src_mac);
        eth.set_dst_mac(self.dst_mac);
        eth.set_ethertype(EtherType::Ipv4);

        let ip_repr = Ipv4Repr {
            src_addr: record.src_ip,
            dst_addr: record.dst_ip,
            protocol: Protocol::Tcp,
            ident: record.ip_id,
            ttl: record.ttl,
            payload_len: tcp::HEADER_LEN,
        };
        let ip_buf = &mut buf[ethernet::HEADER_LEN..];
        ip_repr.emit(&mut Ipv4Packet::new_unchecked(&mut ip_buf[..]));

        let tcp_repr = TcpRepr {
            src_port: record.src_port,
            dst_port: record.dst_port,
            seq_number: record.seq,
            ack_number: 0,
            flags: record.flags,
            window_len: record.window,
            urgent: 0,
        };
        let tcp_buf = &mut buf[ethernet::HEADER_LEN + ipv4::HEADER_LEN..];
        tcp_repr.emit(
            &mut TcpPacket::new_unchecked(&mut tcp_buf[..]),
            record.src_ip,
            record.dst_ip,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> ProbeRecord {
        ProbeRecord {
            ts_micros: 1_700_000_000_000_000,
            src_ip: Address::new(203, 0, 113, 10),
            dst_ip: Address::new(192, 0, 2, 77),
            src_port: 54321,
            dst_port: 3389,
            seq: 0xfeed_f00d,
            ip_id: 54321,
            ttl: 51,
            flags: TcpFlags::SYN,
            window: 1024,
        }
    }

    #[test]
    fn frame_round_trip_preserves_every_field() {
        let record = sample_record();
        let frame = SynFrameBuilder::default().build(&record);
        let parsed = ProbeRecord::from_ethernet(record.ts_micros, &frame).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn built_frames_have_valid_checksums() {
        let record = sample_record();
        let frame = SynFrameBuilder::default().build(&record);
        let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let tcp = TcpPacket::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum(ip.src_addr(), ip.dst_addr()));
    }

    #[test]
    fn non_ipv4_frames_are_rejected() {
        let record = sample_record();
        let mut frame = SynFrameBuilder::default().build(&record);
        frame[12] = 0x86;
        frame[13] = 0xdd; // IPv6 ethertype
        assert_eq!(
            ProbeRecord::from_ethernet(0, &frame).unwrap_err(),
            WireError::Unsupported
        );
    }

    #[test]
    fn non_tcp_packets_are_rejected() {
        let record = sample_record();
        let mut frame = SynFrameBuilder::default().build(&record);
        // Overwrite the IPv4 protocol field (offset 14 + 9) with UDP and
        // refresh the header checksum so only the protocol check can fail.
        frame[14 + 9] = 17;
        let ip_start = ethernet::HEADER_LEN;
        frame[ip_start + 10] = 0;
        frame[ip_start + 11] = 0;
        let ck = crate::checksum::checksum(&frame[ip_start..ip_start + ipv4::HEADER_LEN]);
        frame[ip_start + 10] = (ck >> 8) as u8;
        frame[ip_start + 11] = (ck & 0xff) as u8;
        assert_eq!(
            ProbeRecord::from_ethernet(0, &frame).unwrap_err(),
            WireError::Unsupported
        );
    }

    #[test]
    fn syn_scan_filter() {
        let mut record = sample_record();
        assert!(record.is_syn_scan());
        record.flags = TcpFlags::SYN_ACK;
        assert!(!record.is_syn_scan());
        record.flags = TcpFlags::RST;
        assert!(!record.is_syn_scan());
    }

    #[test]
    fn timestamp_conversion() {
        let record = sample_record();
        assert!((record.ts_secs() - 1_700_000_000.0).abs() < 1e-9);
    }
}

#[cfg(all(test, not(synscan_standalone)))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_record() -> impl Strategy<Value = ProbeRecord> {
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            any::<u16>(),
            any::<u32>(),
            any::<u16>(),
            any::<u8>(),
            0u8..=0x3f,
            any::<u16>(),
        )
            .prop_map(
                |(ts, src, dst, sport, dport, seq, ip_id, ttl, flags, window)| ProbeRecord {
                    ts_micros: ts,
                    src_ip: Address(src),
                    dst_ip: Address(dst),
                    src_port: sport,
                    dst_port: dport,
                    seq,
                    ip_id,
                    ttl,
                    flags: TcpFlags(flags),
                    window,
                },
            )
    }

    proptest! {
        /// Any record survives serialization to a full frame and back,
        /// and the emitted frame always carries valid checksums.
        #[test]
        fn frame_round_trip(record in arb_record()) {
            let frame = SynFrameBuilder::default().build(&record);
            let parsed = ProbeRecord::from_ethernet(record.ts_micros, &frame).unwrap();
            prop_assert_eq!(parsed, record);

            let eth = crate::ethernet::EthernetFrame::new_checked(&frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            prop_assert!(ip.verify_checksum());
            let tcp = TcpPacket::new_checked(ip.payload()).unwrap();
            prop_assert!(tcp.verify_checksum(ip.src_addr(), ip.dst_addr()));
        }

        /// Flipping any single byte of the IPv4 header breaks its checksum
        /// (the checksum field itself aside).
        #[test]
        fn ipv4_checksum_detects_any_corruption(
            record in arb_record(),
            byte in 0usize..20,
            bit in 0u8..8,
        ) {
            prop_assume!(byte != 10 && byte != 11); // the checksum field
            let mut frame = SynFrameBuilder::default().build(&record);
            frame[ethernet::HEADER_LEN + byte] ^= 1 << bit;
            let ip = Ipv4Packet::new_checked(&frame[ethernet::HEADER_LEN..]);
            // Err means corruption invalidated a length/version field —
            // equally detected.
            if let Ok(ip) = ip {
                prop_assert!(!ip.verify_checksum());
            }
        }
    }
}
