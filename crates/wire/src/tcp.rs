//! TCP header view and representation (RFC 793).
//!
//! Scan probes are bare SYN segments; the fields that matter to the study are
//! the ports, the sequence number (which high-speed scanners abuse to encode
//! state), the flags (to separate SYN scans from backscatter), and the window.

use crate::checksum::{self, Checksum};
use crate::ipv4::Address;
use crate::{Result, WireError};

/// Length in bytes of a TCP header without options.
pub const HEADER_LEN: usize = 20;

/// TCP control flags, stored as the low 6 bits of the flags byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(not(synscan_standalone), derive(serde::Serialize, serde::Deserialize))]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN — used by "stealthy" FIN scans.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN — the probe type making up >98% of TCP scans.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST — typical backscatter from scanned-but-closed ports.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK — ACK scans, and half of SYN/ACK backscatter.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG.
    pub const URG: TcpFlags = TcpFlags(0x20);
    /// SYN|ACK — the server half of a handshake; in a telescope this is
    /// backscatter from attacks that spoofed a telescope address.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    /// All six flags lit — the XMAS scan has FIN|PSH|URG; all-bits is NULL's dual.
    pub const XMAS: TcpFlags = TcpFlags(0x29);
    /// No flags at all — the NULL scan.
    pub const NULL: TcpFlags = TcpFlags(0x00);

    /// True if this is a *pure* SYN (SYN set, ACK clear) — the paper's
    /// standard scan-vs-backscatter filter.
    pub const fn is_pure_syn(self) -> bool {
        self.0 & (Self::SYN.0 | Self::ACK.0) == Self::SYN.0
    }

    /// True if the given flag bits are all set.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl core::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl core::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let names = [
            (Self::FIN, "FIN"),
            (Self::SYN, "SYN"),
            (Self::RST, "RST"),
            (Self::PSH, "PSH"),
            (Self::ACK, "ACK"),
            (Self::URG, "URG"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "NULL")?;
        }
        Ok(())
    }
}

mod field {
    pub const SRC_PORT: core::ops::Range<usize> = 0..2;
    pub const DST_PORT: core::ops::Range<usize> = 2..4;
    pub const SEQ_NUM: core::ops::Range<usize> = 4..8;
    pub const ACK_NUM: core::ops::Range<usize> = 8..12;
    pub const DATA_OFF: usize = 12;
    pub const FLAGS: usize = 13;
    pub const WINDOW: core::ops::Range<usize> = 14..16;
    pub const CHECKSUM: core::ops::Range<usize> = 16..18;
    pub const URGENT: core::ops::Range<usize> = 18..20;
}

/// Zero-copy view of a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpPacket<T> {
    /// Wrap a buffer without validating it.
    pub const fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap a buffer, validating the header length invariants.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        packet.check()?;
        Ok(packet)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let header_len = self.header_len() as usize;
        if header_len < HEADER_LEN || header_len > data.len() {
            return Err(WireError::Malformed);
        }
        Ok(())
    }

    /// Consume the view and return the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::SRC_PORT].try_into().unwrap())
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::DST_PORT].try_into().unwrap())
    }

    /// Sequence number — the main state-encoding field of stateless scanners.
    pub fn seq_number(&self) -> u32 {
        u32::from_be_bytes(self.buffer.as_ref()[field::SEQ_NUM].try_into().unwrap())
    }

    /// Acknowledgement number.
    pub fn ack_number(&self) -> u32 {
        u32::from_be_bytes(self.buffer.as_ref()[field::ACK_NUM].try_into().unwrap())
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[field::DATA_OFF] >> 4) * 4
    }

    /// Control flags.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buffer.as_ref()[field::FLAGS] & 0x3f)
    }

    /// Receive window.
    pub fn window_len(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::WINDOW].try_into().unwrap())
    }

    /// Raw checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::CHECKSUM].try_into().unwrap())
    }

    /// Urgent pointer.
    pub fn urgent(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::URGENT].try_into().unwrap())
    }

    /// The option bytes between the fixed header and the data offset —
    /// feed to [`crate::tcp_options::parse_options`].
    pub fn options(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.header_len() as usize]
    }

    /// Verify the checksum over the pseudo-header and segment.
    pub fn verify_checksum(&self, src: Address, dst: Address) -> bool {
        let data = self.buffer.as_ref();
        let mut acc = checksum::pseudo_header_sum(src.0, dst.0, 6, data.len() as u16);
        acc.add_bytes(data);
        acc.value() == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpPacket<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, value: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, value: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the sequence number.
    pub fn set_seq_number(&mut self, value: u32) {
        self.buffer.as_mut()[field::SEQ_NUM].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the acknowledgement number.
    pub fn set_ack_number(&mut self, value: u32) {
        self.buffer.as_mut()[field::ACK_NUM].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the data offset for a bare 20-byte header.
    pub fn set_header_len_bare(&mut self) {
        self.buffer.as_mut()[field::DATA_OFF] = (HEADER_LEN as u8 / 4) << 4;
    }

    /// Set the control flags.
    pub fn set_flags(&mut self, value: TcpFlags) {
        self.buffer.as_mut()[field::FLAGS] = value.0;
    }

    /// Set the receive window.
    pub fn set_window_len(&mut self, value: u16) {
        self.buffer.as_mut()[field::WINDOW].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the urgent pointer.
    pub fn set_urgent(&mut self, value: u16) {
        self.buffer.as_mut()[field::URGENT].copy_from_slice(&value.to_be_bytes());
    }

    /// Compute and write the checksum over pseudo-header + segment.
    pub fn fill_checksum(&mut self, src: Address, dst: Address) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let data = self.buffer.as_ref();
        let mut acc: Checksum = checksum::pseudo_header_sum(src.0, dst.0, 6, data.len() as u16);
        acc.add_bytes(data);
        let ck = acc.value();
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }
}

/// Parsed representation of the TCP header fields the pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port, often ephemeral or fixed per tool run.
    pub src_port: u16,
    /// Destination (scanned) port.
    pub dst_port: u16,
    /// Sequence number (state-encoding field for stateless scanners).
    pub seq_number: u32,
    /// Acknowledgement number (zero in well-formed SYN probes).
    pub ack_number: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window_len: u16,
    /// Urgent pointer.
    pub urgent: u16,
}

impl TcpRepr {
    /// Parse from a checked segment view.
    pub fn parse<T: AsRef<[u8]>>(packet: &TcpPacket<T>) -> Result<Self> {
        Ok(Self {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            seq_number: packet.seq_number(),
            ack_number: packet.ack_number(),
            flags: packet.flags(),
            window_len: packet.window_len(),
            urgent: packet.urgent(),
        })
    }

    /// Emitted length: a bare header, as scanners do not send options-laden SYNs
    /// in the stateless fast path.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit into the segment view and fill the checksum using the IPv4
    /// pseudo-header for `src`/`dst`.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(
        &self,
        packet: &mut TcpPacket<T>,
        src: Address,
        dst: Address,
    ) {
        packet.set_src_port(self.src_port);
        packet.set_dst_port(self.dst_port);
        packet.set_seq_number(self.seq_number);
        packet.set_ack_number(self.ack_number);
        packet.set_header_len_bare();
        packet.set_flags(self.flags);
        packet.set_window_len(self.window_len);
        packet.set_urgent(self.urgent);
        packet.fill_checksum(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Address = Address::new(198, 51, 100, 1);
    const DST: Address = Address::new(192, 0, 2, 2);

    fn sample_repr() -> TcpRepr {
        TcpRepr {
            src_port: 40000,
            dst_port: 22,
            seq_number: 0xdead_beef,
            ack_number: 0,
            flags: TcpFlags::SYN,
            window_len: 29200,
            urgent: 0,
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut TcpPacket::new_unchecked(&mut buf[..]), SRC, DST);
        let packet = TcpPacket::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
        assert_eq!(TcpRepr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn checksum_binds_pseudo_header() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut TcpPacket::new_unchecked(&mut buf[..]), SRC, DST);
        let packet = TcpPacket::new_checked(&buf[..]).unwrap();
        // Same bytes, different claimed destination: checksum must fail.
        // (Swapping src/dst would NOT fail — one's-complement addition is
        // commutative — so we perturb an address instead.)
        assert!(!packet.verify_checksum(SRC, Address::new(192, 0, 2, 3)));
    }

    #[test]
    fn checked_rejects_short_buffer() {
        assert_eq!(
            TcpPacket::new_checked(&[0u8; 19][..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn checked_rejects_bad_data_offset() {
        let mut buf = [0u8; HEADER_LEN];
        buf[field::DATA_OFF] = 0x30; // offset 3 words = 12 bytes < 20
        assert_eq!(
            TcpPacket::new_checked(&buf[..]).unwrap_err(),
            WireError::Malformed
        );
        buf[field::DATA_OFF] = 0xf0; // 60 bytes > buffer
        assert_eq!(
            TcpPacket::new_checked(&buf[..]).unwrap_err(),
            WireError::Malformed
        );
    }

    #[test]
    fn options_region_is_exposed() {
        // Hand-build a 24-byte header (data offset 6) with an MSS option.
        let mut buf = [0u8; 24];
        buf[12] = 6 << 4; // data offset = 6 words
        buf[20] = 2; // MSS
        buf[21] = 4;
        buf[22..24].copy_from_slice(&1460u16.to_be_bytes());
        let packet = TcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.options().len(), 4);
        let parsed = crate::tcp_options::parse_options(packet.options()).unwrap();
        assert_eq!(parsed, vec![crate::tcp_options::TcpOption::Mss(1460)]);
        // A bare header has no options.
        let bare = [
            0x00u8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x50, 0, 0, 0, 0, 0, 0, 0,
        ];
        let packet = TcpPacket::new_checked(&bare[..]).unwrap();
        assert!(packet.options().is_empty());
    }

    #[test]
    fn pure_syn_detection() {
        assert!(TcpFlags::SYN.is_pure_syn());
        assert!((TcpFlags::SYN | TcpFlags::PSH).is_pure_syn());
        assert!(!TcpFlags::SYN_ACK.is_pure_syn());
        assert!(!TcpFlags::RST.is_pure_syn());
        assert!(!TcpFlags::NULL.is_pure_syn());
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::SYN.to_string(), "SYN");
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::NULL.to_string(), "NULL");
        assert_eq!(TcpFlags::XMAS.to_string(), "FIN|PSH|URG");
    }
}
