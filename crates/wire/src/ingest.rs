//! Zero-copy batched pcap ingest: the line-rate front end of the pipeline.
//!
//! The `Read`-based [`crate::pcap::PcapReader`] allocates and copies a
//! `Vec<u8>` per record — fine for correctness work, but at telescope scale
//! (the paper's decade of captures) the copy-and-allocate loop, not the
//! analysis, is the throughput ceiling. This module replaces it on the hot
//! path with a *mapping*:
//!
//! * [`MappedCapture`] owns one contiguous byte buffer holding the whole
//!   capture (loaded with a single `fs::read`; stdin and pipes are buffered
//!   through [`MappedCapture::from_reader`]). The crate is
//!   `#![forbid(unsafe_code)]`, so the mapping is a fully-buffered region
//!   rather than a raw `mmap(2)` — the access pattern and API are identical,
//!   and a future unsafe-gated mmap backend can slot in behind the same type.
//! * [`PcapSlice`] is a cursor over that mapping yielding borrowed
//!   [`RawFrame`]s — no per-record allocation, no copy; the frame bytes are
//!   `&[u8]` views into the mapping. Its fault taxonomy is byte-identical to
//!   [`crate::pcap::PcapReader`]: same [`PcapError`] variants at the same
//!   stream positions.
//! * [`FrameBatch`] gathers a run of raw frames and decodes the run into
//!   [`ProbeRecord`]s in one pass. The canonical Ethernet/IPv4/TCP probe
//!   frame (14 + 20 + 20 bytes, no options) is decoded by fixed-offset field
//!   extraction — a straight-line, bounds-check-free loop the compiler can
//!   vectorize — with fallback to [`ProbeRecord::from_ethernet`] for frames
//!   with options, padding, or odd link types.
//! * [`MappedPcapStream`] is the policy-aware [`TryRecordStream`] over a
//!   slice, behaviorally identical to the `Read`-based
//!   `telescope::capture::PcapStream` (same batches, same fault counters,
//!   same order-violation census) — proven by the equivalence suite.
//! * [`IngestQueues`] partitions the mapping into record-boundary-aligned
//!   byte ranges and decodes them on one thread per queue, merging the
//!   decoded batches back *in capture order* so the single-consumer
//!   `TryRecordStream` contract (and therefore chaos/checkpoint semantics
//!   downstream) is preserved while header parsing and field extraction run
//!   in parallel.
//!
//! Checksums are *not* verified by default ([`ChecksumPolicy::Trust`]),
//! matching the historical parse path: telescope captures were checksummed
//! by the capture hardware, and synthetic streams are trusted by
//! construction. [`ChecksumPolicy::Verify`] opts into full IPv4 + TCP
//! verification, counting failures as unparseable frames.

use std::io::{self, Read};
use std::path::Path;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use crate::checksum;
use crate::pcap::{
    header_u32, GlobalHeader, PcapError, GLOBAL_HEADER_LEN, MAX_SNAPLEN, RECORD_HEADER_LEN,
};
use crate::probe::ProbeRecord;
use crate::stream::{
    FaultCounters, FaultPolicy, RecordStream, StreamError, TryRecordStream, BATCH_RECORDS,
};
use crate::tcp::TcpFlags;
use crate::Ipv4Address;

/// How the ingest front end reads a capture. Parsed from the binaries'
/// `--ingest` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// The streaming `Read`-based reader: O(batch) memory, one allocation
    /// and copy per record. The only mode that can stream an unbounded pipe.
    #[default]
    Read,
    /// The zero-copy mapped reader over a fully-buffered capture, decoding
    /// on `queues` parallel queues (1 = decode on the calling thread).
    /// Stdin and pipes are buffered whole before parsing.
    Mapped {
        /// Decode queues feeding the merger (clamped to at least 1).
        queues: usize,
    },
}

impl core::fmt::Display for IngestMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IngestMode::Read => write!(f, "read"),
            IngestMode::Mapped { queues: 1 } => write!(f, "mmap"),
            IngestMode::Mapped { queues } => write!(f, "mmap:{queues}"),
        }
    }
}

impl core::str::FromStr for IngestMode {
    type Err = String;

    fn from_str(s: &str) -> core::result::Result<Self, Self::Err> {
        match s {
            "read" => Ok(IngestMode::Read),
            "mmap" | "mapped" => Ok(IngestMode::Mapped { queues: 1 }),
            other => {
                if let Some(n) = other
                    .strip_prefix("mmap:")
                    .or_else(|| other.strip_prefix("mapped:"))
                {
                    let queues: usize = n
                        .parse()
                        .map_err(|_| format!("bad queue count in ingest mode {other:?}"))?;
                    if queues == 0 {
                        return Err("ingest queue count must be at least 1".into());
                    }
                    return Ok(IngestMode::Mapped { queues });
                }
                Err(format!(
                    "unknown ingest mode {other:?} (expected read, mmap, or mmap:N)"
                ))
            }
        }
    }
}

/// Whether decoded frames have their IPv4/TCP checksums verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChecksumPolicy {
    /// Skip checksum verification (the default, and the historical parse
    /// behavior): trusted synthetic streams and hardware-checksummed
    /// captures pay nothing for re-verification.
    #[default]
    Trust,
    /// Verify IPv4 header and TCP pseudo-header checksums; frames failing
    /// either are counted as unparseable (non-TCP) and dropped.
    Verify,
}

/// A contiguous, owned in-memory image of a capture file — the "mapping"
/// every zero-copy reader borrows from. Frames yielded by [`PcapSlice`] and
/// [`FrameBatch`] are `&[u8]` views into this buffer, so it must outlive
/// every reader derived from it (the borrow checker enforces exactly that;
/// the multi-queue front end shares it through an [`Arc`] instead).
#[derive(Debug, Clone)]
pub struct MappedCapture {
    bytes: Vec<u8>,
}

impl MappedCapture {
    /// Map a capture file by loading it whole.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self {
            bytes: std::fs::read(path)?,
        })
    }

    /// Buffer a non-seekable source (stdin, a pipe) whole. This is the
    /// documented fallback when a real file path is not available; it trades
    /// the O(batch) memory of the `Read` path for the zero-copy parse.
    pub fn from_reader<R: Read>(mut reader: R) -> io::Result<Self> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Ok(Self { bytes })
    }

    /// Wrap an already-materialized capture image.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Unwrap the mapping back into its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Size of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// One captured frame, borrowed from the mapping: the zero-copy counterpart
/// of [`crate::pcap::PcapRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawFrame<'a> {
    /// Timestamp in microseconds since the epoch.
    pub ts_micros: u64,
    /// Original length of the frame on the wire.
    pub orig_len: u32,
    /// Captured bytes — a view into the mapping, never a copy.
    pub data: &'a [u8],
}

/// A cursor over a mapped capture yielding borrowed frames.
///
/// Error-for-error identical to [`crate::pcap::PcapReader`]: the same
/// [`PcapError`] variants surface at the same stream positions, recoverable
/// errors leave the cursor aligned on the next record, and unrecoverable
/// ones lose framing for good.
#[derive(Debug, Clone)]
pub struct PcapSlice<'a> {
    data: &'a [u8],
    cursor: usize,
    end: usize,
    meta: GlobalHeader,
}

impl<'a> PcapSlice<'a> {
    /// Open a mapped capture, parsing and validating the global header.
    pub fn new(data: &'a [u8]) -> Result<Self, PcapError> {
        if data.len() < GLOBAL_HEADER_LEN {
            return Err(PcapError::TruncatedGlobalHeader);
        }
        let mut header = [0u8; GLOBAL_HEADER_LEN];
        header.copy_from_slice(&data[..GLOBAL_HEADER_LEN]);
        let meta = GlobalHeader::parse(&header)?;
        Ok(Self {
            data,
            cursor: GLOBAL_HEADER_LEN,
            end: data.len(),
            meta,
        })
    }

    /// A sub-slice over `[start, end)` byte offsets of the same mapping
    /// (offsets into the full mapped file, so `start` must sit on a record
    /// boundary produced by [`PcapSlice::partition`]).
    pub fn segment(&self, start: usize, end: usize) -> Self {
        debug_assert!(start >= GLOBAL_HEADER_LEN && start <= end && end <= self.data.len());
        Self {
            data: self.data,
            cursor: start,
            end,
            meta: self.meta,
        }
    }

    /// The link type declared in the global header.
    pub fn linktype(&self) -> u32 {
        self.meta.linktype
    }

    /// The decoded global header.
    pub fn header(&self) -> GlobalHeader {
        self.meta
    }

    /// Bytes between the cursor and the end of this slice.
    pub fn remaining(&self) -> usize {
        self.end - self.cursor
    }

    /// Yield the next frame as a borrowed view; `Ok(None)` is a clean end.
    ///
    /// After a [`PcapError::recoverable`] error the cursor is still aligned
    /// on the next record and may be pulled again; after any other error the
    /// framing is lost.
    #[inline]
    pub fn next_frame(&mut self) -> Result<Option<RawFrame<'a>>, PcapError> {
        let remaining = self.end - self.cursor;
        if remaining == 0 {
            return Ok(None);
        }
        if remaining < RECORD_HEADER_LEN {
            self.cursor = self.end;
            return Err(PcapError::TruncatedRecordHeader {
                got: remaining as u32,
            });
        }
        let header = &self.data[self.cursor..self.cursor + RECORD_HEADER_LEN];
        let swapped = self.meta.swapped;
        let ts_sec = u64::from(header_u32(header, 0, swapped));
        let ts_frac = u64::from(header_u32(header, 4, swapped));
        let incl_len = header_u32(header, 8, swapped);
        let orig_len = header_u32(header, 12, swapped);
        self.cursor += RECORD_HEADER_LEN;
        if incl_len > MAX_SNAPLEN {
            return Err(PcapError::SnapLenOverflow(incl_len));
        }
        let avail = self.end - self.cursor;
        if (incl_len as usize) > avail {
            self.cursor = self.end;
            return Err(PcapError::TruncatedRecordBody {
                expected: incl_len,
                got: avail as u32,
            });
        }
        let data = &self.data[self.cursor..self.cursor + incl_len as usize];
        self.cursor += incl_len as usize;
        // The body is consumed either way, so this check runs after the
        // cursor advance: a skip-faults consumer stays aligned.
        if orig_len == 0 && incl_len > 0 {
            return Err(PcapError::ZeroLengthRecord { incl: incl_len });
        }
        let ts_micros = if self.meta.nanos {
            ts_sec * 1_000_000 + ts_frac / 1000
        } else {
            ts_sec * 1_000_000 + ts_frac
        };
        Ok(Some(RawFrame {
            ts_micros,
            orig_len,
            data,
        }))
    }

    /// Walk the record framing without decoding, returning the byte offset
    /// and record count of the longest cleanly-framed prefix. The walk stops
    /// at the first framing fault that loses alignment (torn header or body,
    /// snaplen overflow); zero-length records keep framing and are walked
    /// over.
    fn framed_prefix(&self) -> (usize, u64) {
        let mut off = self.cursor;
        let mut records = 0u64;
        loop {
            let remaining = self.end - off;
            if remaining < RECORD_HEADER_LEN {
                // 0 = clean end; 1-15 = torn header. Either way the walk
                // cannot continue, and `off` is the last good boundary.
                return (off, records);
            }
            let header = &self.data[off..off + RECORD_HEADER_LEN];
            let incl_len = header_u32(header, 8, self.meta.swapped) as usize;
            if incl_len > MAX_SNAPLEN as usize || RECORD_HEADER_LEN + incl_len > remaining {
                return (off, records);
            }
            off += RECORD_HEADER_LEN + incl_len;
            records += 1;
        }
    }

    /// Partition this slice into `parts` byte ranges aligned on record
    /// boundaries, balanced by record count.
    ///
    /// Invariants (the queue front end depends on all three):
    /// * every range starts on a record boundary of the cleanly-framed
    ///   prefix, so every queue but the last parses without framing faults;
    /// * the ranges concatenate, in order, to exactly `[cursor, end)` — no
    ///   byte is dropped or read twice;
    /// * any framing fault (torn tail, snaplen corruption) lies in the
    ///   *last* range, so fault-policy semantics collapse to the sequential
    ///   case at the point the merged stream reaches it.
    pub fn partition(&self, parts: usize) -> Vec<(usize, usize)> {
        let parts = parts.max(1);
        if parts == 1 {
            // One part is the whole slice; skip the framing walk — on a
            // decade-scale capture that walk reads every record header.
            return vec![(self.cursor, self.end)];
        }
        let (clean_end, records) = self.framed_prefix();
        let per = records.div_ceil(parts as u64).max(1);
        let mut ranges = Vec::with_capacity(parts);
        let mut off = self.cursor;
        let mut walked = 0u64;
        let mut start = self.cursor;
        let mut emitted = 0u64;
        while off < clean_end && ranges.len() + 1 < parts {
            let header = &self.data[off..off + RECORD_HEADER_LEN];
            let incl_len = header_u32(header, 8, self.meta.swapped) as usize;
            off += RECORD_HEADER_LEN + incl_len;
            walked += 1;
            if walked - emitted == per {
                ranges.push((start, off));
                start = off;
                emitted = walked;
            }
        }
        ranges.push((start, self.end));
        while ranges.len() < parts {
            ranges.push((self.end, self.end));
        }
        ranges
    }
}

/// Decode one captured frame into a [`ProbeRecord`].
///
/// The canonical probe frame — Ethernet II + option-less IPv4 + option-less
/// TCP, 54 bytes — is decoded by fixed-offset extraction; anything else
/// falls back to the checked per-layer parser, so the result is identical to
/// [`ProbeRecord::from_ethernet`] for every input (the fast-path conditions
/// are exactly the conditions under which the checked parser reads the same
/// fixed offsets).
#[inline]
pub fn decode_frame(
    ts_micros: u64,
    frame: &[u8],
    checksums: ChecksumPolicy,
) -> crate::Result<ProbeRecord> {
    /// Ethernet (14) + IPv4 without options (20) + TCP without options (20).
    const FAST_LEN: usize = 54;
    let record = if frame.len() == FAST_LEN
        && frame[12] == 0x08
        && frame[13] == 0x00 // EtherType IPv4
        && frame[14] == 0x45 // version 4, IHL 5
        && u16::from_be_bytes([frame[16], frame[17]]) == 40 // total_len = exact payload
        && frame[23] == 6 // protocol TCP
        && frame[46] >> 4 == 5
    // data offset 5: no TCP options
    {
        ProbeRecord {
            ts_micros,
            src_ip: Ipv4Address(u32::from_be_bytes([
                frame[26], frame[27], frame[28], frame[29],
            ])),
            dst_ip: Ipv4Address(u32::from_be_bytes([
                frame[30], frame[31], frame[32], frame[33],
            ])),
            src_port: u16::from_be_bytes([frame[34], frame[35]]),
            dst_port: u16::from_be_bytes([frame[36], frame[37]]),
            seq: u32::from_be_bytes([frame[38], frame[39], frame[40], frame[41]]),
            ip_id: u16::from_be_bytes([frame[18], frame[19]]),
            ttl: frame[22],
            flags: TcpFlags(frame[47] & 0x3f),
            window: u16::from_be_bytes([frame[48], frame[49]]),
        }
    } else {
        ProbeRecord::from_ethernet(ts_micros, frame)?
    };
    if matches!(checksums, ChecksumPolicy::Verify) {
        verify_frame_checksums(frame)?;
    }
    Ok(record)
}

/// Verify IPv4 header and TCP pseudo-header checksums of a frame already
/// known to parse as Ethernet/IPv4/TCP.
fn verify_frame_checksums(frame: &[u8]) -> crate::Result<()> {
    use crate::ethernet::HEADER_LEN as ETH;
    let ip = crate::ipv4::Ipv4Packet::new_checked(&frame[ETH..])?;
    if !ip.verify_checksum() {
        return Err(crate::WireError::Checksum);
    }
    let (src, dst) = (ip.src_addr(), ip.dst_addr());
    let segment = ip.payload();
    let mut acc = checksum::pseudo_header_sum(src.0, dst.0, 6, segment.len() as u16);
    acc.add_bytes(segment);
    if acc.value() != 0 {
        return Err(crate::WireError::Checksum);
    }
    Ok(())
}

/// How a [`FrameBatch::gather`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherOutcome {
    /// The run reached the requested frame count; more frames may follow.
    Full,
    /// The slice ended cleanly.
    CleanEof,
    /// A framing fault interrupted the run; the frames gathered before it
    /// are valid and already in the batch.
    Fault(PcapError),
}

/// A reusable run of borrowed frames, gathered from a [`PcapSlice`] and
/// decoded into [`ProbeRecord`]s in one pass.
#[derive(Debug, Default)]
pub struct FrameBatch<'a> {
    frames: Vec<RawFrame<'a>>,
}

impl<'a> FrameBatch<'a> {
    /// An empty batch with room for `capacity` frames.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            frames: Vec::with_capacity(capacity),
        }
    }

    /// The gathered frames.
    pub fn frames(&self) -> &[RawFrame<'a>] {
        &self.frames
    }

    /// Drop all gathered frames, keeping the allocation.
    pub fn clear(&mut self) {
        self.frames.clear();
    }

    /// Gather up to `max` frames from the slice, stopping early at end of
    /// stream or the first framing fault. Gathered frames are *appended*.
    pub fn gather(&mut self, slice: &mut PcapSlice<'a>, max: usize) -> GatherOutcome {
        while self.frames.len() < max {
            match slice.next_frame() {
                Ok(Some(frame)) => self.frames.push(frame),
                Ok(None) => return GatherOutcome::CleanEof,
                Err(e) => return GatherOutcome::Fault(e),
            }
        }
        GatherOutcome::Full
    }

    /// Decode every gathered frame in one pass, appending parsed records to
    /// `out`, counting unparseable frames into `non_tcp`, and maintaining
    /// the consecutive-record order census exactly as the streaming reader
    /// does.
    pub fn decode_into(
        &self,
        checksums: ChecksumPolicy,
        out: &mut Vec<ProbeRecord>,
        non_tcp: &mut u64,
        last_ts: &mut u64,
        order_violations: &mut u64,
    ) {
        for frame in &self.frames {
            match decode_frame(frame.ts_micros, frame.data, checksums) {
                Ok(record) => {
                    if record.ts_micros < *last_ts {
                        *order_violations += 1;
                    }
                    *last_ts = record.ts_micros;
                    out.push(record);
                }
                Err(_) => *non_tcp += 1,
            }
        }
    }
}

/// The zero-copy, policy-aware record stream over a mapped capture — the
/// drop-in replacement for the `Read`-based `PcapStream` on the
/// [`TryRecordStream`] side of the pipeline.
///
/// Behavioral contract (held byte-for-byte against the streaming reader by
/// the equivalence suite): same records in the same order, same
/// [`FaultCounters`] under every [`FaultPolicy`], same non-TCP and
/// order-violation counts, same terminal error under [`FaultPolicy::Fail`].
#[derive(Debug)]
pub struct MappedPcapStream<'a> {
    slice: PcapSlice<'a>,
    policy: FaultPolicy,
    checksums: ChecksumPolicy,
    batch_target: usize,
    batch: Vec<ProbeRecord>,
    run: FrameBatch<'a>,
    non_tcp: u64,
    last_ts: u64,
    order_violations: u64,
    faults: FaultCounters,
    error: Option<StreamError>,
    done: bool,
}

/// Frames gathered per decode run: long enough that the fixed-offset decode
/// loop dominates, short enough that a run of borrowed frames stays hot in
/// cache alongside its decoded records.
const RUN_FRAMES: usize = 1024;

impl<'a> MappedPcapStream<'a> {
    /// Open a mapped capture under the strict [`FaultPolicy::Fail`] policy.
    pub fn new(data: &'a [u8]) -> Result<Self, PcapError> {
        Self::with_policy(data, FaultPolicy::Fail)
    }

    /// As [`MappedPcapStream::new`] with an explicit fault policy.
    pub fn with_policy(data: &'a [u8], policy: FaultPolicy) -> Result<Self, PcapError> {
        Ok(Self::over(PcapSlice::new(data)?, policy))
    }

    /// Stream an already-opened slice (used by the queue front end for
    /// segments, which share one global header).
    pub fn over(slice: PcapSlice<'a>, policy: FaultPolicy) -> Self {
        // The owned buffer grows lazily on first use: callers that only
        // ever decode through `try_next_owned` never touch it.
        Self {
            slice,
            policy,
            checksums: ChecksumPolicy::Trust,
            batch_target: BATCH_RECORDS,
            batch: Vec::new(),
            run: FrameBatch::with_capacity(RUN_FRAMES),
            non_tcp: 0,
            last_ts: 0,
            order_violations: 0,
            faults: FaultCounters::default(),
            error: None,
            done: false,
        }
    }

    /// Rebuild a stream over `data` from a [`suspend`]ed state.
    ///
    /// [`suspend`]: MappedPcapStream::suspend
    pub fn resume(data: &'a [u8], state: MappedStreamState) -> Result<Self, PcapError> {
        let base = PcapSlice::new(data)?;
        Ok(Self {
            slice: base.segment(state.cursor, state.end),
            policy: state.policy,
            checksums: state.checksums,
            batch_target: state.batch_target,
            batch: Vec::new(),
            run: FrameBatch::with_capacity(RUN_FRAMES),
            non_tcp: state.non_tcp,
            last_ts: state.last_ts,
            order_violations: state.order_violations,
            faults: state.faults,
            error: state.error,
            done: state.done,
        })
    }

    /// Detach the decode state from the mapping borrow, so an owner of the
    /// mapping can park the stream beside it and [`resume`] later — the
    /// no-self-reference idiom the inline single-queue ingest path uses.
    ///
    /// [`resume`]: MappedPcapStream::resume
    pub fn suspend(self) -> MappedStreamState {
        MappedStreamState {
            cursor: self.slice.cursor,
            end: self.slice.end,
            policy: self.policy,
            checksums: self.checksums,
            batch_target: self.batch_target,
            non_tcp: self.non_tcp,
            last_ts: self.last_ts,
            order_violations: self.order_violations,
            faults: self.faults,
            error: self.error,
            done: self.done,
        }
    }

    /// Set the checksum policy (builder style).
    pub fn checksums(mut self, checksums: ChecksumPolicy) -> Self {
        self.checksums = checksums;
        self
    }

    /// Override the records-per-batch target (tests and benches).
    pub fn batch_target(mut self, target: usize) -> Self {
        self.batch_target = target.max(1);
        self
    }

    /// Frames that were not parseable IPv4/TCP (plus, under
    /// [`ChecksumPolicy::Verify`], frames failing verification).
    pub fn non_tcp_frames(&self) -> u64 {
        self.non_tcp
    }

    /// Consecutive-record timestamp inversions seen so far.
    pub fn order_violations(&self) -> u64 {
        self.order_violations
    }

    /// What the fault policy skipped or cut short on this stream.
    pub fn faults(&self) -> FaultCounters {
        self.faults
    }

    /// The error that ended the stream, if any (only under
    /// [`FaultPolicy::Fail`], and only through the infallible interface).
    pub fn error(&self) -> Option<StreamError> {
        self.error
    }

    /// The link type declared in the capture's global header.
    pub fn linktype(&self) -> u32 {
        self.slice.linktype()
    }

    fn fill(&mut self) -> Result<bool, StreamError> {
        let mut batch = std::mem::take(&mut self.batch);
        let filled = self.fill_into(&mut batch);
        self.batch = batch;
        filled
    }

    /// Decode the next batch into `buf` (cleared first) and hand it back by
    /// value — the owned-batch variant of [`TryRecordStream::try_next_batch`].
    /// The queue front end moves these buffers across threads and recycles
    /// them, so a decoded record is written exactly once and never copied.
    pub fn try_next_owned(
        &mut self,
        mut buf: Vec<ProbeRecord>,
    ) -> Result<Option<Vec<ProbeRecord>>, StreamError> {
        match self.fill_into(&mut buf)? {
            true => Ok(Some(buf)),
            false => Ok(None),
        }
    }

    fn fill_into(&mut self, out: &mut Vec<ProbeRecord>) -> Result<bool, StreamError> {
        if self.done {
            return Ok(false);
        }
        out.clear();
        while out.len() < self.batch_target {
            self.run.clear();
            let budget = RUN_FRAMES.min(self.batch_target - out.len());
            let outcome = self.run.gather(&mut self.slice, budget);
            self.run.decode_into(
                self.checksums,
                out,
                &mut self.non_tcp,
                &mut self.last_ts,
                &mut self.order_violations,
            );
            match outcome {
                GatherOutcome::Full => {}
                GatherOutcome::CleanEof => {
                    self.done = true;
                    break;
                }
                GatherOutcome::Fault(e) => match self.policy {
                    FaultPolicy::Fail => {
                        self.done = true;
                        return Err(StreamError::Pcap(e));
                    }
                    FaultPolicy::SkipRecord if e.recoverable() => {
                        self.faults.records_skipped += 1;
                        self.faults.bytes_dropped += e.bytes_lost();
                    }
                    FaultPolicy::SkipRecord => {
                        self.faults.streams_truncated += 1;
                        self.faults.bytes_dropped += e.bytes_lost();
                        self.done = true;
                        break;
                    }
                    FaultPolicy::StopClean => {
                        self.faults.streams_truncated += 1;
                        self.faults.bytes_dropped += e.bytes_lost();
                        self.done = true;
                        break;
                    }
                },
            }
        }
        Ok(!out.is_empty())
    }
}

impl RecordStream for MappedPcapStream<'_> {
    fn next_batch(&mut self) -> Option<&[ProbeRecord]> {
        match self.fill() {
            Ok(true) => Some(&self.batch),
            Ok(false) => None,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

impl TryRecordStream for MappedPcapStream<'_> {
    fn try_next_batch(&mut self) -> Result<Option<&[ProbeRecord]>, StreamError> {
        match self.fill()? {
            true => Ok(Some(&self.batch)),
            false => Ok(None),
        }
    }
}

/// A [`MappedPcapStream`] with the mapping borrow detached: byte cursor,
/// policies, and every running counter — everything but the `&[u8]` and the
/// scratch buffers. See [`MappedPcapStream::suspend`].
#[derive(Debug, Clone)]
pub struct MappedStreamState {
    cursor: usize,
    end: usize,
    policy: FaultPolicy,
    checksums: ChecksumPolicy,
    batch_target: usize,
    non_tcp: u64,
    last_ts: u64,
    order_violations: u64,
    faults: FaultCounters,
    error: Option<StreamError>,
    done: bool,
}

/// What one decode queue reports when it finishes its segment.
#[derive(Debug)]
struct QueueSummary {
    faults: FaultCounters,
    non_tcp: u64,
    order_violations: u64,
    error: Option<StreamError>,
}

enum QueueMsg {
    Batch(Vec<ProbeRecord>),
    Done(QueueSummary),
}

/// The multi-queue ingest front end: partitions a mapped capture on record
/// boundaries, decodes each partition on its own thread, and yields the
/// decoded batches *in capture order* through the ordinary
/// [`TryRecordStream`] interface.
///
/// Order is preserved because the partitions tile the capture: the merger
/// drains queue 0 to completion, then queue 1, and so on. Queues decode
/// ahead behind a bounded channel whose depth is derived from the
/// [`RUNAHEAD_BYTES`] budget (see [`queue_depth`]): deep enough that a
/// later queue keeps decoding while the merger is still draining an
/// earlier one — run-ahead is exactly the parallelism this front end buys,
/// a rendezvous-shallow channel serializes the queues behind the merger —
/// yet bounded, so memory stays O(budget) however large the capture is.
/// Batches move by value through the channel and spent buffers recycle
/// back to the decoders through a shared pool, so a decoded record is
/// written once and never copied again. Per-source record order — the
/// invariant the sharded pipeline's [`FaultPolicy`] gate depends on — is
/// therefore exactly the capture's, same as sequential ingest.
#[derive(Debug)]
pub struct IngestQueues {
    capture: Arc<MappedCapture>,
    policy: FaultPolicy,
    checksums: ChecksumPolicy,
    queues: usize,
    ranges: Vec<(usize, usize)>,
}

/// Decoded bytes the whole queue set may buffer ahead of the merger.
///
/// Sizing rationale: the merger consumes queues strictly in capture order,
/// so every queue after the current one makes progress *only* into its
/// channel buffer. The old fixed depth of 4 batches (~2 MiB decoded) meant
/// later queues filled their channels in microseconds and then sat blocked
/// — the whole decode degenerated to sequential, plus a per-batch copy and
/// a thread rendezvous per hand-off (measured 2.7× slower than the
/// single-stream mapped reader). 64 MiB of run-ahead lets each queue of a
/// typical multi-queue split decode a large fraction of its segment before
/// ever blocking, which is what actually overlaps the work.
pub const RUNAHEAD_BYTES: usize = 64 << 20;

/// Per-queue channel depth (in batches) for a `queues`-way split: the
/// shared [`RUNAHEAD_BYTES`] budget divided evenly, floored at two batches
/// so a queue can always overlap one decode with one hand-off.
pub fn queue_depth(queues: usize) -> usize {
    let batch_bytes = (BATCH_RECORDS * core::mem::size_of::<ProbeRecord>()).max(1);
    (RUNAHEAD_BYTES / queues.max(1) / batch_bytes).max(2)
}

/// Spent batch buffers on their way back to the decode threads. Capacity
/// recycles through here instead of being freed and re-grown per batch;
/// the population is naturally bounded by the channel depths (a buffer is
/// either in a channel, in the merger's hands, or parked here). Distinct
/// from [`crate::stream::BatchPool`], which recycles inside one thread.
type RecycledBatches = Arc<Mutex<Vec<Vec<ProbeRecord>>>>;

impl IngestQueues {
    /// Plan a right-sized multi-queue ingest over a shared mapping: the
    /// requested queue count is clamped to the machine's available
    /// parallelism, because queues past the core count cannot overlap any
    /// work — they only add hand-off and scheduling cost (on a one-core
    /// box, the unclamped 4-queue decode measured 2.7× slower than the
    /// single stream). A clamp to one queue decodes *inline*, with no
    /// threads at all. Fails only if the global header does not parse (no
    /// framing to partition).
    pub fn new(
        capture: Arc<MappedCapture>,
        queues: usize,
        policy: FaultPolicy,
    ) -> Result<Self, PcapError> {
        let cores = thread::available_parallelism().map_or(1, |n| n.get());
        Self::exact(capture, queues.max(1).min(cores), policy)
    }

    /// Plan exactly `queues` decode queues, even past the machine's
    /// parallelism. The equivalence suite uses this to exercise the
    /// multi-queue merge paths on any box; production callers want the
    /// right-sizing of [`IngestQueues::new`].
    pub fn exact(
        capture: Arc<MappedCapture>,
        queues: usize,
        policy: FaultPolicy,
    ) -> Result<Self, PcapError> {
        let queues = queues.max(1);
        let slice = PcapSlice::new(capture.as_slice())?;
        let ranges = slice.partition(queues);
        Ok(Self {
            capture,
            policy,
            checksums: ChecksumPolicy::Trust,
            queues,
            ranges,
        })
    }

    /// Set the checksum policy (builder style).
    pub fn checksums(mut self, checksums: ChecksumPolicy) -> Self {
        self.checksums = checksums;
        self
    }

    /// The effective queue count (after [`IngestQueues::new`]'s clamp).
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// The planned record-boundary-aligned byte ranges, one per queue.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Start the planned ingest and return the merged, ordered stream: one
    /// decode thread per queue, or the threadless inline decoder when the
    /// plan collapsed to a single queue.
    pub fn spawn(self) -> ParallelIngest {
        if self.queues == 1 {
            let (start, end) = self.ranges[0];
            let state = MappedPcapStream::over(
                // The planner parsed this header in `new`, so the segment
                // bounds are valid; re-deriving the slice per batch is how
                // the inline path avoids a self-referential borrow.
                PcapSlice::new(self.capture.as_slice())
                    .expect("header parsed at plan time")
                    .segment(start, end),
                self.policy,
            )
            .checksums(self.checksums)
            .suspend();
            return ParallelIngest {
                backend: IngestBackend::Inline(InlineIngest {
                    capture: self.capture,
                    state: Some(state),
                    batch: Vec::new(),
                }),
            };
        }
        let mut receivers = Vec::with_capacity(self.queues);
        let mut workers = Vec::with_capacity(self.queues);
        let depth = queue_depth(self.queues);
        let pool: RecycledBatches = Arc::new(Mutex::new(Vec::new()));
        for &(start, end) in &self.ranges {
            let (tx, rx) = mpsc::sync_channel::<QueueMsg>(depth);
            let capture = Arc::clone(&self.capture);
            let pool = Arc::clone(&pool);
            let (policy, checksums) = (self.policy, self.checksums);
            let handle = thread::spawn(move || {
                let slice = match PcapSlice::new(capture.as_slice()) {
                    Ok(slice) => slice.segment(start, end),
                    Err(e) => {
                        // The planner already parsed this header; this arm
                        // is unreachable but must not panic the worker.
                        let _ = tx.send(QueueMsg::Done(QueueSummary {
                            faults: FaultCounters::default(),
                            non_tcp: 0,
                            order_violations: 0,
                            error: Some(StreamError::Pcap(e)),
                        }));
                        return;
                    }
                };
                let mut stream = MappedPcapStream::over(slice, policy).checksums(checksums);
                let mut error = None;
                loop {
                    let buf = pool
                        .lock()
                        .map(|mut parked| parked.pop())
                        .unwrap_or_default()
                        .unwrap_or_else(|| Vec::with_capacity(BATCH_RECORDS));
                    match stream.try_next_owned(buf) {
                        Ok(Some(batch)) => {
                            if tx.send(QueueMsg::Batch(batch)).is_err() {
                                return; // merger dropped; stop decoding
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                let _ = tx.send(QueueMsg::Done(QueueSummary {
                    faults: stream.faults(),
                    non_tcp: stream.non_tcp_frames(),
                    order_violations: stream.order_violations(),
                    error,
                }));
            });
            receivers.push(rx);
            workers.push(handle);
        }
        ParallelIngest {
            backend: IngestBackend::Threaded(ThreadedIngest {
                receivers,
                workers,
                pool,
                current_queue: 0,
                batch: Vec::new(),
                last_ts: None,
                at_boundary: false,
                non_tcp: 0,
                order_violations: 0,
                faults: FaultCounters::default(),
                error: None,
                done: false,
            }),
        }
    }
}

/// The merged, capture-ordered stream over an [`IngestQueues`] plan.
///
/// Implements [`TryRecordStream`] with the exact single-stream semantics:
/// batches arrive in capture order, fault counters aggregate across queues,
/// and the consecutive-record order census accounts for queue boundaries
/// (the one comparison per boundary the per-queue censuses cannot see).
/// When the plan collapsed to a single queue this is the threadless inline
/// decoder — same interface, same bytes, no hand-off cost.
#[derive(Debug)]
pub struct ParallelIngest {
    backend: IngestBackend,
}

#[derive(Debug)]
enum IngestBackend {
    Inline(InlineIngest),
    Threaded(ThreadedIngest),
}

/// The single-queue degenerate case: decode on the consumer's own thread.
/// The stream state is held [`suspend`]ed beside the owned mapping and the
/// borrow is re-derived per batch, which is cheap (one 24-byte header
/// parse) and avoids a self-referential struct.
///
/// [`suspend`]: MappedPcapStream::suspend
#[derive(Debug)]
struct InlineIngest {
    capture: Arc<MappedCapture>,
    state: Option<MappedStreamState>,
    batch: Vec<ProbeRecord>,
}

impl InlineIngest {
    fn fill(&mut self) -> Result<bool, StreamError> {
        let mut state = self.state.take().expect("inline state always parked");
        let mut stream = match MappedPcapStream::resume(self.capture.as_slice(), state.clone()) {
            Ok(stream) => stream,
            Err(e) => {
                // Unreachable (the header parsed at plan time), but keep
                // the typed-error contract rather than panicking.
                state.done = true;
                state.error = Some(StreamError::Pcap(e));
                self.state = Some(state);
                return Err(StreamError::Pcap(e));
            }
        };
        let mut batch = std::mem::take(&mut self.batch);
        let filled = stream.fill_into(&mut batch);
        self.batch = batch;
        self.state = Some(stream.suspend());
        filled
    }

    fn view(&self) -> (&MappedStreamState, &[ProbeRecord]) {
        (
            self.state.as_ref().expect("inline state always parked"),
            &self.batch,
        )
    }
}

#[derive(Debug)]
struct ThreadedIngest {
    receivers: Vec<mpsc::Receiver<QueueMsg>>,
    workers: Vec<thread::JoinHandle<()>>,
    pool: RecycledBatches,
    current_queue: usize,
    batch: Vec<ProbeRecord>,
    /// Timestamp of the last record delivered to the consumer, across queue
    /// boundaries (`None` until the first record).
    last_ts: Option<u64>,
    /// True when the next batch is the first since a queue switch, so its
    /// leading record must be order-checked against `last_ts`.
    at_boundary: bool,
    non_tcp: u64,
    order_violations: u64,
    faults: FaultCounters,
    error: Option<StreamError>,
    done: bool,
}

impl ParallelIngest {
    /// Frames that were not parseable IPv4/TCP, across all queues drained
    /// so far.
    pub fn non_tcp_frames(&self) -> u64 {
        match &self.backend {
            IngestBackend::Inline(inline) => inline.view().0.non_tcp,
            IngestBackend::Threaded(threaded) => threaded.non_tcp,
        }
    }

    /// Consecutive-record timestamp inversions, including queue-boundary
    /// comparisons.
    pub fn order_violations(&self) -> u64 {
        match &self.backend {
            IngestBackend::Inline(inline) => inline.view().0.order_violations,
            IngestBackend::Threaded(threaded) => threaded.order_violations,
        }
    }

    /// Aggregated fault tally of all queues drained so far.
    pub fn faults(&self) -> FaultCounters {
        match &self.backend {
            IngestBackend::Inline(inline) => inline.view().0.faults,
            IngestBackend::Threaded(threaded) => threaded.faults,
        }
    }

    /// The error that ended the stream, if any (also surfaced through
    /// [`TryRecordStream::try_next_batch`] under [`FaultPolicy::Fail`]).
    pub fn error(&self) -> Option<StreamError> {
        match &self.backend {
            IngestBackend::Inline(inline) => inline.view().0.error,
            IngestBackend::Threaded(threaded) => threaded.error,
        }
    }
}

impl ThreadedIngest {
    fn fill(&mut self) -> Result<bool, StreamError> {
        if self.done {
            return Ok(false);
        }
        while self.current_queue < self.receivers.len() {
            match self.receivers[self.current_queue].recv() {
                Ok(QueueMsg::Batch(batch)) => {
                    debug_assert!(!batch.is_empty(), "streams never yield empty batches");
                    if self.at_boundary {
                        // The queue-boundary comparison: inside a queue the
                        // worker's own census counts every consecutive pair
                        // (its local last_ts persists across its batches),
                        // but a worker starts at last_ts = 0, so the pair
                        // spanning the queue switch is visible only here.
                        if let (Some(last), Some(first)) = (self.last_ts, batch.first()) {
                            if first.ts_micros < last {
                                self.order_violations += 1;
                            }
                        }
                        self.at_boundary = false;
                    }
                    self.last_ts = batch.last().map(|r| r.ts_micros).or(self.last_ts);
                    let spent = std::mem::replace(&mut self.batch, batch);
                    if spent.capacity() > 0 {
                        if let Ok(mut parked) = self.pool.lock() {
                            parked.push(spent);
                        }
                    }
                    return Ok(true);
                }
                Ok(QueueMsg::Done(summary)) => {
                    self.faults.absorb(&summary.faults);
                    self.non_tcp += summary.non_tcp;
                    self.order_violations += summary.order_violations;
                    if let Some(e) = summary.error {
                        self.done = true;
                        self.error = Some(e);
                        return Err(e);
                    }
                    self.current_queue += 1;
                    self.at_boundary = true;
                }
                Err(_) => {
                    // Worker died without a summary (panic); surface as a
                    // truncation rather than hanging or panicking the
                    // consumer.
                    self.done = true;
                    let e = StreamError::Truncated { records_seen: 0 };
                    self.error = Some(e);
                    return Err(e);
                }
            }
        }
        self.done = true;
        Ok(false)
    }
}

impl TryRecordStream for ParallelIngest {
    fn try_next_batch(&mut self) -> Result<Option<&[ProbeRecord]>, StreamError> {
        match &mut self.backend {
            IngestBackend::Inline(inline) => match inline.fill()? {
                true => Ok(Some(&inline.batch)),
                false => Ok(None),
            },
            IngestBackend::Threaded(threaded) => match threaded.fill()? {
                true => Ok(Some(&threaded.batch)),
                false => Ok(None),
            },
        }
    }
}

impl Drop for ThreadedIngest {
    fn drop(&mut self) {
        // Unblock producers by dropping the receivers, then reap.
        self.receivers.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::{PcapReader, PcapWriter, LINKTYPE_ETHERNET};
    use crate::probe::SynFrameBuilder;
    use std::io::Cursor;

    fn record(i: u64) -> ProbeRecord {
        ProbeRecord {
            ts_micros: 1_000 + i,
            src_ip: Ipv4Address::new(198, 51, (i % 251) as u8, (i % 241) as u8),
            dst_ip: Ipv4Address::new(192, 0, 2, (i % 97) as u8),
            src_port: 40_000 + (i % 1000) as u16,
            dst_port: [80u16, 443, 23, 3389][(i % 4) as usize],
            seq: (i as u32).wrapping_mul(2_654_435_761),
            ip_id: 54_321,
            ttl: 51,
            flags: TcpFlags::SYN,
            window: 1024,
        }
    }

    fn capture_of(records: &[ProbeRecord]) -> Vec<u8> {
        let mut writer = PcapWriter::new(Vec::new(), LINKTYPE_ETHERNET).unwrap();
        let builder = SynFrameBuilder::default();
        let mut buf = vec![0u8; ProbeRecord::frame_len()];
        for r in records {
            builder.build_into(r, &mut buf);
            writer.write_record(r.ts_micros, &buf).unwrap();
        }
        writer.into_inner().unwrap()
    }

    fn drain(stream: &mut impl TryRecordStream) -> Result<Vec<ProbeRecord>, StreamError> {
        let mut out = Vec::new();
        while let Some(batch) = stream.try_next_batch()? {
            out.extend_from_slice(batch);
        }
        Ok(out)
    }

    #[test]
    fn slice_reader_matches_read_reader_frame_for_frame() {
        let records: Vec<ProbeRecord> = (0..300).map(record).collect();
        let bytes = capture_of(&records);
        let mut reader = PcapReader::new(Cursor::new(bytes.clone())).unwrap();
        let mut slice = PcapSlice::new(&bytes).unwrap();
        assert_eq!(slice.linktype(), LINKTYPE_ETHERNET);
        loop {
            let a = reader.next_record().unwrap();
            let b = slice.next_frame().unwrap();
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.ts_micros, b.ts_micros);
                    assert_eq!(a.orig_len, b.orig_len);
                    assert_eq!(a.data.as_slice(), b.data);
                }
                (None, None) => break,
                other => panic!("readers disagree on stream end: {other:?}"),
            }
        }
    }

    #[test]
    fn fast_path_decode_equals_checked_parser() {
        // Canonical frames take the fixed-offset path; the result must be
        // field-for-field what the checked parser produces.
        let builder = SynFrameBuilder::default();
        for i in 0..64 {
            let mut r = record(i);
            r.flags =
                TcpFlags([TcpFlags::SYN.0, TcpFlags::SYN_ACK.0, 0x00, 0x3f][(i % 4) as usize]);
            let frame = builder.build(&r);
            let fast = decode_frame(r.ts_micros, &frame, ChecksumPolicy::Trust).unwrap();
            let checked = ProbeRecord::from_ethernet(r.ts_micros, &frame).unwrap();
            assert_eq!(fast, checked);
            assert_eq!(fast, r);
        }
    }

    #[test]
    fn oversized_frames_fall_back_to_the_checked_parser() {
        // A frame with two trailing padding bytes misses the fast-path
        // length gate but still parses via the fallback (total_len bounds
        // the payload).
        let r = record(7);
        let mut frame = SynFrameBuilder::default().build(&r);
        frame.extend_from_slice(&[0, 0]);
        let decoded = decode_frame(r.ts_micros, &frame, ChecksumPolicy::Trust).unwrap();
        assert_eq!(decoded, r);
        // And a non-IPv4 frame is rejected by both paths.
        let mut v6 = SynFrameBuilder::default().build(&r);
        v6[12] = 0x86;
        v6[13] = 0xdd;
        assert!(decode_frame(0, &v6, ChecksumPolicy::Trust).is_err());
    }

    #[test]
    fn checksum_verify_mode_rejects_corrupted_frames() {
        let r = record(3);
        let mut frame = SynFrameBuilder::default().build(&r);
        assert!(decode_frame(r.ts_micros, &frame, ChecksumPolicy::Verify).is_ok());
        frame[40] ^= 0x10; // flip a bit in the TCP sequence number
        assert_eq!(
            decode_frame(r.ts_micros, &frame, ChecksumPolicy::Verify),
            Err(crate::WireError::Checksum)
        );
        // Trust mode takes the frame as-is (the historical behavior).
        assert!(decode_frame(r.ts_micros, &frame, ChecksumPolicy::Trust).is_ok());
    }

    #[test]
    fn mapped_stream_yields_the_capture() {
        let records: Vec<ProbeRecord> = (0..5000).map(record).collect();
        let bytes = capture_of(&records);
        let mut stream = MappedPcapStream::new(&bytes).unwrap();
        assert_eq!(drain(&mut stream).unwrap(), records);
        assert_eq!(stream.non_tcp_frames(), 0);
        assert_eq!(stream.order_violations(), 0);
        assert!(!stream.faults().any());
    }

    #[test]
    fn torn_header_tail_carries_its_byte_count() {
        let mut bytes = capture_of(&(0..3).map(record).collect::<Vec<_>>());
        bytes.extend_from_slice(&[0u8; 11]); // 11 of 16 header bytes
        let mut slice = PcapSlice::new(&bytes).unwrap();
        for _ in 0..3 {
            assert!(slice.next_frame().unwrap().is_some());
        }
        assert_eq!(
            slice.next_frame().unwrap_err(),
            PcapError::TruncatedRecordHeader { got: 11 }
        );

        // Under the skip policy the tear's bytes land in the counters.
        let mut stream = MappedPcapStream::with_policy(&bytes, FaultPolicy::SkipRecord).unwrap();
        let parsed = drain(&mut stream).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(stream.faults().streams_truncated, 1);
        assert_eq!(stream.faults().bytes_dropped, 11);
    }

    #[test]
    fn partition_tiles_the_capture_on_record_boundaries() {
        let records: Vec<ProbeRecord> = (0..100).map(record).collect();
        let bytes = capture_of(&records);
        let slice = PcapSlice::new(&bytes).unwrap();
        for parts in [1usize, 2, 3, 7, 100, 128] {
            let ranges = slice.partition(parts);
            assert_eq!(ranges.len(), parts);
            assert_eq!(ranges[0].0, GLOBAL_HEADER_LEN);
            assert_eq!(ranges.last().unwrap().1, bytes.len());
            let mut total = 0usize;
            for window in ranges.windows(2) {
                assert_eq!(window[0].1, window[1].0, "ranges tile with no gaps");
            }
            for &(start, end) in &ranges {
                let mut seg = slice.segment(start, end);
                let mut n = 0;
                while seg.next_frame().unwrap().is_some() {
                    n += 1;
                }
                total += n;
            }
            assert_eq!(total, 100, "{parts} parts re-parse every record");
        }
    }

    #[test]
    fn partition_keeps_the_fault_in_the_last_range() {
        let mut bytes = capture_of(&(0..40).map(record).collect::<Vec<_>>());
        bytes.truncate(bytes.len() - 5); // tear the last record's body
        let slice = PcapSlice::new(&bytes).unwrap();
        let ranges = slice.partition(4);
        for &(start, end) in &ranges[..3] {
            let mut seg = slice.segment(start, end);
            while seg.next_frame().expect("early ranges are clean").is_some() {}
        }
        let mut last = slice.segment(ranges[3].0, ranges[3].1);
        let mut saw_fault = false;
        loop {
            match last.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    assert!(matches!(e, PcapError::TruncatedRecordBody { .. }));
                    saw_fault = true;
                    break;
                }
            }
        }
        assert!(saw_fault, "the tear replays in the final range");
    }

    #[test]
    fn parallel_ingest_equals_sequential_order_and_counters() {
        let records: Vec<ProbeRecord> = (0..10_000).map(record).collect();
        let bytes = capture_of(&records);
        for queues in [1usize, 2, 3, 8] {
            let capture = Arc::new(MappedCapture::from_bytes(bytes.clone()));
            let mut merged = IngestQueues::exact(capture, queues, FaultPolicy::Fail)
                .unwrap()
                .spawn();
            assert_eq!(drain(&mut merged).unwrap(), records, "queues={queues}");
            assert_eq!(merged.non_tcp_frames(), 0);
            assert_eq!(merged.order_violations(), 0);
            assert!(!merged.faults().any());
        }
    }

    #[test]
    fn parallel_ingest_counts_queue_boundary_order_violations() {
        // Records in *descending* time order: every consecutive pair is a
        // violation (n-1 of them), wherever the queue boundaries fall.
        let records: Vec<ProbeRecord> = (0..500)
            .map(|i| ProbeRecord {
                ts_micros: 1_000_000 - i,
                ..record(i)
            })
            .collect();
        let bytes = capture_of(&records);
        let mut sequential = MappedPcapStream::new(&bytes).unwrap();
        drain(&mut sequential).unwrap();
        assert_eq!(sequential.order_violations(), 499);
        for queues in [2usize, 3, 5] {
            let capture = Arc::new(MappedCapture::from_bytes(bytes.clone()));
            let mut merged = IngestQueues::exact(capture, queues, FaultPolicy::Fail)
                .unwrap()
                .spawn();
            drain(&mut merged).unwrap();
            assert_eq!(
                merged.order_violations(),
                499,
                "queues={queues}: boundary comparisons are accounted"
            );
        }
    }

    #[test]
    fn parallel_ingest_surfaces_the_tail_fault_under_fail() {
        let mut bytes = capture_of(&(0..200).map(record).collect::<Vec<_>>());
        bytes.truncate(bytes.len() - 9);
        let capture = Arc::new(MappedCapture::from_bytes(bytes));
        let mut merged = IngestQueues::exact(capture, 3, FaultPolicy::Fail)
            .unwrap()
            .spawn();
        let err = drain(&mut merged).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Pcap(PcapError::TruncatedRecordBody { .. })
        ));
    }

    #[test]
    fn parallel_ingest_skip_policy_keeps_the_clean_prefix() {
        let records: Vec<ProbeRecord> = (0..200).map(record).collect();
        let mut bytes = capture_of(&records);
        bytes.truncate(bytes.len() - 9);
        let capture = Arc::new(MappedCapture::from_bytes(bytes));
        let mut merged = IngestQueues::exact(capture, 4, FaultPolicy::SkipRecord)
            .unwrap()
            .spawn();
        let parsed = drain(&mut merged).unwrap();
        assert_eq!(parsed, records[..199].to_vec());
        assert_eq!(merged.faults().streams_truncated, 1);
    }

    #[test]
    fn empty_capture_yields_nothing_on_every_path() {
        let bytes = capture_of(&[]);
        let mut stream = MappedPcapStream::new(&bytes).unwrap();
        assert!(drain(&mut stream).unwrap().is_empty());
        let capture = Arc::new(MappedCapture::from_bytes(bytes));
        let mut merged = IngestQueues::exact(capture, 4, FaultPolicy::Fail)
            .unwrap()
            .spawn();
        assert!(drain(&mut merged).unwrap().is_empty());
    }

    #[test]
    fn new_right_sizes_to_available_parallelism() {
        let cores = thread::available_parallelism().map_or(1, |n| n.get());
        let bytes = capture_of(&(0..100).map(record).collect::<Vec<_>>());
        let capture = Arc::new(MappedCapture::from_bytes(bytes));
        let planned = IngestQueues::new(Arc::clone(&capture), 4, FaultPolicy::Fail).unwrap();
        assert_eq!(planned.queues(), 4.min(cores));
        assert_eq!(planned.ranges().len(), 4.min(cores));
        let exact = IngestQueues::exact(capture, 4, FaultPolicy::Fail).unwrap();
        assert_eq!(exact.queues(), 4);
    }

    #[test]
    fn inline_single_queue_equals_sequential_counters_and_faults() {
        // Clean capture: the threadless inline backend must reproduce the
        // sequential stream exactly, counters included.
        let records: Vec<ProbeRecord> = (0..5_000).map(record).collect();
        let bytes = capture_of(&records);
        let capture = Arc::new(MappedCapture::from_bytes(bytes.clone()));
        let mut inline = IngestQueues::exact(Arc::clone(&capture), 1, FaultPolicy::Fail)
            .unwrap()
            .spawn();
        assert_eq!(drain(&mut inline).unwrap(), records);
        assert_eq!(inline.non_tcp_frames(), 0);
        assert_eq!(inline.order_violations(), 0);
        assert!(!inline.faults().any());
        assert_eq!(inline.error(), None);

        // Torn tail under Fail: the typed error surfaces through the same
        // interface, and sticks.
        let mut torn = bytes;
        torn.truncate(torn.len() - 9);
        let capture = Arc::new(MappedCapture::from_bytes(torn));
        let mut inline = IngestQueues::exact(capture, 1, FaultPolicy::Fail)
            .unwrap()
            .spawn();
        let err = drain(&mut inline).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Pcap(PcapError::TruncatedRecordBody { .. })
        ));
        assert_eq!(inline.error(), Some(err));
    }

    #[test]
    fn suspend_resume_roundtrips_mid_stream() {
        let records: Vec<ProbeRecord> = (0..3_000).map(record).collect();
        let bytes = capture_of(&records);
        let mut stream = MappedPcapStream::new(&bytes).unwrap().batch_target(512);
        let mut collected = Vec::new();
        collected.extend_from_slice(stream.try_next_batch().unwrap().unwrap());
        // Park the state, drop the stream, resume against the same bytes.
        let state = stream.suspend();
        let mut resumed = MappedPcapStream::resume(&bytes, state).unwrap();
        while let Some(batch) = resumed.try_next_batch().unwrap() {
            collected.extend_from_slice(batch);
        }
        assert_eq!(collected, records);
        assert_eq!(resumed.order_violations(), 0);
    }

    #[test]
    fn ingest_mode_parses_and_displays() {
        assert_eq!("read".parse::<IngestMode>().unwrap(), IngestMode::Read);
        assert_eq!(
            "mmap".parse::<IngestMode>().unwrap(),
            IngestMode::Mapped { queues: 1 }
        );
        assert_eq!(
            "mmap:4".parse::<IngestMode>().unwrap(),
            IngestMode::Mapped { queues: 4 }
        );
        assert!("mmap:0".parse::<IngestMode>().is_err());
        assert!("dma".parse::<IngestMode>().is_err());
        assert_eq!(IngestMode::Mapped { queues: 4 }.to_string(), "mmap:4");
        assert_eq!(IngestMode::Mapped { queues: 1 }.to_string(), "mmap");
        assert_eq!(IngestMode::default(), IngestMode::Read);
    }

    #[test]
    fn mapped_capture_from_reader_buffers_pipes() {
        let bytes = capture_of(&(0..10).map(record).collect::<Vec<_>>());
        let capture = MappedCapture::from_reader(Cursor::new(bytes.clone())).unwrap();
        assert_eq!(capture.as_slice(), bytes.as_slice());
        assert_eq!(capture.len(), bytes.len());
        assert!(!capture.is_empty());
    }
}
