//! Hostile-network resilience layer shared by every socket-facing runtime.
//!
//! Both network protocols in this repository — the NDJSON query protocol of
//! `synscan-serve` and the SYNDIST frame protocol of `repro --distributed` —
//! talk to peers that may stall, trickle bytes, send garbage, oversize their
//! requests, or vanish mid-frame. This module concentrates the defenses so
//! each runtime threads the same four pieces through its transport:
//!
//! * [`Deadline`] / [`DeadlineStream`] — per-read/per-write timeouts over any
//!   stream, surfacing expiry as a typed [`NetError::TimedOut`] instead of an
//!   indefinite block;
//! * [`BoundedLineReader`] — newline-delimited request admission with a hard
//!   byte cap (slow-loris and oversized-request defense for NDJSON);
//! * [`ChaosSocket`] — a seeded, deterministic transport-fault injector
//!   (partial writes, read stalls, mid-stream disconnects, byte corruption)
//!   in the same splitmix64 idiom as [`crate::chaos::ChaosReader`];
//! * [`Backoff`] — jittered exponential delays for dial/reconnect loops.
//!
//! Everything here is dependency-free std so it also compiles under the
//! registry-free standalone harness (`--cfg synscan_standalone`).

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

use crate::chaos::{hits, mix64};

/// Default stall watchdog timeout, shared by the distributed coordinator's
/// heartbeat supervision and the serve daemon's idle-connection cutoff.
/// Matches the pre-hardening `SupervisionConfig` default of 30 s.
pub const DEFAULT_STALL_TIMEOUT_MS: u64 = 30_000;

/// Default bound on a single request/response exchange on a serve connection.
pub const DEFAULT_REQUEST_DEADLINE_MS: u64 = 10_000;

/// Default cap on one NDJSON request line. Far above any legitimate query
/// (the longest verb plus arguments is well under 100 bytes) while bounding
/// what a hostile client can make the daemon buffer.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Default admission-gate width for the serve daemon: connections beyond
/// this many simultaneously queued-or-served are shed with a typed reply.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 64;

/// Typed failure from the resilience layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A read or write deadline expired. `op` names the operation
    /// ("read", "write", "request", "idle"), `ms` the budget that ran out.
    TimedOut {
        /// Which operation hit its deadline.
        op: &'static str,
        /// The expired budget in milliseconds.
        ms: u64,
    },
    /// A request exceeded the admission byte cap.
    TooLarge {
        /// The enforced cap in bytes.
        limit: usize,
    },
    /// Any other transport error, stringified.
    Io(String),
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::TimedOut { op, ms } => {
                write!(f, "{op} deadline exceeded after {ms}ms")
            }
            NetError::TooLarge { limit } => {
                write!(f, "request exceeds the {limit}-byte limit")
            }
            NetError::Io(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(err: io::Error) -> Self {
        if is_timeout(&err) {
            // The socket-level timeout granularity is unknown here; callers
            // that know the configured budget use `NetError::TimedOut`
            // directly with the real figure.
            NetError::TimedOut { op: "read", ms: 0 }
        } else {
            NetError::Io(err.to_string())
        }
    }
}

/// Whether an I/O error is a socket timeout. Unix sockets report expired
/// `SO_RCVTIMEO`/`SO_SNDTIMEO` as `WouldBlock`, Windows as `TimedOut`;
/// both mean the deadline fired.
pub fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read/write budgets for one stream. `None` means block indefinitely
/// (the pre-hardening behavior, kept available for trusted local pipes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deadline {
    /// Budget for a single read call.
    pub read: Option<Duration>,
    /// Budget for a single write call.
    pub write: Option<Duration>,
}

impl Deadline {
    /// No deadlines: reads and writes may block forever.
    pub fn none() -> Self {
        Deadline::default()
    }

    /// The same budget for reads and writes.
    pub fn rw(budget: Duration) -> Self {
        Deadline {
            read: Some(budget),
            write: Some(budget),
        }
    }

    /// [`Deadline::rw`] from a millisecond figure; 0 means no deadline.
    pub fn from_millis(ms: u64) -> Self {
        if ms == 0 {
            Deadline::none()
        } else {
            Deadline::rw(Duration::from_millis(ms))
        }
    }
}

/// A stream whose native socket timeouts can be set. Implemented for the two
/// transports the runtimes use; in-memory test streams use
/// [`DeadlineStream::wrap`] instead.
pub trait HasDeadlines {
    /// Apply the budgets as native socket timeouts.
    fn set_deadline(&self, deadline: Deadline) -> io::Result<()>;
}

impl HasDeadlines for std::net::TcpStream {
    fn set_deadline(&self, deadline: Deadline) -> io::Result<()> {
        self.set_read_timeout(deadline.read)?;
        self.set_write_timeout(deadline.write)
    }
}

#[cfg(unix)]
impl HasDeadlines for std::os::unix::net::UnixStream {
    fn set_deadline(&self, deadline: Deadline) -> io::Result<()> {
        self.set_read_timeout(deadline.read)?;
        self.set_write_timeout(deadline.write)
    }
}

/// A stream wrapper that turns socket-timeout errors into typed
/// [`NetError::TimedOut`] I/O errors carrying the configured budget.
///
/// The deadlines themselves are enforced by the kernel (`SO_RCVTIMEO` /
/// `SO_SNDTIMEO`, set via [`HasDeadlines`]); this wrapper's job is to make
/// the expiry diagnosable — `WouldBlock` from a socket read is
/// indistinguishable from a non-blocking miss, while the error this wrapper
/// returns states which budget ran out.
#[derive(Debug)]
pub struct DeadlineStream<S> {
    inner: S,
    deadline: Deadline,
}

impl<S: HasDeadlines> DeadlineStream<S> {
    /// Apply `deadline` to the socket and wrap it.
    pub fn new(inner: S, deadline: Deadline) -> io::Result<Self> {
        inner.set_deadline(deadline)?;
        Ok(DeadlineStream { inner, deadline })
    }
}

impl<S> DeadlineStream<S> {
    /// Wrap a stream whose timeouts are already configured (or which cannot
    /// time out, e.g. an in-memory pipe in tests).
    pub fn wrap(inner: S, deadline: Deadline) -> Self {
        DeadlineStream { inner, deadline }
    }

    /// The configured budgets.
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }

    /// Shared access to the wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped stream.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn typed(op: &'static str, budget: Option<Duration>, err: io::Error) -> io::Error {
        if is_timeout(&err) {
            let ms = budget.map(|d| d.as_millis() as u64).unwrap_or(0);
            io::Error::new(io::ErrorKind::TimedOut, NetError::TimedOut { op, ms })
        } else {
            err
        }
    }
}

impl<S: Read> Read for DeadlineStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner
            .read(buf)
            .map_err(|e| Self::typed("read", self.deadline.read, e))
    }
}

impl<S: Write> Write for DeadlineStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner
            .write(buf)
            .map_err(|e| Self::typed("write", self.deadline.write, e))
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner
            .flush()
            .map_err(|e| Self::typed("write", self.deadline.write, e))
    }
}

/// Newline-delimited request reader with a hard byte cap and cumulative
/// per-line deadlines.
///
/// This replaces `BufReader::read_line` on hostile-facing connections:
///
/// * a line longer than `limit` is rejected with [`NetError::TooLarge`]
///   *before* being buffered whole — the reader stops at the cap;
/// * a peer that trickles bytes without ever finishing a line (slow-loris)
///   is cut off once the line has been in flight longer than
///   `request_deadline`, even though each individual byte arrived within
///   the socket timeout;
/// * a peer that connects and sends nothing is cut off after
///   `idle_deadline` (the stall timeout), allowing keep-alive clients a
///   longer leash between requests than within one.
///
/// The underlying stream's socket read timeout should be set (via
/// [`Deadline`]) to at most `request_deadline` so the cumulative checks run.
#[derive(Debug)]
pub struct BoundedLineReader<R> {
    inner: R,
    pending: Vec<u8>,
    /// Prefix of `pending` already known to be newline-free, so each new
    /// chunk is scanned exactly once.
    scanned: usize,
    limit: usize,
    request_deadline: Option<Duration>,
    idle_deadline: Option<Duration>,
}

impl<R: Read> BoundedLineReader<R> {
    /// A reader with a byte cap and no deadlines (trusted local streams).
    pub fn new(inner: R, limit: usize) -> Self {
        BoundedLineReader {
            inner,
            pending: Vec::new(),
            scanned: 0,
            limit,
            request_deadline: None,
            idle_deadline: None,
        }
    }

    /// A reader with a byte cap, a cumulative per-line deadline, and an
    /// idle deadline between lines. `None` disables the respective check.
    pub fn with_deadlines(
        inner: R,
        limit: usize,
        request_deadline: Option<Duration>,
        idle_deadline: Option<Duration>,
    ) -> Self {
        BoundedLineReader {
            inner,
            pending: Vec::new(),
            scanned: 0,
            limit,
            request_deadline,
            idle_deadline,
        }
    }

    /// Mutable access to the wrapped stream (to write replies on a
    /// bidirectional connection).
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Next line without its trailing `\n` (and `\r`, if any), decoded
    /// lossily. `Ok(None)` on clean EOF at a line boundary; EOF mid-line
    /// yields the partial line first (matching `read_line` semantics).
    pub fn next_line(&mut self) -> Result<Option<String>, NetError> {
        let started = Instant::now();
        loop {
            if let Some(rel) = self.pending[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
            {
                let pos = self.scanned + rel;
                let mut end = pos;
                if end > 0 && self.pending[end - 1] == b'\r' {
                    end -= 1;
                }
                let line = String::from_utf8_lossy(&self.pending[..end]).into_owned();
                self.pending.drain(..=pos);
                self.scanned = 0;
                return Ok(Some(line));
            }
            self.scanned = self.pending.len();
            if self.pending.len() > self.limit {
                return Err(NetError::TooLarge { limit: self.limit });
            }
            if let Some(budget) = self.request_deadline {
                if !self.pending.is_empty() && started.elapsed() > budget {
                    return Err(NetError::TimedOut {
                        op: "request",
                        ms: budget.as_millis() as u64,
                    });
                }
            }
            let mut chunk = [0u8; 4096];
            // Never buffer more than one cap's worth past the newline scan.
            let want = chunk
                .len()
                .min(self.limit + 1 - self.pending.len().min(self.limit));
            match self.inner.read(&mut chunk[..want.max(1)]) {
                Ok(0) => {
                    if self.pending.is_empty() {
                        return Ok(None);
                    }
                    let line = String::from_utf8_lossy(&self.pending).into_owned();
                    self.pending.clear();
                    self.scanned = 0;
                    return Ok(Some(line));
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(err) if is_timeout(&err) => {
                    // A socket-timeout tick: decide which budget it counts
                    // against. Mid-line silence is a stalled request; silence
                    // with no bytes at all is an idle connection.
                    if !self.pending.is_empty() {
                        let ms = self
                            .request_deadline
                            .map(|d| d.as_millis() as u64)
                            .unwrap_or(0);
                        return Err(NetError::TimedOut { op: "request", ms });
                    }
                    match self.idle_deadline {
                        Some(idle) if started.elapsed() < idle => continue,
                        _ => {
                            let ms = self
                                .idle_deadline
                                .map(|d| d.as_millis() as u64)
                                .unwrap_or(0);
                            return Err(NetError::TimedOut { op: "idle", ms });
                        }
                    }
                }
                Err(err) => return Err(NetError::Io(err.to_string())),
            }
        }
    }
}

/// Transport-level fault kinds injected by [`ChaosSocket`]. All are
/// deterministic in `(seed, operation index | byte offset)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Split every `period`-th write, delivering only a prefix. Benign under
    /// `write_all` loops; flushes out short-write handling bugs.
    PartialWrite {
        /// Every how many write calls the short write fires.
        period: u64,
    },
    /// Sleep `ms` before every `period`-th read — a stalling peer. Benign
    /// while `ms` stays under the reader's deadline.
    StallRead {
        /// Every how many read calls the stall fires.
        period: u64,
        /// Stall length in milliseconds.
        ms: u64,
    },
    /// Fail every write after `bytes` total bytes have been forwarded —
    /// a peer dying mid-frame. The final write before the cut delivers a
    /// prefix, so frames are torn, not cleanly truncated.
    DisconnectAfter {
        /// Total byte budget before the injected disconnect.
        bytes: u64,
    },
    /// XOR a seed-derived non-zero mask into every `period`-th byte written.
    /// The SYNDIST frame checksum is expected to catch this downstream.
    CorruptWrite {
        /// Every how many bytes the corruption fires.
        period: u64,
    },
}

const TAG_PARTIAL: u64 = 0x11;
const TAG_STALL: u64 = 0x12;
const TAG_CORRUPT: u64 = 0x13;

/// A seeded set of transport faults, mirroring [`crate::chaos::ChaosPlan`]
/// for the record layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetChaosPlan {
    /// Seed for all fault positions and corruption masks.
    pub seed: u64,
    /// Faults to inject.
    pub faults: Vec<NetFault>,
}

impl NetChaosPlan {
    /// No faults; [`ChaosSocket`] degenerates to a passthrough.
    pub fn noop(seed: u64) -> Self {
        NetChaosPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Recoverable faults only: short writes and sub-deadline stalls.
    /// A correct peer produces byte-identical results under this plan.
    pub fn benign(seed: u64) -> Self {
        NetChaosPlan {
            seed,
            faults: vec![
                NetFault::PartialWrite { period: 3 },
                NetFault::StallRead { period: 64, ms: 2 },
            ],
        }
    }

    /// Corrupting faults: flipped bytes on the wire (plus short writes).
    /// The peer must *detect* these — checksum mismatch, typed error —
    /// never absorb them silently.
    pub fn corrupting(seed: u64) -> Self {
        NetChaosPlan {
            seed,
            faults: vec![
                NetFault::PartialWrite { period: 5 },
                NetFault::CorruptWrite { period: 128 },
            ],
        }
    }

    /// The same fault set under a connection-specific seed, so each
    /// connection faults at different, still-deterministic positions.
    pub fn reseeded(&self, salt: u64) -> Self {
        NetChaosPlan {
            seed: mix64(self.seed ^ salt),
            faults: self.faults.clone(),
        }
    }
}

/// Tally of injected transport faults, for assertions in drills.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetInjectionLog {
    /// Writes shortened by [`NetFault::PartialWrite`].
    pub partial_writes: u64,
    /// Reads delayed by [`NetFault::StallRead`].
    pub stalls: u64,
    /// Bytes flipped by [`NetFault::CorruptWrite`].
    pub corrupted_bytes: u64,
    /// Whether [`NetFault::DisconnectAfter`] has fired.
    pub disconnected: bool,
}

impl NetInjectionLog {
    /// Whether anything was injected at all.
    pub fn any(&self) -> bool {
        *self != NetInjectionLog::default()
    }
}

/// Deterministic transport-fault injector over any stream, the socket-layer
/// sibling of [`crate::chaos::ChaosReader`]. Wrap the write half, the read
/// half, or both; fault positions derive from `(seed, op index)` and
/// `(seed, byte offset)` via splitmix64, so a run replays exactly.
#[derive(Debug)]
pub struct ChaosSocket<S> {
    inner: S,
    plan: NetChaosPlan,
    reads: u64,
    writes: u64,
    bytes_written: u64,
    log: NetInjectionLog,
}

impl<S> ChaosSocket<S> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: S, plan: NetChaosPlan) -> Self {
        ChaosSocket {
            inner,
            plan,
            reads: 0,
            writes: 0,
            bytes_written: 0,
            log: NetInjectionLog::default(),
        }
    }

    /// What has been injected so far.
    pub fn log(&self) -> NetInjectionLog {
        self.log
    }

    /// Unwrap.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn disconnect_budget(&self) -> Option<u64> {
        self.plan.faults.iter().find_map(|f| match f {
            NetFault::DisconnectAfter { bytes } => Some(*bytes),
            _ => None,
        })
    }
}

impl<S: Read> Read for ChaosSocket<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let index = self.reads;
        self.reads += 1;
        for fault in &self.plan.faults {
            if let NetFault::StallRead { period, ms } = fault {
                if hits(self.plan.seed, TAG_STALL, *period, index) {
                    std::thread::sleep(Duration::from_millis(*ms));
                    self.log.stalls += 1;
                }
            }
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for ChaosSocket<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let index = self.writes;
        self.writes += 1;

        let mut len = buf.len();
        if let Some(budget) = self.disconnect_budget() {
            let allowed = budget.saturating_sub(self.bytes_written);
            if allowed == 0 {
                self.log.disconnected = true;
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "chaos: injected mid-stream disconnect",
                ));
            }
            len = len.min(allowed as usize);
        }
        for fault in &self.plan.faults {
            if let NetFault::PartialWrite { period } = fault {
                if len > 1 && hits(self.plan.seed, TAG_PARTIAL, *period, index) {
                    len = (len / 2).max(1);
                    self.log.partial_writes += 1;
                }
            }
        }

        let corrupt_period = self.plan.faults.iter().find_map(|f| match f {
            NetFault::CorruptWrite { period } => Some((*period).max(1)),
            _ => None,
        });
        let written = if let Some(period) = corrupt_period {
            let phase = mix64(self.plan.seed ^ TAG_CORRUPT) % period;
            let mut scratch = buf[..len].to_vec();
            for (i, byte) in scratch.iter_mut().enumerate() {
                let offset = self.bytes_written + i as u64;
                if offset % period == phase {
                    let mask = (mix64(self.plan.seed ^ offset) % 255 + 1) as u8;
                    *byte ^= mask;
                    self.log.corrupted_bytes += 1;
                }
            }
            self.inner.write(&scratch)?
        } else {
            self.inner.write(&buf[..len])?
        };
        self.bytes_written += written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Jittered exponential backoff for dial/reconnect loops. Delays double from
/// `base` up to `cap`, each scaled by a seed-derived factor in [0.5, 1.5] so
/// a fleet of workers does not dial in lockstep — and so any given seed
/// replays the exact same schedule.
#[derive(Debug, Clone)]
pub struct Backoff {
    seed: u64,
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// A schedule starting at `base`, doubling, capped at `cap`.
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Self {
        Backoff {
            seed,
            base,
            cap,
            attempt: 0,
        }
    }

    /// The default dial schedule: 100 ms doubling to a 5 s ceiling.
    pub fn dial(seed: u64) -> Self {
        Backoff::new(seed, Duration::from_millis(100), Duration::from_secs(5))
    }

    /// Attempts taken so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Next delay in the schedule (advances the attempt counter).
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(20);
        self.attempt += 1;
        let raw = self
            .base
            .saturating_mul(1u32 << exp.min(16))
            .min(self.cap)
            .as_millis() as u64;
        // Jitter factor in [1/2, 3/2], in 1/1024ths: 512..=1536.
        let jitter = 512 + mix64(self.seed ^ u64::from(exp)) % 1025;
        Duration::from_millis((raw * jitter / 1024).max(1))
    }

    /// Restart the schedule after a successful connection.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Dial with retries: call `dial` up to `attempts` times, sleeping a
/// jittered exponential delay between failures and reporting each retry via
/// `on_retry(attempt, delay, error)`. Returns the last error when every
/// attempt fails.
pub fn dial_with_backoff<T, F, C>(
    attempts: u32,
    backoff: &mut Backoff,
    mut dial: F,
    mut on_retry: C,
) -> io::Result<T>
where
    F: FnMut() -> io::Result<T>,
    C: FnMut(u32, Duration, &io::Error),
{
    let attempts = attempts.max(1);
    let mut last = None;
    for attempt in 1..=attempts {
        match dial() {
            Ok(conn) => return Ok(conn),
            Err(err) => {
                if attempt < attempts {
                    let delay = backoff.next_delay();
                    on_retry(attempt, delay, &err);
                    std::thread::sleep(delay);
                }
                last = Some(err);
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::new(io::ErrorKind::Other, "dial: no attempts made")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that yields `WouldBlock` (socket-timeout style) after its
    /// scripted chunks run out.
    struct TimeoutTail {
        chunks: Vec<Vec<u8>>,
    }

    impl Read for TimeoutTail {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.chunks.first_mut() {
                Some(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    chunk.drain(..n);
                    if chunk.is_empty() {
                        self.chunks.remove(0);
                    }
                    Ok(n)
                }
                None => Err(io::Error::new(io::ErrorKind::WouldBlock, "timed out")),
            }
        }
    }

    #[test]
    fn deadline_stream_types_timeouts() {
        let tail = TimeoutTail { chunks: vec![] };
        let mut stream = DeadlineStream::wrap(tail, Deadline::from_millis(250));
        let err = stream.read(&mut [0u8; 8]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(err.to_string(), "read deadline exceeded after 250ms");
    }

    #[test]
    fn deadline_stream_passes_other_errors_through() {
        struct Broken;
        impl Read for Broken {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
            }
        }
        let mut stream = DeadlineStream::wrap(Broken, Deadline::from_millis(250));
        let err = stream.read(&mut [0u8; 8]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn bounded_reader_splits_lines_across_chunks() {
        let tail = TimeoutTail {
            chunks: vec![b"pi".to_vec(), b"ng\nsta".to_vec(), b"ts\r\n".to_vec()],
        };
        let mut lines = BoundedLineReader::new(tail, 64);
        assert_eq!(lines.next_line().unwrap().as_deref(), Some("ping"));
        assert_eq!(lines.next_line().unwrap().as_deref(), Some("stats"));
    }

    #[test]
    fn bounded_reader_handles_eof_with_and_without_newline() {
        let mut lines = BoundedLineReader::new(Cursor::new(b"ping\n".to_vec()), 64);
        assert_eq!(lines.next_line().unwrap().as_deref(), Some("ping"));
        assert_eq!(lines.next_line().unwrap(), None);

        let mut partial = BoundedLineReader::new(Cursor::new(b"tail".to_vec()), 64);
        assert_eq!(partial.next_line().unwrap().as_deref(), Some("tail"));
        assert_eq!(partial.next_line().unwrap(), None);
    }

    #[test]
    fn bounded_reader_rejects_oversized_lines_without_buffering_them() {
        let huge = vec![b'x'; 1 << 20];
        let mut lines = BoundedLineReader::new(Cursor::new(huge), 1024);
        match lines.next_line() {
            Err(NetError::TooLarge { limit: 1024 }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // The reader stopped at the cap instead of slurping the megabyte.
        assert!(lines.pending.len() <= 1024 + 4096 + 1);
    }

    #[test]
    fn bounded_reader_times_out_a_stalled_request() {
        let tail = TimeoutTail {
            chunks: vec![b"par".to_vec()],
        };
        let mut lines = BoundedLineReader::with_deadlines(
            tail,
            64,
            Some(Duration::from_millis(200)),
            Some(Duration::from_millis(400)),
        );
        match lines.next_line() {
            Err(NetError::TimedOut {
                op: "request",
                ms: 200,
            }) => {}
            other => panic!("expected request timeout, got {other:?}"),
        }
    }

    #[test]
    fn bounded_reader_times_out_an_idle_connection() {
        let tail = TimeoutTail { chunks: vec![] };
        let mut lines = BoundedLineReader::with_deadlines(
            tail,
            64,
            Some(Duration::from_millis(5)),
            Some(Duration::from_millis(20)),
        );
        let started = Instant::now();
        match lines.next_line() {
            Err(NetError::TimedOut { op: "idle", ms: 20 }) => {}
            other => panic!("expected idle timeout, got {other:?}"),
        }
        // The scripted reader times out instantly, so the loop spins until
        // the idle budget elapses — proving the cumulative check, not the
        // socket timeout, fired.
        assert!(started.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn net_error_display_is_stable() {
        assert_eq!(
            NetError::TimedOut {
                op: "request",
                ms: 300
            }
            .to_string(),
            "request deadline exceeded after 300ms"
        );
        assert_eq!(
            NetError::TooLarge { limit: 65536 }.to_string(),
            "request exceeds the 65536-byte limit"
        );
    }

    fn drive_writes(plan: NetChaosPlan, payload: &[u8]) -> (Vec<u8>, NetInjectionLog, bool) {
        let mut socket = ChaosSocket::new(Vec::new(), plan);
        let mut wrote_all = true;
        let mut offset = 0;
        while offset < payload.len() {
            let step = (payload.len() - offset).min(97);
            match socket.write(&payload[offset..offset + step]) {
                Ok(n) => offset += n,
                Err(_) => {
                    wrote_all = false;
                    break;
                }
            }
        }
        let log = socket.log();
        (socket.into_inner(), log, wrote_all)
    }

    #[test]
    fn chaos_socket_is_deterministic() {
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let plan = NetChaosPlan::corrupting(42);
        let (a, log_a, _) = drive_writes(plan.clone(), &payload);
        let (b, log_b, _) = drive_writes(plan, &payload);
        assert_eq!(a, b);
        assert_eq!(log_a, log_b);
        assert!(log_a.corrupted_bytes > 0, "corruption plan never fired");
        assert_ne!(a, payload, "corrupting plan left the bytes untouched");
    }

    #[test]
    fn benign_chaos_preserves_bytes_under_write_all_loops() {
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 7 % 256) as u8).collect();
        let (out, log, wrote_all) = drive_writes(NetChaosPlan::benign(7), &payload);
        assert!(wrote_all);
        assert_eq!(out, payload, "benign plan must not alter delivered bytes");
        assert!(log.partial_writes > 0, "partial-write fault never fired");
    }

    #[test]
    fn reseeded_plans_fault_at_different_positions() {
        let plan = NetChaosPlan::corrupting(42);
        assert_ne!(plan.reseeded(1).seed, plan.reseeded(2).seed);
        assert_eq!(plan.reseeded(1), plan.reseeded(1));
    }

    #[test]
    fn chaos_socket_disconnects_mid_stream() {
        let plan = NetChaosPlan {
            seed: 3,
            faults: vec![NetFault::DisconnectAfter { bytes: 100 }],
        };
        let payload = vec![0xabu8; 256];
        let (out, log, wrote_all) = drive_writes(plan, &payload);
        assert!(!wrote_all, "disconnect fault never fired");
        assert!(log.disconnected);
        assert_eq!(
            out.len(),
            100,
            "disconnect must tear mid-write, not skip it"
        );
    }

    #[test]
    fn corrupted_frames_fail_the_checksum() {
        let payload = vec![0x5au8; 600];
        let mut socket = ChaosSocket::new(Vec::new(), NetChaosPlan::corrupting(9));
        crate::frame::write_frame(&mut socket, 1, &payload).unwrap();
        assert!(socket.log().corrupted_bytes > 0);
        let bytes = socket.into_inner();
        match crate::frame::read_frame(&mut Cursor::new(bytes), crate::frame::MAX_FRAME_PAYLOAD) {
            Err(crate::frame::FrameError::ChecksumMismatch { .. })
            | Err(crate::frame::FrameError::BadMagic)
            | Err(crate::frame::FrameError::UnsupportedVersion(_))
            | Err(crate::frame::FrameError::Oversized { .. }) => {}
            other => panic!("corrupted frame must fail typed, got {other:?}"),
        }
    }

    #[test]
    fn backoff_is_deterministic_and_grows_to_the_cap() {
        let mut a = Backoff::new(11, Duration::from_millis(100), Duration::from_secs(5));
        let mut b = Backoff::new(11, Duration::from_millis(100), Duration::from_secs(5));
        let delays: Vec<Duration> = (0..8).map(|_| a.next_delay()).collect();
        let replay: Vec<Duration> = (0..8).map(|_| b.next_delay()).collect();
        assert_eq!(delays, replay);
        for (i, d) in delays.iter().enumerate() {
            let nominal = Duration::from_millis(100 << i.min(6)).min(Duration::from_secs(5));
            assert!(*d >= nominal / 2, "delay {i} below jitter floor: {d:?}");
            assert!(
                *d <= nominal * 3 / 2,
                "delay {i} above jitter ceiling: {d:?}"
            );
        }
        assert!(
            delays[7] >= Duration::from_millis(2500),
            "cap never approached"
        );
    }

    #[test]
    fn backoff_reset_restarts_the_schedule() {
        let mut backoff = Backoff::dial(5);
        let first = backoff.next_delay();
        backoff.next_delay();
        backoff.reset();
        assert_eq!(backoff.attempts(), 0);
        assert_eq!(backoff.next_delay(), first);
    }

    #[test]
    fn dial_with_backoff_retries_until_success() {
        let mut calls = 0;
        let mut retries = Vec::new();
        let result = dial_with_backoff(
            5,
            &mut Backoff::new(1, Duration::from_millis(1), Duration::from_millis(2)),
            || {
                calls += 1;
                if calls < 3 {
                    Err(io::Error::new(io::ErrorKind::ConnectionRefused, "nope"))
                } else {
                    Ok(calls)
                }
            },
            |attempt, _, _| retries.push(attempt),
        );
        assert_eq!(result.unwrap(), 3);
        assert_eq!(retries, vec![1, 2]);
    }

    #[test]
    fn dial_with_backoff_surfaces_the_last_error() {
        let err = dial_with_backoff(
            3,
            &mut Backoff::new(1, Duration::from_millis(1), Duration::from_millis(2)),
            || -> io::Result<()> {
                Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "still down",
                ))
            },
            |_, _, _| {},
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn tcp_deadline_fires_on_a_silent_peer() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // The peer connects and stays silent.
        let peer = std::net::TcpStream::connect(addr).unwrap();
        let (conn, _) = listener.accept().unwrap();
        let mut stream = DeadlineStream::new(
            conn,
            Deadline {
                read: Some(Duration::from_millis(50)),
                write: None,
            },
        )
        .unwrap();
        let started = Instant::now();
        let err = stream.read(&mut [0u8; 16]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(started.elapsed() < Duration::from_secs(5), "read blocked");
        drop(peer);
    }
}
