//! UDP header view and representation (RFC 768).
//!
//! The study focuses on TCP ("usage of TCP far dominates in practice",
//! §3.1), but real telescope captures carry UDP probes too — DNS/NTP/SSDP
//! amplification-scan traffic. The wire layer supports them so capture
//! consumers can classify rather than drop.

use crate::checksum::{self, Checksum};
use crate::ipv4::Address;
use crate::{Result, WireError};

/// Length in bytes of a UDP header.
pub const HEADER_LEN: usize = 8;

/// Zero-copy view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpPacket<T> {
    /// Wrap a buffer without validating it.
    pub const fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap a buffer, validating the length invariants.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        let data = packet.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = packet.len() as usize;
        if len < HEADER_LEN || len > data.len() {
            return Err(WireError::Malformed);
        }
        Ok(packet)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[0..2].try_into().unwrap())
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[2..4].try_into().unwrap())
    }

    /// Datagram length (header + payload).
    pub fn len(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[4..6].try_into().unwrap())
    }

    /// True when the datagram carries no payload.
    pub fn is_empty(&self) -> bool {
        self.len() as usize == HEADER_LEN
    }

    /// Raw checksum field (0 = checksum not computed, legal in UDP/IPv4).
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[6..8].try_into().unwrap())
    }

    /// The payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len() as usize]
    }

    /// Verify the checksum over the pseudo-header and datagram.
    /// A zero checksum means "not computed" and verifies trivially.
    pub fn verify_checksum(&self, src: Address, dst: Address) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let data = &self.buffer.as_ref()[..self.len() as usize];
        let mut acc = checksum::pseudo_header_sum(src.0, dst.0, 17, data.len() as u16);
        acc.add_bytes(data);
        acc.value() == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpPacket<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, value: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, value: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the datagram length.
    pub fn set_len(&mut self, value: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&value.to_be_bytes());
    }

    /// Compute and write the checksum (with the RFC 768 zero-avoidance rule:
    /// a computed value of zero transmits as 0xFFFF).
    pub fn fill_checksum(&mut self, src: Address, dst: Address) {
        self.buffer.as_mut()[6..8].copy_from_slice(&[0, 0]);
        let len = self.len() as usize;
        let data = &self.buffer.as_ref()[..len];
        let mut acc: Checksum = checksum::pseudo_header_sum(src.0, dst.0, 17, len as u16);
        acc.add_bytes(data);
        let ck = match acc.value() {
            0 => 0xffff,
            v => v,
        };
        self.buffer.as_mut()[6..8].copy_from_slice(&ck.to_be_bytes());
    }
}

/// Parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl UdpRepr {
    /// Parse from a checked view.
    pub fn parse<T: AsRef<[u8]>>(packet: &UdpPacket<T>) -> Result<Self> {
        Ok(Self {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            payload_len: packet.len() as usize - HEADER_LEN,
        })
    }

    /// Emitted length.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit the header (payload must already be in place after byte 8) and
    /// fill the checksum.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(
        &self,
        packet: &mut UdpPacket<T>,
        src: Address,
        dst: Address,
    ) {
        packet.set_src_port(self.src_port);
        packet.set_dst_port(self.dst_port);
        packet.set_len((HEADER_LEN + self.payload_len) as u16);
        packet.fill_checksum(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Address = Address::new(198, 51, 100, 9);
    const DST: Address = Address::new(192, 0, 2, 53);

    #[test]
    fn emit_parse_round_trip() {
        let repr = UdpRepr {
            src_port: 5353,
            dst_port: 53,
            payload_len: 12,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        buf[HEADER_LEN..].copy_from_slice(b"dns-payload!");
        repr.emit(&mut UdpPacket::new_unchecked(&mut buf[..]), SRC, DST);
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
        assert_eq!(UdpRepr::parse(&packet).unwrap(), repr);
        assert_eq!(packet.payload(), b"dns-payload!");
        assert!(!packet.is_empty());
    }

    #[test]
    fn checksum_binds_content_and_addresses() {
        let repr = UdpRepr {
            src_port: 123,
            dst_port: 123,
            payload_len: 4,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut UdpPacket::new_unchecked(&mut buf[..]), SRC, DST);
        let mut corrupted = buf.clone();
        corrupted[HEADER_LEN] ^= 1;
        let packet = UdpPacket::new_checked(&corrupted[..]).unwrap();
        assert!(!packet.verify_checksum(SRC, DST));
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(!packet.verify_checksum(SRC, Address::new(192, 0, 2, 54)));
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let mut buf = [0u8; HEADER_LEN];
        let mut packet = UdpPacket::new_unchecked(&mut buf[..]);
        packet.set_src_port(1);
        packet.set_dst_port(2);
        packet.set_len(HEADER_LEN as u16);
        // checksum bytes stay zero: "not computed".
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
        assert!(packet.is_empty());
    }

    #[test]
    fn length_invariants_enforced() {
        assert_eq!(
            UdpPacket::new_checked(&[0u8; 4][..]).unwrap_err(),
            WireError::Truncated
        );
        // Length field smaller than the header.
        let mut buf = [0u8; HEADER_LEN];
        buf[5] = 4;
        assert_eq!(
            UdpPacket::new_checked(&buf[..]).unwrap_err(),
            WireError::Malformed
        );
        // Length field beyond the buffer.
        buf[5] = 40;
        assert_eq!(
            UdpPacket::new_checked(&buf[..]).unwrap_err(),
            WireError::Malformed
        );
    }
}
