//! The Internet checksum (RFC 1071) and helpers shared by IPv4 and TCP.
//!
//! The checksum is the one's-complement of the one's-complement sum of all
//! 16-bit words in the covered data. Both IPv4 headers and TCP segments
//! (together with a pseudo-header) use it.

/// Incremental RFC 1071 checksum accumulator.
///
/// Feed data with [`Checksum::add_bytes`] / [`Checksum::add_u16`] and finish
/// with [`Checksum::value`]. The accumulator is order-insensitive for aligned
/// 16-bit words, which is what the pseudo-header computation relies on.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Create an accumulator with an initial sum of zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a single big-endian 16-bit word.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Add a 32-bit value as two 16-bit words (used for addresses).
    pub fn add_u32(&mut self, value: u32) {
        self.add_u16((value >> 16) as u16);
        self.add_u16((value & 0xffff) as u16);
    }

    /// Add a byte slice, padding an odd trailing byte with zero as per RFC 1071.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.add_u16(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.add_u16(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Fold carries and return the one's-complement checksum.
    pub fn value(self) -> u16 {
        let mut sum = self.sum;
        while sum > 0xffff {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Compute the checksum of a contiguous buffer in one call.
pub fn checksum(data: &[u8]) -> u16 {
    let mut acc = Checksum::new();
    acc.add_bytes(data);
    acc.value()
}

/// Verify a buffer whose checksum field is included in the data.
///
/// A correct RFC 1071 checksum makes the folded sum of the full buffer equal
/// `0xffff` (i.e. `checksum(..) == 0`).
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// Compute the TCP/UDP pseudo-header partial sum for IPv4.
///
/// The pseudo-header covers source address, destination address, a zero byte,
/// the protocol number, and the transport segment length.
pub fn pseudo_header_sum(src: u32, dst: u32, protocol: u8, segment_len: u16) -> Checksum {
    let mut acc = Checksum::new();
    acc.add_u32(src);
    acc.add_u32(dst);
    acc.add_u16(u16::from(protocol));
    acc.add_u16(segment_len);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_reference_example() {
        // The classic worked example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold -> 0xddf2
        assert_eq!(checksum(&data), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), !0xab00u16);
        assert_eq!(checksum(&[0xab, 0x00]), !0xab00u16);
    }

    #[test]
    fn empty_buffer_checksums_to_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_accepts_correctly_checksummed_data() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x28, 0xd4, 0x31, 0x00, 0x00, 0x40, 0x06];
        data.extend_from_slice(&[0x00, 0x00]); // checksum placeholder
        data.extend_from_slice(&[0xc0, 0xa8, 0x01, 0x01, 0xc0, 0xa8, 0x01, 0x02]);
        let ck = checksum(&data);
        data[10] = (ck >> 8) as u8;
        data[11] = (ck & 0xff) as u8;
        assert!(verify(&data));
        // Corrupt one byte and it must fail.
        data[0] ^= 0x10;
        assert!(!verify(&data));
    }

    #[test]
    fn accumulator_is_chunk_order_insensitive_for_aligned_words() {
        let a = [0x12u8, 0x34, 0x56, 0x78];
        let b = [0x9au8, 0xbc, 0xde, 0xf0];
        let mut acc1 = Checksum::new();
        acc1.add_bytes(&a);
        acc1.add_bytes(&b);
        let mut acc2 = Checksum::new();
        acc2.add_bytes(&b);
        acc2.add_bytes(&a);
        assert_eq!(acc1.value(), acc2.value());
    }

    #[test]
    fn pseudo_header_matches_manual_sum() {
        let acc = pseudo_header_sum(0xc0a80101, 0xc0a80102, 6, 20);
        let mut manual = Checksum::new();
        for w in [0xc0a8u16, 0x0101, 0xc0a8, 0x0102, 0x0006, 20] {
            manual.add_u16(w);
        }
        assert_eq!(acc.value(), manual.value());
    }
}
