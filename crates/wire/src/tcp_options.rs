//! TCP option parsing and emission.
//!
//! Stateless high-speed scanners send bare 20-byte SYNs, but stock network
//! stacks (and NMap) attach options — MSS, window scale, SACK-permitted,
//! timestamps. Telescope pcaps therefore contain optioned SYNs, and option
//! *signatures* are a classic passive-fingerprinting side channel (p0f):
//! the option order and values differ per OS and per tool. This module
//! parses and emits the option list so capture consumers can inspect it.

use crate::{Result, WireError};

/// A single TCP option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpOption {
    /// End of option list (kind 0). Terminates parsing.
    EndOfList,
    /// No-operation padding (kind 1).
    Nop,
    /// Maximum segment size (kind 2).
    Mss(u16),
    /// Window scale shift (kind 3).
    WindowScale(u8),
    /// SACK permitted (kind 4).
    SackPermitted,
    /// Timestamps: (TSval, TSecr) (kind 8).
    Timestamp(u32, u32),
    /// Any other option, with kind and payload length (payload not retained).
    Unknown {
        /// Option kind byte.
        kind: u8,
        /// Payload length (length byte minus 2).
        len: u8,
    },
}

impl TcpOption {
    /// Emitted length in bytes.
    pub const fn wire_len(&self) -> usize {
        match self {
            TcpOption::EndOfList | TcpOption::Nop => 1,
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Timestamp(..) => 10,
            TcpOption::Unknown { len, .. } => 2 + *len as usize,
        }
    }
}

/// Parse the option bytes of a TCP header (the region between byte 20 and
/// the data offset). Stops at `EndOfList` or the end of the buffer.
pub fn parse_options(mut data: &[u8]) -> Result<Vec<TcpOption>> {
    let mut options = Vec::new();
    while !data.is_empty() {
        match data[0] {
            0 => {
                options.push(TcpOption::EndOfList);
                break;
            }
            1 => {
                options.push(TcpOption::Nop);
                data = &data[1..];
            }
            kind => {
                if data.len() < 2 {
                    return Err(WireError::Truncated);
                }
                let len = data[1] as usize;
                if len < 2 || len > data.len() {
                    return Err(WireError::Malformed);
                }
                let body = &data[2..len];
                let option = match (kind, body.len()) {
                    (2, 2) => TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])),
                    (3, 1) => TcpOption::WindowScale(body[0]),
                    (4, 0) => TcpOption::SackPermitted,
                    (8, 8) => TcpOption::Timestamp(
                        u32::from_be_bytes(body[0..4].try_into().unwrap()),
                        u32::from_be_bytes(body[4..8].try_into().unwrap()),
                    ),
                    _ => TcpOption::Unknown {
                        kind,
                        len: (len - 2) as u8,
                    },
                };
                options.push(option);
                data = &data[len..];
            }
        }
    }
    Ok(options)
}

/// Emit options into a buffer, returning the bytes written. The caller is
/// responsible for padding to a 4-byte boundary (usually with `Nop`s) and
/// for setting the TCP data offset. `Unknown` options emit a zero payload.
pub fn emit_options(options: &[TcpOption], buf: &mut [u8]) -> Result<usize> {
    let needed: usize = options.iter().map(|o| o.wire_len()).sum();
    if buf.len() < needed {
        return Err(WireError::Truncated);
    }
    let mut at = 0usize;
    for option in options {
        match option {
            TcpOption::EndOfList => {
                buf[at] = 0;
                at += 1;
            }
            TcpOption::Nop => {
                buf[at] = 1;
                at += 1;
            }
            TcpOption::Mss(mss) => {
                buf[at] = 2;
                buf[at + 1] = 4;
                buf[at + 2..at + 4].copy_from_slice(&mss.to_be_bytes());
                at += 4;
            }
            TcpOption::WindowScale(shift) => {
                buf[at] = 3;
                buf[at + 1] = 3;
                buf[at + 2] = *shift;
                at += 3;
            }
            TcpOption::SackPermitted => {
                buf[at] = 4;
                buf[at + 1] = 2;
                at += 2;
            }
            TcpOption::Timestamp(tsval, tsecr) => {
                buf[at] = 8;
                buf[at + 1] = 10;
                buf[at + 2..at + 6].copy_from_slice(&tsval.to_be_bytes());
                buf[at + 6..at + 10].copy_from_slice(&tsecr.to_be_bytes());
                at += 10;
            }
            TcpOption::Unknown { kind, len } => {
                buf[at] = *kind;
                buf[at + 1] = len + 2;
                for b in buf[at + 2..at + 2 + *len as usize].iter_mut() {
                    *b = 0;
                }
                at += 2 + *len as usize;
            }
        }
    }
    Ok(at)
}

/// A p0f-style option signature: the sequence of option kinds, used to
/// distinguish OS stacks and tools (e.g. Linux SYNs lead with
/// `MSS,SACK,TS,NOP,WS`; bare scanner SYNs have no options at all).
pub fn option_signature(options: &[TcpOption]) -> String {
    options
        .iter()
        .map(|o| match o {
            TcpOption::EndOfList => "EOL".to_string(),
            TcpOption::Nop => "N".to_string(),
            TcpOption::Mss(_) => "M".to_string(),
            TcpOption::WindowScale(_) => "W".to_string(),
            TcpOption::SackPermitted => "S".to_string(),
            TcpOption::Timestamp(..) => "T".to_string(),
            TcpOption::Unknown { kind, .. } => format!("?{kind}"),
        })
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A typical Linux SYN option block: MSS, SACK, Timestamp, NOP, WScale.
    fn linux_syn_options() -> Vec<TcpOption> {
        vec![
            TcpOption::Mss(1460),
            TcpOption::SackPermitted,
            TcpOption::Timestamp(0xdead_beef, 0),
            TcpOption::Nop,
            TcpOption::WindowScale(7),
        ]
    }

    #[test]
    fn emit_parse_round_trip() {
        let options = linux_syn_options();
        let mut buf = [0u8; 40];
        let written = emit_options(&options, &mut buf).unwrap();
        assert_eq!(written, 4 + 2 + 10 + 1 + 3);
        let parsed = parse_options(&buf[..written]).unwrap();
        assert_eq!(parsed, options);
    }

    #[test]
    fn signature_matches_p0f_style() {
        assert_eq!(option_signature(&linux_syn_options()), "M,S,T,N,W");
        assert_eq!(option_signature(&[]), "");
    }

    #[test]
    fn end_of_list_terminates() {
        // EOL then garbage: the garbage must be ignored.
        let data = [1u8, 0, 0xff, 0xff];
        let parsed = parse_options(&data).unwrap();
        assert_eq!(parsed, vec![TcpOption::Nop, TcpOption::EndOfList]);
    }

    #[test]
    fn unknown_options_are_preserved_by_kind_and_length() {
        // Kind 30 (MPTCP), length 4.
        let data = [30u8, 4, 0xaa, 0xbb];
        let parsed = parse_options(&data).unwrap();
        assert_eq!(parsed, vec![TcpOption::Unknown { kind: 30, len: 2 }]);
        let mut buf = [0u8; 8];
        let written = emit_options(&parsed, &mut buf).unwrap();
        assert_eq!(written, 4);
        assert_eq!(buf[0], 30);
        assert_eq!(buf[1], 4);
    }

    #[test]
    fn truncated_option_is_an_error() {
        // MSS option claims length 4 but only 3 bytes remain.
        assert_eq!(
            parse_options(&[2u8, 4, 5]).unwrap_err(),
            WireError::Malformed
        );
        // A lone kind byte with no length.
        assert_eq!(parse_options(&[2u8]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn zero_length_option_is_malformed() {
        assert_eq!(
            parse_options(&[2u8, 0, 0]).unwrap_err(),
            WireError::Malformed
        );
        assert_eq!(
            parse_options(&[2u8, 1, 0]).unwrap_err(),
            WireError::Malformed
        );
    }

    #[test]
    fn emit_into_short_buffer_fails_cleanly() {
        let mut buf = [0u8; 3];
        assert_eq!(
            emit_options(&[TcpOption::Mss(1460)], &mut buf).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn odd_size_mss_is_unknown_not_misparsed() {
        // An MSS option with a bogus length parses as Unknown, not as Mss.
        let data = [2u8, 3, 5];
        let parsed = parse_options(&data).unwrap();
        assert_eq!(parsed, vec![TcpOption::Unknown { kind: 2, len: 1 }]);
    }
}
