//! # synscan-wire
//!
//! Sans-I/O wire layer for the `synscan` measurement pipeline.
//!
//! This crate provides zero-copy *views* over byte buffers for the protocols a
//! network telescope sees (Ethernet II, IPv4, TCP), higher-level `Repr`
//! (representation) structs with checked `parse`/`emit`, the classic libpcap
//! file format, and the compact [`probe::ProbeRecord`] used throughout the
//! analysis pipeline.
//!
//! The design follows the smoltcp idiom:
//!
//! * a `Packet<T: AsRef<[u8]>>` wrapper exposes unchecked field accessors over
//!   a borrowed buffer,
//! * `Packet::new_checked` validates length invariants up front,
//! * a plain-old-data `Repr` struct round-trips through `parse`/`emit`,
//! * nothing allocates on the hot path.
//!
//! ```
//! use synscan_wire::{ipv4, tcp, TcpFlags};
//!
//! // Craft a SYN probe the way a scanner would.
//! let repr = ipv4::Ipv4Repr {
//!     src_addr: ipv4::Address::new(198, 51, 100, 7),
//!     dst_addr: ipv4::Address::new(192, 0, 2, 55),
//!     protocol: ipv4::Protocol::Tcp,
//!     ident: 54321,
//!     ttl: 64,
//!     payload_len: tcp::HEADER_LEN,
//! };
//! let tcp_repr = tcp::TcpRepr {
//!     src_port: 44123,
//!     dst_port: 443,
//!     seq_number: 0x1337_beef,
//!     ack_number: 0,
//!     flags: TcpFlags::SYN,
//!     window_len: 65535,
//!     urgent: 0,
//! };
//! let mut buf = vec![0u8; ipv4::HEADER_LEN + tcp::HEADER_LEN];
//! repr.emit(&mut ipv4::Ipv4Packet::new_unchecked(&mut buf[..]));
//! tcp_repr.emit(
//!     &mut tcp::TcpPacket::new_unchecked(&mut buf[ipv4::HEADER_LEN..]),
//!     repr.src_addr,
//!     repr.dst_addr,
//! );
//! let parsed = ipv4::Ipv4Repr::parse(&ipv4::Ipv4Packet::new_checked(&buf[..]).unwrap()).unwrap();
//! assert_eq!(parsed.ident, 54321);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod checksum;
pub mod ethernet;
pub mod frame;
pub mod ingest;
pub mod ipv4;
pub mod net;
pub mod pcap;
pub mod probe;
pub mod stream;
pub mod tcp;
pub mod tcp_options;
pub mod udp;

pub use chaos::{ChaosPlan, ChaosReader, ChaosStream, Fault, InjectionLog};
pub use ethernet::{EtherType, EthernetFrame, EthernetRepr};
pub use frame::{read_frame, write_frame, FrameError, FramedMessage};
pub use ingest::{
    decode_frame, queue_depth, ChecksumPolicy, FrameBatch, GatherOutcome, IngestMode, IngestQueues,
    MappedCapture, MappedPcapStream, MappedStreamState, ParallelIngest, PcapSlice, RawFrame,
    RUNAHEAD_BYTES,
};
pub use ipv4::{Address as Ipv4Address, Ipv4Packet, Ipv4Repr, Protocol};
pub use net::{
    dial_with_backoff, Backoff, BoundedLineReader, ChaosSocket, Deadline, DeadlineStream,
    NetChaosPlan, NetError, NetFault, NetInjectionLog,
};
pub use pcap::{PcapError, PcapReader, PcapRecord, PcapWriter};
pub use probe::{ProbeRecord, SynFrameBuilder};
pub use stream::{
    skip_records, BatchPool, FaultCounters, FaultPolicy, NullSink, RecordSink, RecordStream,
    SliceStream, StreamError, TryRecordStream,
};
pub use tcp::{TcpFlags, TcpPacket, TcpRepr};
pub use tcp_options::{option_signature, parse_options, TcpOption};
pub use udp::{UdpPacket, UdpRepr};

/// Errors produced when interpreting or constructing wire data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header of the protocol.
    Truncated,
    /// A length field is inconsistent with the buffer (e.g. IHL beyond data).
    Malformed,
    /// A checksum did not verify.
    Checksum,
    /// The version or type field identifies a protocol we do not handle.
    Unsupported,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::Malformed => write!(f, "malformed packet"),
            WireError::Checksum => write!(f, "checksum mismatch"),
            WireError::Unsupported => write!(f, "unsupported protocol"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias used across the crate.
pub type Result<T> = core::result::Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_stable() {
        assert_eq!(WireError::Truncated.to_string(), "buffer truncated");
        assert_eq!(WireError::Malformed.to_string(), "malformed packet");
        assert_eq!(WireError::Checksum.to_string(), "checksum mismatch");
        assert_eq!(WireError::Unsupported.to_string(), "unsupported protocol");
    }
}
