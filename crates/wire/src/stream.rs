//! Pull-based, time-ordered, batched record streams.
//!
//! Every layer of the pipeline used to materialize a year's probe stream as
//! one `Vec<ProbeRecord>` before handing it downstream, making peak memory
//! O(year). [`RecordStream`] replaces the slice handoff with a pull
//! interface: a source yields records in timestamp order, a batch at a time,
//! and the consumer never sees more than one batch borrowed at once. The
//! synthesis generator, the pcap importer, and the measurement pipeline all
//! speak this trait, so the whole record path from generator to analysis
//! runs in O(batch) memory (plus whatever the *source* inherently needs —
//! e.g. the generator's time-overlapping campaign buffers).
//!
//! The companion [`RecordSink`] is the push side: emitters that used to
//! append to a caller-owned `Vec` are generic over a sink, so the same
//! emission code can fill a buffer, feed a stream batch, or be drained into
//! [`NullSink`] purely for its deterministic RNG side effects.

use crate::probe::ProbeRecord;

/// Records per batch a well-behaved stream yields: large enough to amortize
/// per-batch overhead (virtual dispatch, channel sends), small enough that a
/// constant number of in-flight batches stays cache- and memory-friendly.
pub const BATCH_RECORDS: usize = 16 * 1024;

/// A pull-based source of time-ordered probe records.
///
/// Contract:
/// * records are yielded in non-decreasing `ts_micros` order across the
///   whole stream (batch boundaries are arbitrary);
/// * each `next_batch` call invalidates the previously returned slice
///   (lending iterator shape — the borrow checker enforces it);
/// * after `None` is returned once, the stream is exhausted for good;
/// * batches are non-empty.
pub trait RecordStream {
    /// Yield the next batch, or `None` when the stream is exhausted.
    fn next_batch(&mut self) -> Option<&[ProbeRecord]>;

    /// Total records this stream will yield, when cheaply known up front
    /// (pre-sizing hint only — never load-bearing).
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// A push-based consumer of probe records.
pub trait RecordSink {
    /// Accept one record.
    fn accept(&mut self, record: ProbeRecord);
}

impl RecordSink for Vec<ProbeRecord> {
    fn accept(&mut self, record: ProbeRecord) {
        self.push(record);
    }
}

/// Discards every record. Used to *replay an emitter for its RNG side
/// effects only* — the synthesis planner advances its shared RNG through
/// this sink so lazily re-run emitters observe the exact same draw sequence.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl RecordSink for NullSink {
    fn accept(&mut self, _record: ProbeRecord) {}
}

/// A [`RecordStream`] over an in-memory, already-sorted slice — the bridge
/// from materialized buffers (benches, tests, the `--materialize` escape
/// hatch) into the streaming pipeline.
#[derive(Debug)]
pub struct SliceStream<'a> {
    records: &'a [ProbeRecord],
    pos: usize,
    batch: usize,
}

impl<'a> SliceStream<'a> {
    /// Stream `records` (must be sorted by `ts_micros`) in
    /// [`BATCH_RECORDS`]-sized batches.
    pub fn new(records: &'a [ProbeRecord]) -> Self {
        Self::with_batch_size(records, BATCH_RECORDS)
    }

    /// As [`SliceStream::new`] with an explicit batch size (tests).
    pub fn with_batch_size(records: &'a [ProbeRecord], batch: usize) -> Self {
        Self {
            records,
            pos: 0,
            batch: batch.max(1),
        }
    }
}

impl RecordStream for SliceStream<'_> {
    fn next_batch(&mut self) -> Option<&[ProbeRecord]> {
        if self.pos >= self.records.len() {
            return None;
        }
        let end = (self.pos + self.batch).min(self.records.len());
        let out = &self.records[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records.len() as u64)
    }
}

/// Drain a stream into one `Vec` — the explicit materialization point.
/// Everything that "needs the whole year" funnels through here, so grepping
/// for `collect` finds every place the O(batch) guarantee is given up.
pub fn collect(stream: &mut dyn RecordStream) -> Vec<ProbeRecord> {
    let mut records = Vec::with_capacity(stream.len_hint().unwrap_or(0) as usize);
    while let Some(batch) = stream.next_batch() {
        records.extend_from_slice(batch);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;
    use crate::Ipv4Address;

    fn record(ts: u64) -> ProbeRecord {
        ProbeRecord {
            ts_micros: ts,
            src_ip: Ipv4Address(1),
            dst_ip: Ipv4Address(2),
            src_port: 1,
            dst_port: 2,
            seq: 3,
            ip_id: 4,
            ttl: 5,
            flags: TcpFlags::SYN,
            window: 6,
        }
    }

    #[test]
    fn slice_stream_batches_and_collects_losslessly() {
        let records: Vec<ProbeRecord> = (0..10u64).map(record).collect();
        let mut stream = SliceStream::with_batch_size(&records, 3);
        assert_eq!(stream.len_hint(), Some(10));
        let sizes: Vec<usize> =
            std::iter::from_fn(|| stream.next_batch().map(<[_]>::len)).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        assert!(stream.next_batch().is_none(), "exhaustion is terminal");

        let mut stream = SliceStream::with_batch_size(&records, 4);
        assert_eq!(collect(&mut stream), records);
    }

    #[test]
    fn empty_slice_stream_yields_nothing() {
        let mut stream = SliceStream::new(&[]);
        assert!(stream.next_batch().is_none());
        assert_eq!(stream.len_hint(), Some(0));
    }

    #[test]
    fn sinks_accept_records() {
        let mut vec_sink: Vec<ProbeRecord> = Vec::new();
        vec_sink.accept(record(7));
        assert_eq!(vec_sink.len(), 1);
        NullSink.accept(record(8)); // must not panic, must not retain
    }
}
