//! Pull-based, time-ordered, batched record streams.
//!
//! Every layer of the pipeline used to materialize a year's probe stream as
//! one `Vec<ProbeRecord>` before handing it downstream, making peak memory
//! O(year). [`RecordStream`] replaces the slice handoff with a pull
//! interface: a source yields records in timestamp order, a batch at a time,
//! and the consumer never sees more than one batch borrowed at once. The
//! synthesis generator, the pcap importer, and the measurement pipeline all
//! speak this trait, so the whole record path from generator to analysis
//! runs in O(batch) memory (plus whatever the *source* inherently needs —
//! e.g. the generator's time-overlapping campaign buffers).
//!
//! The companion [`RecordSink`] is the push side: emitters that used to
//! append to a caller-owned `Vec` are generic over a sink, so the same
//! emission code can fill a buffer, feed a stream batch, or be drained into
//! [`NullSink`] purely for its deterministic RNG side effects.

use crate::pcap::PcapError;
use crate::probe::ProbeRecord;

/// Records per batch a well-behaved stream yields: large enough to amortize
/// per-batch overhead (virtual dispatch, channel sends), small enough that a
/// constant number of in-flight batches stays cache- and memory-friendly.
pub const BATCH_RECORDS: usize = 16 * 1024;

/// A pull-based source of time-ordered probe records.
///
/// Contract:
/// * records are yielded in non-decreasing `ts_micros` order across the
///   whole stream (batch boundaries are arbitrary);
/// * each `next_batch` call invalidates the previously returned slice
///   (lending iterator shape — the borrow checker enforces it);
/// * after `None` is returned once, the stream is exhausted for good;
/// * batches are non-empty.
pub trait RecordStream {
    /// Yield the next batch, or `None` when the stream is exhausted.
    fn next_batch(&mut self) -> Option<&[ProbeRecord]>;

    /// Total records this stream will yield, when cheaply known up front
    /// (pre-sizing hint only — never load-bearing).
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// What a consumer does when a stream yields a recoverable fault.
///
/// Telescope archives are decayed in practice (torn tails, bitrot, duplicate
/// flushes); the policy decides whether a run is strict, lossy-but-complete,
/// or best-effort-prefix. Whatever the policy drops is tallied in
/// [`FaultCounters`] so no loss is silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Surface the first fault as an error and stop (strict; the default).
    #[default]
    Fail,
    /// Drop faulty records (and duplicates / regressions) and keep going.
    SkipRecord,
    /// Treat the first fault as a clean end of stream, keeping the prefix.
    StopClean,
}

impl core::fmt::Display for FaultPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultPolicy::Fail => write!(f, "fail"),
            FaultPolicy::SkipRecord => write!(f, "skip"),
            FaultPolicy::StopClean => write!(f, "stop"),
        }
    }
}

impl core::str::FromStr for FaultPolicy {
    type Err = String;

    fn from_str(s: &str) -> core::result::Result<Self, Self::Err> {
        match s {
            "fail" => Ok(FaultPolicy::Fail),
            "skip" | "skip-record" => Ok(FaultPolicy::SkipRecord),
            "stop" | "stop-clean" => Ok(FaultPolicy::StopClean),
            other => Err(format!(
                "unknown fault policy {other:?} (expected fail, skip, or stop)"
            )),
        }
    }
}

/// Per-run tally of everything a non-strict [`FaultPolicy`] swallowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(not(synscan_standalone), derive(serde::Serialize, serde::Deserialize))]
pub struct FaultCounters {
    /// Records dropped because they were unparseable or out of order.
    pub records_skipped: u64,
    /// Exact back-to-back duplicate records dropped.
    pub duplicates_dropped: u64,
    /// Capture bytes rendered unusable by skipped faults.
    pub bytes_dropped: u64,
    /// Streams cut short (treated as clean EOF) instead of erroring.
    pub streams_truncated: u64,
}

impl FaultCounters {
    /// Whether any fault was recorded at all.
    pub fn any(&self) -> bool {
        *self != FaultCounters::default()
    }

    /// Fold another tally into this one (shard merge, stream + driver).
    pub fn absorb(&mut self, other: &FaultCounters) {
        self.records_skipped += other.records_skipped;
        self.duplicates_dropped += other.duplicates_dropped;
        self.bytes_dropped += other.bytes_dropped;
        self.streams_truncated += other.streams_truncated;
    }
}

impl core::fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} records skipped, {} duplicates dropped, {} bytes dropped, {} streams truncated",
            self.records_skipped,
            self.duplicates_dropped,
            self.bytes_dropped,
            self.streams_truncated
        )
    }
}

/// A fault surfaced by a fallible record stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The underlying pcap framing broke.
    Pcap(PcapError),
    /// The stream ended mid-flight (injected or real mid-stream EOF).
    Truncated {
        /// Records successfully yielded before the cut.
        records_seen: u64,
    },
    /// The time-order contract was violated.
    Unordered {
        /// Timestamp regressions observed.
        violations: u64,
    },
}

impl core::fmt::Display for StreamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StreamError::Pcap(e) => write!(f, "pcap fault: {e}"),
            StreamError::Truncated { records_seen } => {
                write!(f, "stream truncated after {records_seen} records")
            }
            StreamError::Unordered { violations } => {
                write!(
                    f,
                    "stream violated timestamp order ({violations} regressions)"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl From<PcapError> for StreamError {
    fn from(e: PcapError) -> Self {
        StreamError::Pcap(e)
    }
}

/// The fallible sibling of [`RecordStream`]: same lending-batch contract,
/// but a pull may surface a [`StreamError`] instead of a batch. An error is
/// terminal — callers must not pull again after `Err`.
pub trait TryRecordStream {
    /// Yield the next batch, `Ok(None)` on clean exhaustion, or the fault.
    fn try_next_batch(&mut self) -> core::result::Result<Option<&[ProbeRecord]>, StreamError>;

    /// Total records this stream will yield, when cheaply known up front.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// Adapts an infallible [`RecordStream`] into a [`TryRecordStream`] that
/// never errors, so the fallible pipeline driver is the only driver.
#[derive(Debug)]
pub struct InfallibleStream<'a, S: RecordStream + ?Sized>(pub &'a mut S);

impl<S: RecordStream + ?Sized> TryRecordStream for InfallibleStream<'_, S> {
    fn try_next_batch(&mut self) -> core::result::Result<Option<&[ProbeRecord]>, StreamError> {
        Ok(self.0.next_batch())
    }

    fn len_hint(&self) -> Option<u64> {
        self.0.len_hint()
    }
}

/// A push-based consumer of probe records.
pub trait RecordSink {
    /// Accept one record.
    fn accept(&mut self, record: ProbeRecord);
}

impl RecordSink for Vec<ProbeRecord> {
    fn accept(&mut self, record: ProbeRecord) {
        self.push(record);
    }
}

/// Discards every record. Used to *replay an emitter for its RNG side
/// effects only* — the synthesis planner advances its shared RNG through
/// this sink so lazily re-run emitters observe the exact same draw sequence.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl RecordSink for NullSink {
    fn accept(&mut self, _record: ProbeRecord) {}
}

/// A [`RecordStream`] over an in-memory, already-sorted slice — the bridge
/// from materialized buffers (benches, tests, the `--materialize` escape
/// hatch) into the streaming pipeline.
#[derive(Debug)]
pub struct SliceStream<'a> {
    records: &'a [ProbeRecord],
    pos: usize,
    batch: usize,
}

impl<'a> SliceStream<'a> {
    /// Stream `records` (must be sorted by `ts_micros`) in
    /// [`BATCH_RECORDS`]-sized batches.
    pub fn new(records: &'a [ProbeRecord]) -> Self {
        Self::with_batch_size(records, BATCH_RECORDS)
    }

    /// As [`SliceStream::new`] with an explicit batch size (tests).
    pub fn with_batch_size(records: &'a [ProbeRecord], batch: usize) -> Self {
        Self {
            records,
            pos: 0,
            batch: batch.max(1),
        }
    }
}

impl RecordStream for SliceStream<'_> {
    fn next_batch(&mut self) -> Option<&[ProbeRecord]> {
        if self.pos >= self.records.len() {
            return None;
        }
        let end = (self.pos + self.batch).min(self.records.len());
        let out = &self.records[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records.len() as u64)
    }
}

/// A free-list of reusable record batch buffers.
///
/// Batch consumers that hand `Vec<ProbeRecord>`s across threads (the sharded
/// pipeline feeder) used to allocate a fresh ~16k-record vector per batch in
/// flight — a steady allocation churn exactly on the hot path. A pool keeps
/// released buffers (cleared, capacity intact) and hands them back on
/// [`BatchPool::acquire`], so steady-state sharded throughput allocates
/// nothing per batch.
#[derive(Debug, Default)]
pub struct BatchPool {
    free: Vec<Vec<ProbeRecord>>,
}

impl BatchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cleared buffer with at least `capacity` reserved, reusing a
    /// released one when available.
    pub fn acquire(&mut self, capacity: usize) -> Vec<ProbeRecord> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                if buf.capacity() < capacity {
                    buf.reserve(capacity - buf.len());
                }
                buf
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Return a buffer to the pool for reuse (contents are discarded).
    pub fn release(&mut self, buf: Vec<ProbeRecord>) {
        self.free.push(buf);
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

/// Fast-forward a fallible stream past (at least) `n` records by pulling
/// whole batches, returning the exact count consumed.
///
/// Checkpoint resume rebuilds the deterministic stream from scratch and
/// skips the records the interrupted run already processed. Because the
/// cursor in a checkpoint is always a sum of whole pulled batches, a
/// faithful replay consumes *exactly* `n` records; callers treat any other
/// return (an early end of stream, or an overshoot from mismatched batch
/// boundaries) as evidence the checkpoint does not belong to this stream.
pub fn skip_records<S: TryRecordStream + ?Sized>(
    stream: &mut S,
    n: u64,
) -> core::result::Result<u64, StreamError> {
    let mut consumed = 0u64;
    while consumed < n {
        match stream.try_next_batch()? {
            Some(batch) => consumed += batch.len() as u64,
            None => break,
        }
    }
    Ok(consumed)
}

/// Drain a stream into one `Vec` — the explicit materialization point.
/// Everything that "needs the whole year" funnels through here, so grepping
/// for `collect` finds every place the O(batch) guarantee is given up.
pub fn collect(stream: &mut dyn RecordStream) -> Vec<ProbeRecord> {
    let mut records = Vec::with_capacity(stream.len_hint().unwrap_or(0) as usize);
    while let Some(batch) = stream.next_batch() {
        records.extend_from_slice(batch);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;
    use crate::Ipv4Address;

    fn record(ts: u64) -> ProbeRecord {
        ProbeRecord {
            ts_micros: ts,
            src_ip: Ipv4Address(1),
            dst_ip: Ipv4Address(2),
            src_port: 1,
            dst_port: 2,
            seq: 3,
            ip_id: 4,
            ttl: 5,
            flags: TcpFlags::SYN,
            window: 6,
        }
    }

    #[test]
    fn slice_stream_batches_and_collects_losslessly() {
        let records: Vec<ProbeRecord> = (0..10u64).map(record).collect();
        let mut stream = SliceStream::with_batch_size(&records, 3);
        assert_eq!(stream.len_hint(), Some(10));
        let sizes: Vec<usize> =
            std::iter::from_fn(|| stream.next_batch().map(<[_]>::len)).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        assert!(stream.next_batch().is_none(), "exhaustion is terminal");

        let mut stream = SliceStream::with_batch_size(&records, 4);
        assert_eq!(collect(&mut stream), records);
    }

    #[test]
    fn empty_slice_stream_yields_nothing() {
        let mut stream = SliceStream::new(&[]);
        assert!(stream.next_batch().is_none());
        assert_eq!(stream.len_hint(), Some(0));
    }

    #[test]
    fn slice_stream_at_exactly_one_batch_yields_once() {
        // Batch boundary edge case: len == batch size must yield exactly one
        // full batch, then terminal None — not a full batch plus an empty one.
        let records: Vec<ProbeRecord> = (0..4u64).map(record).collect();
        let mut stream = SliceStream::with_batch_size(&records, 4);
        assert_eq!(stream.next_batch().map(<[_]>::len), Some(4));
        assert!(stream.next_batch().is_none());
        assert!(stream.next_batch().is_none(), "exhaustion is terminal");
    }

    #[test]
    fn skip_records_consumes_whole_batches() {
        let records: Vec<ProbeRecord> = (0..10u64).map(record).collect();

        // A cursor on a batch boundary lands exactly.
        let mut inner = SliceStream::with_batch_size(&records, 3);
        let mut stream = InfallibleStream(&mut inner);
        assert_eq!(skip_records(&mut stream, 6), Ok(6));
        assert_eq!(
            stream.try_next_batch().unwrap().map(<[_]>::len),
            Some(3),
            "the stream resumes at the first unskipped batch"
        );

        // A cursor inside a batch overshoots to the batch end; callers treat
        // the mismatch as a foreign checkpoint.
        let mut inner = SliceStream::with_batch_size(&records, 3);
        let mut stream = InfallibleStream(&mut inner);
        assert_eq!(skip_records(&mut stream, 5), Ok(6));

        // A cursor past the end of the stream stops at exhaustion.
        let mut inner = SliceStream::with_batch_size(&records, 3);
        let mut stream = InfallibleStream(&mut inner);
        assert_eq!(skip_records(&mut stream, 99), Ok(10));

        // Zero is a no-op: nothing is pulled.
        let mut inner = SliceStream::with_batch_size(&records, 3);
        let mut stream = InfallibleStream(&mut inner);
        assert_eq!(skip_records(&mut stream, 0), Ok(0));
        assert_eq!(stream.try_next_batch().unwrap().map(<[_]>::len), Some(3));
    }

    #[test]
    fn fault_policy_parses_and_displays() {
        for (text, policy) in [
            ("fail", FaultPolicy::Fail),
            ("skip", FaultPolicy::SkipRecord),
            ("skip-record", FaultPolicy::SkipRecord),
            ("stop", FaultPolicy::StopClean),
            ("stop-clean", FaultPolicy::StopClean),
        ] {
            assert_eq!(text.parse::<FaultPolicy>().unwrap(), policy);
        }
        assert!("lenient".parse::<FaultPolicy>().is_err());
        assert_eq!(FaultPolicy::SkipRecord.to_string(), "skip");
        assert_eq!(FaultPolicy::default(), FaultPolicy::Fail);
    }

    #[test]
    fn fault_counters_absorb_and_report() {
        let mut a = FaultCounters::default();
        assert!(!a.any());
        a.records_skipped = 2;
        a.bytes_dropped = 100;
        let b = FaultCounters {
            records_skipped: 1,
            duplicates_dropped: 4,
            bytes_dropped: 11,
            streams_truncated: 1,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            FaultCounters {
                records_skipped: 3,
                duplicates_dropped: 4,
                bytes_dropped: 111,
                streams_truncated: 1,
            }
        );
        assert!(a.any());
        assert!(a.to_string().contains("3 records skipped"));
    }

    #[test]
    fn infallible_stream_adapter_never_errors() {
        let records: Vec<ProbeRecord> = (0..5u64).map(record).collect();
        let mut inner = SliceStream::with_batch_size(&records, 2);
        let mut stream = InfallibleStream(&mut inner);
        assert_eq!(TryRecordStream::len_hint(&stream), Some(5));
        let mut total = 0;
        while let Some(batch) = stream.try_next_batch().unwrap() {
            total += batch.len();
        }
        assert_eq!(total, 5);
    }

    #[test]
    fn batch_pool_recycles_capacity() {
        let mut pool = BatchPool::new();
        assert_eq!(pool.idle(), 0);
        // Cold acquire allocates fresh.
        let mut a = pool.acquire(8);
        assert!(a.capacity() >= 8 && a.is_empty());
        a.extend((0..8u64).map(record));
        let cap = a.capacity();
        pool.release(a);
        assert_eq!(pool.idle(), 1);
        // Warm acquire reuses the released buffer, cleared.
        let b = pool.acquire(4);
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        assert_eq!(pool.idle(), 0);
        // A too-small pooled buffer is grown to the requested capacity.
        pool.release(Vec::with_capacity(2));
        let c = pool.acquire(64);
        assert!(c.capacity() >= 64);
    }

    #[test]
    fn sinks_accept_records() {
        let mut vec_sink: Vec<ProbeRecord> = Vec::new();
        vec_sink.accept(record(7));
        assert_eq!(vec_sink.len(), 1);
        NullSink.accept(record(8)); // must not panic, must not retain
    }
}
