//! IPv4 header view and representation (RFC 791).
//!
//! Only the fields the scanning-measurement pipeline needs are modelled in
//! [`Ipv4Repr`]; the raw [`Ipv4Packet`] view still gives access to every
//! header field so tooling such as the fingerprinting engine can inspect
//! identification, TTL, and flags directly.

use crate::checksum;
use crate::{Result, WireError};

/// Length in bytes of an IPv4 header without options.
pub const HEADER_LEN: usize = 20;

/// An IPv4 address.
///
/// A thin newtype over the host-order `u32` so the analysis pipeline can do
/// arithmetic (netblock bucketing, XOR fingerprints) without conversions,
/// while still formatting in dotted-quad notation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(not(synscan_standalone), derive(serde::Serialize, serde::Deserialize))]
pub struct Address(pub u32);

impl Address {
    /// Construct from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Self(u32::from_be_bytes([a, b, c, d]))
    }

    /// Construct from a big-endian byte array (network order).
    pub const fn from_bytes(bytes: [u8; 4]) -> Self {
        Self(u32::from_be_bytes(bytes))
    }

    /// The network-order byte representation.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The /16 netblock this address belongs to (upper 16 bits).
    ///
    /// The volatility analysis (Figure 2 of the paper) aggregates scanning
    /// sources at /16 granularity.
    pub const fn slash16(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The /24 netblock this address belongs to (upper 24 bits).
    pub const fn slash24(self) -> u32 {
        self.0 >> 8
    }

    /// The /8 this address belongs to (upper 8 bits).
    pub const fn slash8(self) -> u8 {
        (self.0 >> 24) as u8
    }

    /// True if the address is in private (RFC 1918), loopback, or multicast
    /// space — addresses a well-behaved Internet-wide scanner skips.
    pub const fn is_reserved(self) -> bool {
        let a = (self.0 >> 24) as u8;
        let b = ((self.0 >> 16) & 0xff) as u8;
        a == 0
            || a == 10
            || a == 127
            || (a == 172 && b >= 16 && b < 32)
            || (a == 192 && b == 168)
            || (a == 169 && b == 254)
            || a >= 224
    }
}

impl core::fmt::Display for Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl core::fmt::Debug for Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Display::fmt(self, f)
    }
}

impl From<u32> for Address {
    fn from(value: u32) -> Self {
        Self(value)
    }
}

impl From<Address> for u32 {
    fn from(value: Address) -> Self {
        value.0
    }
}

impl core::str::FromStr for Address {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for octet in octets.iter_mut() {
            let part = parts.next().ok_or(WireError::Malformed)?;
            *octet = part.parse().map_err(|_| WireError::Malformed)?;
        }
        if parts.next().is_some() {
            return Err(WireError::Malformed);
        }
        Ok(Self::from_bytes(octets))
    }
}

/// IPv4 protocol numbers relevant to telescope traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6) — the focus of the study: 98% of unsolicited TCP traffic is SYN scans.
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, with the raw protocol number preserved.
    Other(u8),
}

impl From<u8> for Protocol {
    fn from(value: u8) -> Self {
        match value {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(value: Protocol) -> Self {
        match value {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(other) => other,
        }
    }
}

mod field {
    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const LENGTH: core::ops::Range<usize> = 2..4;
    pub const IDENT: core::ops::Range<usize> = 4..6;
    pub const FLAGS_FRAG: core::ops::Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: core::ops::Range<usize> = 10..12;
    pub const SRC_ADDR: core::ops::Range<usize> = 12..16;
    pub const DST_ADDR: core::ops::Range<usize> = 16..20;
}

/// Zero-copy view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap a buffer without validating it.
    pub const fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap a buffer, validating version, header length, and total length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        packet.check()?;
        Ok(packet)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if self.version() != 4 {
            return Err(WireError::Unsupported);
        }
        let header_len = self.header_len() as usize;
        if header_len < HEADER_LEN || header_len > data.len() {
            return Err(WireError::Malformed);
        }
        let total_len = self.total_len() as usize;
        if total_len < header_len || total_len > data.len() {
            return Err(WireError::Malformed);
        }
        Ok(())
    }

    /// Consume the view and return the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The IP version field (always 4 for valid packets).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VER_IHL] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[field::VER_IHL] & 0x0f) * 4
    }

    /// Total packet length (header + payload).
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::LENGTH].try_into().unwrap())
    }

    /// The identification field — one of the primary fingerprinting signals:
    /// ZMap sets it to 54321, Masscan to `dst_ip ^ dst_port ^ seq`.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::IDENT].try_into().unwrap())
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// The encapsulated protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[field::PROTOCOL])
    }

    /// Raw header checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::CHECKSUM].try_into().unwrap())
    }

    /// Source address.
    pub fn src_addr(&self) -> Address {
        Address::from_bytes(self.buffer.as_ref()[field::SRC_ADDR].try_into().unwrap())
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Address {
        Address::from_bytes(self.buffer.as_ref()[field::DST_ADDR].try_into().unwrap())
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let header_len = self.header_len() as usize;
        checksum::verify(&self.buffer.as_ref()[..header_len])
    }

    /// The payload (e.g. the TCP segment) following the header.
    pub fn payload(&self) -> &[u8] {
        let start = self.header_len() as usize;
        let end = self.total_len() as usize;
        &self.buffer.as_ref()[start..end]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    fn set_version_and_header_len(&mut self) {
        self.buffer.as_mut()[field::VER_IHL] = 0x45;
        self.buffer.as_mut()[field::DSCP_ECN] = 0;
    }

    /// Set the total length field.
    pub fn set_total_len(&mut self, value: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, value: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&value.to_be_bytes());
    }

    /// Set flags and fragment offset (scanners send DF or zero).
    pub fn set_flags_frag(&mut self, value: u16) {
        self.buffer.as_mut()[field::FLAGS_FRAG].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the time-to-live.
    pub fn set_ttl(&mut self, value: u8) {
        self.buffer.as_mut()[field::TTL] = value;
    }

    /// Set the protocol field.
    pub fn set_protocol(&mut self, value: Protocol) {
        self.buffer.as_mut()[field::PROTOCOL] = value.into();
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, value: Address) {
        self.buffer.as_mut()[field::SRC_ADDR].copy_from_slice(&value.octets());
    }

    /// Set the destination address.
    pub fn set_dst_addr(&mut self, value: Address) {
        self.buffer.as_mut()[field::DST_ADDR].copy_from_slice(&value.octets());
    }

    /// Compute and write the header checksum.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let ck = checksum::checksum(&self.buffer.as_ref()[..HEADER_LEN]);
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable access to the payload area after a standard 20-byte header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// Parsed representation of the IPv4 header fields the pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address (the scanner, for telescope traffic — never spoofed,
    /// because the scanner needs the reply).
    pub src_addr: Address,
    /// Destination address (a telescope address).
    pub dst_addr: Address,
    /// Encapsulated protocol.
    pub protocol: Protocol,
    /// Identification field (fingerprinting signal).
    pub ident: u16,
    /// Time-to-live as received.
    pub ttl: u8,
    /// Length of the payload in bytes.
    pub payload_len: usize,
}

impl Ipv4Repr {
    /// Parse from a checked packet view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Ipv4Packet<T>) -> Result<Self> {
        Ok(Self {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol(),
            ident: packet.ident(),
            ttl: packet.ttl(),
            payload_len: packet.total_len() as usize - packet.header_len() as usize,
        })
    }

    /// Total emitted length (header + payload).
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit a 20-byte header (no options) into the packet view, including the
    /// header checksum.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Ipv4Packet<T>) {
        packet.set_version_and_header_len();
        packet.set_total_len((HEADER_LEN + self.payload_len) as u16);
        packet.set_ident(self.ident);
        packet.set_flags_frag(0x4000); // don't fragment, as common tools do
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
        packet.fill_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Ipv4Repr {
        Ipv4Repr {
            src_addr: Address::new(203, 0, 113, 9),
            dst_addr: Address::new(192, 0, 2, 254),
            protocol: Protocol::Tcp,
            ident: 54321,
            ttl: 57,
            payload_len: 20,
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Ipv4Packet::new_unchecked(&mut buf[..]));
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum());
        assert_eq!(Ipv4Repr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn checked_rejects_short_buffer() {
        assert_eq!(
            Ipv4Packet::new_checked(&[0u8; 10][..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn checked_rejects_wrong_version() {
        let mut buf = [0u8; HEADER_LEN];
        buf[0] = 0x65; // IPv6 version nibble
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::Unsupported
        );
    }

    #[test]
    fn checked_rejects_ihl_beyond_buffer() {
        let mut buf = [0u8; HEADER_LEN];
        buf[0] = 0x4f; // IHL = 15 -> 60 bytes > 20-byte buffer
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::Malformed
        );
    }

    #[test]
    fn checked_rejects_total_len_beyond_buffer() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Ipv4Packet::new_unchecked(&mut buf[..]));
        buf[2] = 0xff;
        buf[3] = 0xff;
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::Malformed
        );
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Ipv4Packet::new_unchecked(&mut buf[..]));
        buf[8] ^= 0xff; // flip TTL
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!packet.verify_checksum());
    }

    #[test]
    fn address_formatting_and_parsing() {
        let addr = Address::new(8, 8, 4, 4);
        assert_eq!(addr.to_string(), "8.8.4.4");
        assert_eq!("8.8.4.4".parse::<Address>().unwrap(), addr);
        assert!("8.8.4".parse::<Address>().is_err());
        assert!("8.8.4.4.4".parse::<Address>().is_err());
        assert!("8.8.4.256".parse::<Address>().is_err());
    }

    #[test]
    fn netblock_helpers() {
        let addr = Address::new(10, 20, 30, 40);
        assert_eq!(addr.slash8(), 10);
        assert_eq!(addr.slash16(), (10 << 8) | 20);
        assert_eq!(addr.slash24(), (10 << 16) | (20 << 8) | 30);
    }

    #[test]
    fn reserved_space_detection() {
        assert!(Address::new(10, 1, 2, 3).is_reserved());
        assert!(Address::new(127, 0, 0, 1).is_reserved());
        assert!(Address::new(172, 16, 0, 1).is_reserved());
        assert!(Address::new(172, 31, 255, 255).is_reserved());
        assert!(!Address::new(172, 32, 0, 1).is_reserved());
        assert!(Address::new(192, 168, 1, 1).is_reserved());
        assert!(Address::new(224, 0, 0, 1).is_reserved());
        assert!(Address::new(0, 1, 2, 3).is_reserved());
        assert!(!Address::new(8, 8, 8, 8).is_reserved());
        assert!(!Address::new(192, 0, 2, 1).is_reserved());
    }

    #[test]
    fn protocol_round_trip() {
        for value in 0u8..=255 {
            assert_eq!(u8::from(Protocol::from(value)), value);
        }
    }
}
