//! Ethernet II framing.
//!
//! Telescope capture files store full frames; the pipeline only needs to peel
//! the 14-byte header off and dispatch on the EtherType.

use crate::{Result, WireError};

/// Length in bytes of an Ethernet II header.
pub const HEADER_LEN: usize = 14;

/// A MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddress(pub [u8; 6]);

impl core::fmt::Display for MacAddress {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let [a, b, c, d, e, g] = self.0;
        write!(f, "{a:02x}:{b:02x}:{c:02x}:{d:02x}:{e:02x}:{g:02x}")
    }
}

/// EtherType values the telescope cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806) — seen from local gear, ignored by analysis.
    Arp,
    /// IPv6 (0x86DD) — out of scope for the IPv4 telescope.
    Ipv6,
    /// Anything else.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(value: u16) -> Self {
        match value {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(value: EtherType) -> Self {
        match value {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(other) => other,
        }
    }
}

/// Zero-copy view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wrap a buffer without validating it.
    pub const fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap a buffer, validating that the fixed header fits.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let frame = Self::new_unchecked(buffer);
        if frame.buffer.as_ref().len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(frame)
    }

    /// Destination MAC.
    pub fn dst_mac(&self) -> MacAddress {
        MacAddress(self.buffer.as_ref()[0..6].try_into().unwrap())
    }

    /// Source MAC.
    pub fn src_mac(&self) -> MacAddress {
        MacAddress(self.buffer.as_ref()[6..12].try_into().unwrap())
    }

    /// EtherType.
    pub fn ethertype(&self) -> EtherType {
        EtherType::from(u16::from_be_bytes(
            self.buffer.as_ref()[12..14].try_into().unwrap(),
        ))
    }

    /// The encapsulated payload (e.g. an IPv4 packet).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Set the destination MAC.
    pub fn set_dst_mac(&mut self, value: MacAddress) {
        self.buffer.as_mut()[0..6].copy_from_slice(&value.0);
    }

    /// Set the source MAC.
    pub fn set_src_mac(&mut self, value: MacAddress) {
        self.buffer.as_mut()[6..12].copy_from_slice(&value.0);
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, value: EtherType) {
        self.buffer.as_mut()[12..14].copy_from_slice(&u16::from(value).to_be_bytes());
    }

    /// Mutable payload area.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// Parsed Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    /// Destination MAC (the telescope router).
    pub dst_mac: MacAddress,
    /// Source MAC (the last-hop router).
    pub src_mac: MacAddress,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parse from a checked frame.
    pub fn parse<T: AsRef<[u8]>>(frame: &EthernetFrame<T>) -> Result<Self> {
        Ok(Self {
            dst_mac: frame.dst_mac(),
            src_mac: frame.src_mac(),
            ethertype: frame.ethertype(),
        })
    }

    /// Emit into a frame buffer.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut EthernetFrame<T>) {
        frame.set_dst_mac(self.dst_mac);
        frame.set_src_mac(self.src_mac);
        frame.set_ethertype(self.ethertype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let repr = EthernetRepr {
            dst_mac: MacAddress([0, 1, 2, 3, 4, 5]),
            src_mac: MacAddress([6, 7, 8, 9, 10, 11]),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = [0u8; HEADER_LEN + 4];
        repr.emit(&mut EthernetFrame::new_unchecked(&mut buf[..]));
        let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(EthernetRepr::parse(&frame).unwrap(), repr);
        assert_eq!(frame.payload().len(), 4);
    }

    #[test]
    fn short_frame_rejected() {
        assert_eq!(
            EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800u16), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x86ddu16), EtherType::Ipv6);
        assert_eq!(EtherType::from(0x0806u16), EtherType::Arp);
        assert_eq!(u16::from(EtherType::Other(0x88cc)), 0x88cc);
    }

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddress([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }
}
