//! Deterministic fault injection for record streams and capture bytes.
//!
//! A decade of telescope pcap decays in predictable ways: duplicate flushes,
//! bitrot, torn tails, clock jitter. This module reproduces that decay *on
//! purpose and reproducibly*: a [`ChaosPlan`] is a seed plus a list of
//! [`Fault`]s, and every injection site is a pure function of
//! `(seed, fault, position)` — the same plan over the same input corrupts the
//! same offsets on every run, so a failing chaos test is replayable from its
//! seed alone.
//!
//! Three injection layers, matching where real corruption enters:
//!
//! * [`ChaosStream`] wraps a [`RecordStream`] and injects record-level faults
//!   (duplicates, timestamp jitter, mid-stream EOF); it surfaces them through
//!   the fallible [`TryRecordStream`] interface.
//! * [`ChaosReader`] wraps any [`Read`] and injects byte-level faults
//!   (corruption at deterministic offsets, hard truncation) — what bitrot
//!   and torn copies do to the file under the parser.
//! * [`corrupt_pcap`] rewrites a well-formed capture with frame-aware faults
//!   (duplicate records, garbage frames, corrupted ethertypes, torn tails)
//!   so pcap-consuming paths can be exercised end to end.
//!
//! No randomness source is used beyond a splitmix64 mix of the plan seed:
//! the module needs no external dependencies and never consults the clock.

use std::io::{self, Cursor, Read};

use crate::pcap::{PcapError, PcapReader, PcapWriter};
use crate::probe::ProbeRecord;
use crate::stream::{RecordStream, StreamError, TryRecordStream};

/// One kind of injected fault, with its placement parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Emit every `period`-th record twice, back to back with equal
    /// timestamps — a duplicated capture flush. Benign under deduplication.
    DuplicateRecord {
        /// Inject once per this many records.
        period: u64,
    },
    /// Insert an unparseable garbage frame after every `period`-th record
    /// (pcap-level only). Benign: consumers count it as a non-TCP frame.
    InsertGarbage {
        /// Inject once per this many records.
        period: u64,
    },
    /// Flip the ethertype of every `period`-th frame in place (pcap-level
    /// only). *Not* benign: a real record becomes unparseable and is lost.
    CorruptFrame {
        /// Corrupt once per this many records.
        period: u64,
    },
    /// Perturb every `period`-th record's timestamp by up to `max_micros`
    /// in either direction — clock skew; can break the time-order contract.
    JitterTimestamp {
        /// Jitter once per this many records.
        period: u64,
        /// Maximum perturbation magnitude in microseconds.
        max_micros: u64,
    },
    /// End the stream abruptly after this many records (record-level: a
    /// [`StreamError::Truncated`]; pcap-level: a torn final record).
    MidStreamEof {
        /// Records delivered before the cut.
        after_records: u64,
    },
    /// XOR a nonzero mask into every `period`-th byte past `skip`
    /// (byte-level only) — bitrot at deterministic offsets.
    CorruptBytes {
        /// Corrupt one byte per this many bytes.
        period: u64,
        /// Leave this many leading bytes untouched.
        skip: u64,
    },
    /// Hard-truncate the byte stream at this absolute offset (byte-level
    /// only) — a copy cut short.
    TruncateBytesAt {
        /// Absolute byte offset of the cut.
        offset: u64,
    },
}

/// A seeded, declarative fault-injection plan.
///
/// The same plan applied to the same input always injects at the same
/// offsets with the same values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosPlan {
    /// Seed from which every injection site and value is derived.
    pub seed: u64,
    /// Faults to inject; empty means byte-identical passthrough.
    pub faults: Vec<Fault>,
}

impl ChaosPlan {
    /// A plan that injects nothing — wrappers become identity adapters.
    pub fn noop(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Faults that a skip-policy consumer recovers from *losslessly*:
    /// adjacent duplicates only. Analysis over the faulted stream must equal
    /// analysis over the clean one.
    pub fn benign(seed: u64) -> Self {
        Self {
            seed,
            faults: vec![Fault::DuplicateRecord { period: 7 }],
        }
    }

    /// Sparse byte-level bitrot for [`ChaosReader`]: one corrupted byte per
    /// 4 KiB, sparing the global header so the file still opens.
    pub fn byte_noise(seed: u64) -> Self {
        Self {
            seed,
            faults: vec![Fault::CorruptBytes {
                period: 4096,
                skip: 64,
            }],
        }
    }

    /// The same faults under a seed mixed with `salt` — distinct reproducible
    /// offsets per shard or per year from one user-facing seed.
    pub fn reseeded(&self, salt: u64) -> Self {
        Self {
            seed: mix64(self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            faults: self.faults.clone(),
        }
    }
}

/// Tally of injections actually performed by a wrapper or rewriter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectionLog {
    /// Records emitted twice.
    pub duplicates: u64,
    /// Timestamps perturbed.
    pub jittered: u64,
    /// Garbage frames inserted.
    pub garbage_frames: u64,
    /// Real frames corrupted in place.
    pub corrupted_frames: u64,
    /// Bytes XOR-corrupted.
    pub corrupted_bytes: u64,
    /// Streams cut short.
    pub truncations: u64,
}

impl InjectionLog {
    /// Whether anything was injected at all.
    pub fn any(&self) -> bool {
        *self != InjectionLog::default()
    }
}

/// splitmix64 finalizer: the sole source of chaos values. Stateless — every
/// injection derives its value from `(seed, position)` so replay is exact.
/// Shared with [`crate::net`] so transport faults draw from the same well.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether a periodic fault fires at `index`. The phase within the period is
/// seed-derived (per fault kind via `tag`) so different seeds hit different,
/// but fixed, offsets.
pub(crate) fn hits(seed: u64, tag: u64, period: u64, index: u64) -> bool {
    let period = period.max(1);
    index % period == mix64(seed ^ tag) % period
}

/// Seed-derived signed jitter in `[-max, +max]`, applied with saturation.
fn jitter_ts(seed: u64, index: u64, ts: u64, max_micros: u64) -> u64 {
    let draw = mix64(seed ^ index.wrapping_mul(0x2545_f491_4f6c_dd1d));
    let magnitude = draw % (max_micros + 1);
    if draw & (1 << 63) == 0 {
        ts.saturating_add(magnitude)
    } else {
        ts.saturating_sub(magnitude)
    }
}

const TAG_DUPLICATE: u64 = 0x01;
const TAG_GARBAGE: u64 = 0x02;
const TAG_CORRUPT_FRAME: u64 = 0x03;
const TAG_JITTER: u64 = 0x04;

/// Record-level fault injector over any [`RecordStream`].
///
/// Implements [`TryRecordStream`]: benign faults reshape batches, while
/// [`Fault::MidStreamEof`] surfaces as [`StreamError::Truncated`] *after*
/// the records preceding the cut have been delivered.
#[derive(Debug)]
pub struct ChaosStream<S: RecordStream> {
    inner: S,
    plan: ChaosPlan,
    index: u64,
    out: Vec<ProbeRecord>,
    log: InjectionLog,
    pending_error: Option<StreamError>,
    done: bool,
}

impl<S: RecordStream> ChaosStream<S> {
    /// Wrap `inner`, injecting per `plan`.
    pub fn new(inner: S, plan: ChaosPlan) -> Self {
        Self {
            inner,
            plan,
            index: 0,
            out: Vec::new(),
            log: InjectionLog::default(),
            pending_error: None,
            done: false,
        }
    }

    /// What has been injected so far.
    pub fn log(&self) -> &InjectionLog {
        &self.log
    }

    fn push_record(&mut self, record: ProbeRecord) {
        let seed = self.plan.seed;
        let i = self.index;
        let mut record = record;
        for fault in &self.plan.faults {
            match *fault {
                Fault::JitterTimestamp { period, max_micros }
                    if hits(seed, TAG_JITTER, period, i) =>
                {
                    record.ts_micros = jitter_ts(seed, i, record.ts_micros, max_micros);
                    self.log.jittered += 1;
                }
                _ => {}
            }
        }
        self.out.push(record);
        for fault in &self.plan.faults {
            if let Fault::DuplicateRecord { period } = *fault {
                if hits(seed, TAG_DUPLICATE, period, i) {
                    self.out.push(record);
                    self.log.duplicates += 1;
                }
            }
        }
        self.index += 1;
    }

    fn cut_after(&self) -> Option<u64> {
        self.plan.faults.iter().find_map(|f| match *f {
            Fault::MidStreamEof { after_records } => Some(after_records),
            _ => None,
        })
    }
}

impl<S: RecordStream> TryRecordStream for ChaosStream<S> {
    fn try_next_batch(&mut self) -> Result<Option<&[ProbeRecord]>, StreamError> {
        if let Some(e) = self.pending_error.take() {
            self.done = true;
            return Err(e);
        }
        if self.done {
            return Ok(None);
        }
        self.out.clear();
        let cut = self.cut_after();
        match self.inner.next_batch() {
            None => {
                self.done = true;
                Ok(None)
            }
            Some(batch) => {
                let records: Vec<ProbeRecord> = batch.to_vec();
                for record in records {
                    if let Some(after) = cut {
                        if self.index >= after {
                            self.log.truncations += 1;
                            self.pending_error = Some(StreamError::Truncated {
                                records_seen: self.index,
                            });
                            break;
                        }
                    }
                    self.push_record(record);
                }
                if self.out.is_empty() {
                    match self.pending_error.take() {
                        Some(e) => {
                            self.done = true;
                            Err(e)
                        }
                        // Inner batches are non-empty by contract, so an
                        // empty output only happens at the cut point.
                        None => {
                            self.done = true;
                            Ok(None)
                        }
                    }
                } else {
                    Ok(Some(&self.out))
                }
            }
        }
    }

    fn len_hint(&self) -> Option<u64> {
        // Injection changes the count; the hint is only a pre-sizing aid.
        self.inner.len_hint()
    }
}

/// Byte-level fault injector over any [`Read`] — bitrot and torn copies as
/// they reach the parser.
///
/// With a no-op plan the wrapper is a byte-identical passthrough.
#[derive(Debug)]
pub struct ChaosReader<R: Read> {
    inner: R,
    plan: ChaosPlan,
    offset: u64,
    log: InjectionLog,
}

impl<R: Read> ChaosReader<R> {
    /// Wrap `inner`, injecting per `plan`.
    pub fn new(inner: R, plan: ChaosPlan) -> Self {
        Self {
            inner,
            plan,
            offset: 0,
            log: InjectionLog::default(),
        }
    }

    /// What has been injected so far.
    pub fn log(&self) -> &InjectionLog {
        &self.log
    }

    fn truncate_at(&self) -> Option<u64> {
        self.plan.faults.iter().find_map(|f| match *f {
            Fault::TruncateBytesAt { offset } => Some(offset),
            _ => None,
        })
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut allowed = buf.len();
        if let Some(cut) = self.truncate_at() {
            if self.offset >= cut {
                if self.log.truncations == 0 {
                    self.log.truncations = 1;
                }
                return Ok(0);
            }
            allowed = allowed.min((cut - self.offset) as usize);
        }
        let n = self.inner.read(&mut buf[..allowed])?;
        for fault in &self.plan.faults {
            if let Fault::CorruptBytes { period, skip } = *fault {
                let period = period.max(1);
                for (i, byte) in buf[..n].iter_mut().enumerate() {
                    let pos = self.offset + i as u64;
                    if pos >= skip && (pos - skip) % period == 0 {
                        // `| 1` keeps the mask nonzero so the byte changes.
                        *byte ^= (mix64(self.plan.seed ^ pos) as u8) | 1;
                        self.log.corrupted_bytes += 1;
                    }
                }
            }
        }
        self.offset += n as u64;
        Ok(n)
    }
}

/// Rewrite a well-formed capture with frame-aware faults: duplicated
/// records, inserted garbage frames, in-place ethertype corruption,
/// timestamp jitter, and a torn final record for [`Fault::MidStreamEof`].
///
/// Returns the corrupted bytes and a log of what was injected. The input
/// must parse cleanly (it is the *output* that is broken on purpose).
pub fn corrupt_pcap(bytes: &[u8], plan: &ChaosPlan) -> Result<(Vec<u8>, InjectionLog), PcapError> {
    let mut reader = PcapReader::new(Cursor::new(bytes))?;
    let linktype = reader.linktype();
    let mut writer = PcapWriter::new(Vec::new(), linktype).expect("writing to Vec<u8> cannot fail");
    let mut log = InjectionLog::default();
    let mut index: u64 = 0;
    let mut tear_output_at: Option<usize> = None;
    let cut = plan.faults.iter().find_map(|f| match *f {
        Fault::MidStreamEof { after_records } => Some(after_records),
        _ => None,
    });
    while let Some(rec) = reader.next_record()? {
        if let Some(after) = cut {
            if index >= after {
                // Torn tail: full record header, half the promised body.
                let written_so_far = 24 + body_len_so_far(&writer);
                writer
                    .write_record(rec.ts_micros, &rec.data)
                    .expect("writing to Vec<u8> cannot fail");
                log.truncations += 1;
                tear_output_at = Some(written_so_far + 16 + rec.data.len() / 2);
                break;
            }
        }
        let mut ts = rec.ts_micros;
        let mut data = rec.data;
        for fault in &plan.faults {
            match *fault {
                Fault::JitterTimestamp { period, max_micros }
                    if hits(plan.seed, TAG_JITTER, period, index) =>
                {
                    ts = jitter_ts(plan.seed, index, ts, max_micros);
                    log.jittered += 1;
                }
                Fault::CorruptFrame { period }
                    if hits(plan.seed, TAG_CORRUPT_FRAME, period, index) && data.len() > 13 =>
                {
                    // Flip the ethertype: the frame no longer parses as IPv4.
                    data[12] ^= 0xff;
                    log.corrupted_frames += 1;
                }
                _ => {}
            }
        }
        writer
            .write_record(ts, &data)
            .expect("writing to Vec<u8> cannot fail");
        for fault in &plan.faults {
            match *fault {
                Fault::DuplicateRecord { period }
                    if hits(plan.seed, TAG_DUPLICATE, period, index) =>
                {
                    writer
                        .write_record(ts, &data)
                        .expect("writing to Vec<u8> cannot fail");
                    log.duplicates += 1;
                }
                Fault::InsertGarbage { period } if hits(plan.seed, TAG_GARBAGE, period, index) => {
                    // 16 bytes of seed-derived noise: too short for an
                    // Ethernet header, so consumers count it as non-TCP.
                    let mut garbage = [0u8; 16];
                    for (i, b) in garbage.iter_mut().enumerate() {
                        *b = mix64(plan.seed ^ index ^ (i as u64) << 32) as u8;
                    }
                    writer
                        .write_record(ts, &garbage)
                        .expect("writing to Vec<u8> cannot fail");
                    log.garbage_frames += 1;
                }
                _ => {}
            }
        }
        index += 1;
    }
    let mut out = writer.into_inner().expect("writing to Vec<u8> cannot fail");
    if let Some(at) = tear_output_at {
        out.truncate(at);
    }
    Ok((out, log))
}

/// Bytes of record data emitted so far by a `PcapWriter<Vec<u8>>` (output
/// length minus the 24-byte global header is not directly observable, so we
/// track it through the writer's buffer length).
fn body_len_so_far(writer: &PcapWriter<Vec<u8>>) -> usize {
    writer.buffered_len() - 24
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{FaultPolicy, SliceStream};
    use crate::tcp::TcpFlags;
    use crate::Ipv4Address;

    fn record(ts: u64) -> ProbeRecord {
        ProbeRecord {
            ts_micros: ts,
            src_ip: Ipv4Address(10),
            dst_ip: Ipv4Address(20),
            src_port: 1,
            dst_port: 2,
            seq: 3,
            ip_id: 4,
            ttl: 5,
            flags: TcpFlags::SYN,
            window: 6,
        }
    }

    fn drain(stream: &mut dyn TryRecordStream) -> Result<Vec<ProbeRecord>, StreamError> {
        let mut all = Vec::new();
        while let Some(batch) = stream.try_next_batch()? {
            all.extend_from_slice(batch);
        }
        Ok(all)
    }

    #[test]
    fn noop_plan_is_identity() {
        let records: Vec<ProbeRecord> = (0..100u64).map(|i| record(i * 10)).collect();
        let inner = SliceStream::with_batch_size(&records, 7);
        let mut chaos = ChaosStream::new(inner, ChaosPlan::noop(42));
        assert_eq!(drain(&mut chaos).unwrap(), records);
        assert!(!chaos.log().any());
    }

    #[test]
    fn duplicates_are_adjacent_and_deterministic() {
        let records: Vec<ProbeRecord> = (0..50u64).map(|i| record(i * 10)).collect();
        let plan = ChaosPlan::benign(7);
        let run = |batch: usize| {
            let inner = SliceStream::with_batch_size(&records, batch);
            let mut chaos = ChaosStream::new(inner, plan.clone());
            let out = drain(&mut chaos).unwrap();
            (out, *chaos.log())
        };
        let (out_a, log_a) = run(8);
        let (out_b, log_b) = run(50);
        assert_eq!(out_a, out_b, "injection is batch-size independent");
        assert_eq!(log_a, log_b);
        assert!(log_a.duplicates > 0);
        assert_eq!(out_a.len(), records.len() + log_a.duplicates as usize);
        // Every injected duplicate sits right after its original.
        let mut dupes = 0;
        for pair in out_a.windows(2) {
            if pair[0] == pair[1] {
                dupes += 1;
            }
        }
        assert_eq!(dupes, log_a.duplicates);
        // A different seed lands on different offsets.
        let inner = SliceStream::new(&records);
        let mut other = ChaosStream::new(inner, ChaosPlan::benign(8));
        let out_c = drain(&mut other).unwrap();
        assert_ne!(out_a, out_c);
    }

    #[test]
    fn mid_stream_eof_yields_prefix_then_error() {
        let records: Vec<ProbeRecord> = (0..30u64).map(|i| record(i * 10)).collect();
        let plan = ChaosPlan {
            seed: 1,
            faults: vec![Fault::MidStreamEof { after_records: 12 }],
        };
        let inner = SliceStream::with_batch_size(&records, 5);
        let mut chaos = ChaosStream::new(inner, plan);
        let mut seen = Vec::new();
        let err = loop {
            match chaos.try_next_batch() {
                Ok(Some(batch)) => seen.extend_from_slice(batch),
                Ok(None) => panic!("stream must error, not end cleanly"),
                Err(e) => break e,
            }
        };
        assert_eq!(
            seen,
            records[..12].to_vec(),
            "prefix delivered before the cut"
        );
        assert_eq!(err, StreamError::Truncated { records_seen: 12 });
        assert!(
            chaos.try_next_batch().unwrap().is_none(),
            "terminal after error"
        );
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let records: Vec<ProbeRecord> = (0..40u64).map(|i| record(1_000_000 + i * 5)).collect();
        let plan = ChaosPlan {
            seed: 99,
            faults: vec![Fault::JitterTimestamp {
                period: 3,
                max_micros: 50,
            }],
        };
        let inner = SliceStream::new(&records);
        let mut chaos = ChaosStream::new(inner, plan);
        let out = drain(&mut chaos).unwrap();
        assert_eq!(out.len(), records.len());
        assert!(chaos.log().jittered > 0);
        for (a, b) in records.iter().zip(&out) {
            assert!(a.ts_micros.abs_diff(b.ts_micros) <= 50);
        }
    }

    #[test]
    fn chaos_reader_noop_is_byte_identical() {
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let mut reader = ChaosReader::new(Cursor::new(&data), ChaosPlan::noop(3));
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert!(!reader.log().any());
    }

    #[test]
    fn chaos_reader_corrupts_fixed_offsets() {
        let data = vec![0u8; 10_000];
        let plan = ChaosPlan {
            seed: 5,
            faults: vec![Fault::CorruptBytes {
                period: 1000,
                skip: 100,
            }],
        };
        let read_all = |chunk: usize| {
            let mut reader = ChaosReader::new(Cursor::new(&data), plan.clone());
            let mut out = Vec::new();
            let mut buf = vec![0u8; chunk];
            loop {
                let n = reader.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                out.extend_from_slice(&buf[..n]);
            }
            (out, *reader.log())
        };
        let (out_a, log_a) = read_all(77);
        let (out_b, log_b) = read_all(4096);
        assert_eq!(out_a, out_b, "corruption is chunk-size independent");
        assert_eq!(log_a, log_b);
        assert_eq!(log_a.corrupted_bytes, 10);
        let flipped: Vec<usize> = out_a
            .iter()
            .enumerate()
            .filter(|(_, b)| **b != 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(flipped.len(), 10);
        assert!(flipped.iter().all(|&i| i >= 100 && (i - 100) % 1000 == 0));
    }

    #[test]
    fn chaos_reader_truncates_at_offset() {
        let data = vec![7u8; 500];
        let plan = ChaosPlan {
            seed: 0,
            faults: vec![Fault::TruncateBytesAt { offset: 123 }],
        };
        let mut reader = ChaosReader::new(Cursor::new(&data), plan);
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 123);
        assert_eq!(reader.log().truncations, 1);
    }

    #[test]
    fn corrupt_pcap_injects_frame_level_faults() {
        use crate::pcap::LINKTYPE_ETHERNET;
        let mut writer = PcapWriter::new(Vec::new(), LINKTYPE_ETHERNET).unwrap();
        for i in 0..20u64 {
            writer.write_record(i * 1000, &[0x11u8; 60]).unwrap();
        }
        let clean = writer.into_inner().unwrap();
        let plan = ChaosPlan {
            seed: 11,
            faults: vec![
                Fault::DuplicateRecord { period: 5 },
                Fault::InsertGarbage { period: 6 },
                Fault::CorruptFrame { period: 9 },
            ],
        };
        let (dirty, log) = corrupt_pcap(&clean, &plan).unwrap();
        assert!(log.duplicates > 0 && log.garbage_frames > 0 && log.corrupted_frames > 0);
        let (dirty2, log2) = corrupt_pcap(&clean, &plan).unwrap();
        assert_eq!(dirty, dirty2, "rewriting is deterministic");
        assert_eq!(log, log2);
        // The corrupted capture still *parses* as pcap framing.
        let mut reader = PcapReader::new(Cursor::new(&dirty)).unwrap();
        let mut n = 0u64;
        while let Some(_rec) = reader.next_record().unwrap() {
            n += 1;
        }
        assert_eq!(n, 20 + log.duplicates + log.garbage_frames);
    }

    #[test]
    fn corrupt_pcap_mid_stream_eof_tears_the_tail() {
        use crate::pcap::LINKTYPE_ETHERNET;
        let mut writer = PcapWriter::new(Vec::new(), LINKTYPE_ETHERNET).unwrap();
        for i in 0..10u64 {
            writer.write_record(i * 1000, &[0x22u8; 40]).unwrap();
        }
        let clean = writer.into_inner().unwrap();
        let plan = ChaosPlan {
            seed: 2,
            faults: vec![Fault::MidStreamEof { after_records: 4 }],
        };
        let (dirty, log) = corrupt_pcap(&clean, &plan).unwrap();
        assert_eq!(log.truncations, 1);
        let mut reader = PcapReader::new(Cursor::new(&dirty)).unwrap();
        for _ in 0..4 {
            reader.next_record().unwrap().unwrap();
        }
        assert_eq!(
            reader.next_record().unwrap_err(),
            PcapError::TruncatedRecordBody {
                expected: 40,
                got: 20
            }
        );
    }

    #[test]
    fn reseeding_changes_offsets_reproducibly() {
        let plan = ChaosPlan::benign(1234);
        let a = plan.reseeded(2020);
        let b = plan.reseeded(2021);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.faults, plan.faults);
        assert_eq!(a, plan.reseeded(2020), "reseeding is pure");
    }

    #[test]
    fn fault_policy_is_reexported_for_consumers() {
        // Compile-time sanity that the policy/counters types travel with
        // the chaos module's users.
        assert_eq!(FaultPolicy::default(), FaultPolicy::Fail);
    }
}
