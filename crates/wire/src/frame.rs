//! Length-prefixed message framing for the distributed runtime.
//!
//! One frame carries one protocol message between a coordinator and a
//! worker, over any ordered byte pipe — a child process's stdin/stdout, a
//! TCP socket, or a unix socket. The envelope mirrors the `SYNCKPT`
//! checkpoint envelope (magic, version, length, checksum, payload), so the
//! same corruption taxonomy applies on the wire as on disk: a truncated
//! pipe, a stale peer, or a flipped bit each map to a distinct typed error
//! and can never panic the reader.
//!
//! Layout, all integers little-endian:
//!
//! ```text
//! magic     8 bytes  b"SYNDIST\0"
//! version   u32      FRAME_VERSION
//! kind      u8       opaque message discriminant (protocol layer's)
//! length    u64      payload bytes that follow the header
//! checksum  u64      FNV-1a 64 over the payload
//! payload   length bytes
//! ```
//!
//! The framing layer does not interpret `kind` or the payload — the typed
//! protocol on top (`core::distrib`) owns those. Keeping the envelope here
//! in the wire crate means the registry-free standalone harness can speak
//! the real wire format with bare `rustc`, exactly like the pcap layer.

use std::io::{self, Read, Write};

/// Frame magic: first bytes of every frame on the pipe.
pub const FRAME_MAGIC: [u8; 8] = *b"SYNDIST\0";

/// Envelope format version. Bumped only on layout changes; message-level
/// evolution happens in the protocol layer's payloads.
pub const FRAME_VERSION: u32 = 1;

/// Bytes of envelope before the payload.
pub const FRAME_HEADER_BYTES: usize = 8 + 4 + 1 + 8 + 8;

/// Default cap on a single frame's payload. A partial year analysis for a
/// decade-scale run stays far below this; anything larger is a corrupt
/// length field, and honoring it would let one flipped bit allocate
/// unbounded memory.
pub const MAX_FRAME_PAYLOAD: u64 = 1 << 30;

/// Why a frame could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The underlying pipe failed (stringified `io::Error`).
    Io(String),
    /// The first eight bytes were not [`FRAME_MAGIC`] — the peer is not
    /// speaking this protocol (or the pipe lost sync).
    BadMagic,
    /// The peer speaks a different envelope version.
    UnsupportedVersion(u32),
    /// The announced payload length exceeds the reader's cap.
    Oversized {
        /// The length the header announced.
        announced: u64,
        /// The reader's cap.
        max: u64,
    },
    /// The payload hash did not match the header checksum.
    ChecksumMismatch,
    /// The pipe ended mid-frame (mid-header or mid-payload).
    Truncated,
    /// A read or write deadline expired mid-frame (see [`crate::net`]).
    TimedOut,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::BadMagic => write!(f, "bad frame magic (peer not speaking SYNDIST)"),
            FrameError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported frame version {v} (expected {FRAME_VERSION})"
                )
            }
            FrameError::Oversized { announced, max } => {
                write!(f, "frame announces {announced} payload bytes (cap {max})")
            }
            FrameError::ChecksumMismatch => write!(f, "frame payload checksum mismatch"),
            FrameError::Truncated => write!(f, "pipe ended mid-frame"),
            FrameError::TimedOut => write!(f, "frame deadline expired"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else if crate::net::is_timeout(&e) {
            FrameError::TimedOut
        } else {
            FrameError::Io(e.to_string())
        }
    }
}

/// One frame as read off the pipe: the protocol-layer discriminant plus the
/// raw payload. Interpretation belongs to the layer above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramedMessage {
    /// Protocol-layer message discriminant.
    pub kind: u8,
    /// Verbatim payload bytes (checksum already verified).
    pub payload: Vec<u8>,
}

/// FNV-1a 64 over `payload` — self-contained so the wire crate needs no
/// hasher dependency; collisions only matter against random corruption.
pub fn frame_checksum(payload: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in payload {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Write one frame and flush the pipe (messages are request/response
/// shaped; an unflushed frame would deadlock both peers).
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[..8].copy_from_slice(&FRAME_MAGIC);
    header[8..12].copy_from_slice(&FRAME_VERSION.to_le_bytes());
    header[12] = kind;
    header[13..21].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[21..29].copy_from_slice(&frame_checksum(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, verifying magic, version, length cap, and checksum.
///
/// Returns `Ok(None)` on a clean end of stream (EOF before the first header
/// byte — the peer closed between frames); everything else that is not a
/// whole, valid frame is a typed [`FrameError`].
pub fn read_frame(
    r: &mut impl Read,
    max_payload: u64,
) -> Result<Option<FramedMessage>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    // Distinguish "closed between frames" from "died mid-header" by hand:
    // read_exact collapses both into UnexpectedEof.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if header[..8] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != FRAME_VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let kind = header[12];
    let announced = u64::from_le_bytes(header[13..21].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(header[21..29].try_into().expect("8 bytes"));
    if announced > max_payload {
        return Err(FrameError::Oversized {
            announced,
            max: max_payload,
        });
    }
    let mut payload = vec![0u8; announced as usize];
    r.read_exact(&mut payload)?;
    if frame_checksum(&payload) != checksum {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok(Some(FramedMessage { kind, payload }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, payload).unwrap();
        buf
    }

    #[test]
    fn roundtrips_frames_in_order() {
        let mut pipe = Vec::new();
        write_frame(&mut pipe, 1, b"hello").unwrap();
        write_frame(&mut pipe, 7, &[]).unwrap();
        write_frame(&mut pipe, 200, &vec![0xab; 70_000]).unwrap();
        let mut r = Cursor::new(pipe);
        let first = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!((first.kind, first.payload.as_slice()), (1, &b"hello"[..]));
        let second = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!((second.kind, second.payload.len()), (7, 0));
        let third = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!((third.kind, third.payload.len()), (200, 70_000));
        assert_eq!(read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap(), None);
    }

    #[test]
    fn clean_eof_is_none_partial_header_is_truncated() {
        let mut empty = Cursor::new(Vec::new());
        assert_eq!(read_frame(&mut empty, MAX_FRAME_PAYLOAD).unwrap(), None);
        let frame = framed(3, b"payload");
        for cut in 1..FRAME_HEADER_BYTES {
            let mut r = Cursor::new(frame[..cut].to_vec());
            assert_eq!(
                read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap_err(),
                FrameError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn truncated_payload_is_truncated() {
        let frame = framed(3, b"payload");
        for cut in FRAME_HEADER_BYTES..frame.len() {
            let mut r = Cursor::new(frame[..cut].to_vec());
            assert_eq!(
                read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap_err(),
                FrameError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut frame = framed(3, b"payload");
        frame[0] ^= 0xff;
        assert_eq!(
            read_frame(&mut Cursor::new(frame), MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::BadMagic
        );
        let mut frame = framed(3, b"payload");
        frame[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            read_frame(&mut Cursor::new(frame), MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn corrupt_length_is_capped_not_allocated() {
        let mut frame = framed(3, b"payload");
        frame[13..21].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut Cursor::new(frame), MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::Oversized {
                announced: u64::MAX,
                max: MAX_FRAME_PAYLOAD
            }
        );
    }

    #[test]
    fn flipped_payload_bit_is_checksum_mismatch() {
        let mut frame = framed(3, b"payload");
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert_eq!(
            read_frame(&mut Cursor::new(frame), MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::ChecksumMismatch
        );
    }

    #[test]
    fn flipped_kind_or_checksum_field_is_caught() {
        // A flipped kind byte changes the message discriminant but not the
        // payload hash: the envelope cannot catch it (kind is not summed),
        // so the protocol layer must treat unknown kinds as corruption.
        // A flipped checksum field, though, is caught here.
        let mut frame = framed(3, b"payload");
        frame[21] ^= 0x01;
        assert_eq!(
            read_frame(&mut Cursor::new(frame), MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::ChecksumMismatch
        );
    }

    #[test]
    fn io_errors_stringify() {
        struct Broken;
        impl Read for Broken {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::other("pipe burst"))
            }
        }
        match read_frame(&mut Broken, MAX_FRAME_PAYLOAD).unwrap_err() {
            FrameError::Io(msg) => assert!(msg.contains("pipe burst")),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn checksum_is_fnv1a() {
        assert_eq!(frame_checksum(b""), 0xcbf2_9ce4_8422_2325);
        // FNV-1a 64 of "a" (published test vector).
        assert_eq!(frame_checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
