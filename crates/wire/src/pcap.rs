//! Classic libpcap capture file format (the `.pcap` tcpdump format).
//!
//! The telescope stores raw traffic as pcap; this module implements the
//! format from scratch: the 24-byte global header (magic `0xa1b2c3d4`,
//! microsecond timestamps) and per-record headers, in both byte orders on
//! read, native-order little-endian on write.
//!
//! Real telescope archives decay: disks fill mid-write, copies are cut
//! short, bitrot flips length fields. The reader therefore never panics on
//! hostile input — every malformation maps to a typed [`PcapError`] telling
//! the consumer exactly what broke and whether the stream can continue past
//! it ([`PcapError::recoverable`]).

use std::io::{self, Read, Write};

use crate::WireError;

/// Magic number for microsecond-resolution pcap, as written.
pub const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
/// Magic for nanosecond-resolution pcap (accepted on read).
pub const MAGIC_NANOS: u32 = 0xa1b2_3c4d;
/// Link type LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Link type LINKTYPE_RAW (raw IP).
pub const LINKTYPE_RAW: u32 = 101;
/// Largest per-record capture length the reader will trust. Real snap
/// lengths never exceed 256 KiB; a larger value is a corrupt length field.
pub const MAX_SNAPLEN: u32 = 1 << 18;
/// Size of the classic pcap global header in bytes.
pub const GLOBAL_HEADER_LEN: usize = 24;
/// Size of a per-record header in bytes.
pub const RECORD_HEADER_LEN: usize = 16;

/// Everything that can be wrong with a classic pcap stream, precisely.
///
/// The old reader folded all of these into two [`WireError`] variants (and
/// `unwrap()`-ed its header slicing); the fault-injection work needs to
/// distinguish "the file is not pcap at all" from "one record is torn", so
/// each malformation gets its own variant. `From<PcapError> for WireError`
/// keeps the coarse view available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcapError {
    /// Fewer than 24 bytes of global header.
    TruncatedGlobalHeader,
    /// The magic number matches neither byte order of either resolution.
    BadMagic(u32),
    /// A record header started but ended before its 16th byte. Zero bytes is
    /// a clean EOF (`Ok(None)`), never this error — the count distinguishes a
    /// genuinely torn header (1–15 bytes) so fault counters do not misreport
    /// clean ends of concatenated captures as corruption.
    TruncatedRecordHeader {
        /// Header bytes actually present (1–15).
        got: u32,
    },
    /// A record body ended early (mid-file EOF / torn tail).
    TruncatedRecordBody {
        /// Bytes the record header promised.
        expected: u32,
        /// Bytes actually present.
        got: u32,
    },
    /// The captured length exceeds [`MAX_SNAPLEN`] — a corrupt length field
    /// that would otherwise drive a huge allocation and lose framing.
    SnapLenOverflow(u32),
    /// The header claims zero bytes on the wire yet carries captured bytes —
    /// no real frame is zero-length. Recoverable: the body was consumed, so
    /// the reader is still aligned on the next record.
    ZeroLengthRecord {
        /// Captured bytes carried by the bogus record.
        incl: u32,
    },
}

impl PcapError {
    /// Whether the reader is still aligned on the next record boundary after
    /// this error — i.e. a skip-faults consumer may keep reading. Length
    /// corruption and truncation lose framing for good.
    pub fn recoverable(&self) -> bool {
        matches!(self, PcapError::ZeroLengthRecord { .. })
    }

    /// Capture bytes rendered unusable by this error (for fault counters).
    pub fn bytes_lost(&self) -> u64 {
        match self {
            PcapError::TruncatedRecordHeader { got } => u64::from(*got),
            PcapError::TruncatedRecordBody { got, .. } => u64::from(*got),
            PcapError::ZeroLengthRecord { incl } => u64::from(*incl),
            _ => 0,
        }
    }
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::TruncatedGlobalHeader => write!(f, "truncated pcap global header"),
            PcapError::BadMagic(magic) => write!(f, "bad pcap magic {magic:#010x}"),
            PcapError::TruncatedRecordHeader { got } => {
                write!(
                    f,
                    "truncated pcap record header ({got} of {RECORD_HEADER_LEN} bytes)"
                )
            }
            PcapError::TruncatedRecordBody { expected, got } => {
                write!(f, "truncated pcap record body ({got} of {expected} bytes)")
            }
            PcapError::SnapLenOverflow(len) => {
                write!(f, "pcap record capture length {len} exceeds {MAX_SNAPLEN}")
            }
            PcapError::ZeroLengthRecord { incl } => {
                write!(
                    f,
                    "pcap record claims zero wire length but carries {incl} bytes"
                )
            }
        }
    }
}

impl std::error::Error for PcapError {}

impl From<PcapError> for WireError {
    fn from(e: PcapError) -> Self {
        match e {
            PcapError::TruncatedGlobalHeader
            | PcapError::TruncatedRecordHeader { .. }
            | PcapError::TruncatedRecordBody { .. } => WireError::Truncated,
            PcapError::BadMagic(_)
            | PcapError::SnapLenOverflow(_)
            | PcapError::ZeroLengthRecord { .. } => WireError::Malformed,
        }
    }
}

/// One captured record: timestamp plus frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Timestamp in microseconds since the epoch.
    pub ts_micros: u64,
    /// Original length of the frame on the wire.
    pub orig_len: u32,
    /// Captured bytes (may be shorter than `orig_len` if snapped).
    pub data: Vec<u8>,
}

/// Streaming pcap writer.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    inner: W,
    snaplen: u32,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header for the given link type.
    pub fn new(mut inner: W, linktype: u32) -> io::Result<Self> {
        let snaplen: u32 = 65535;
        inner.write_all(&MAGIC_MICROS.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&snaplen.to_le_bytes())?;
        inner.write_all(&linktype.to_le_bytes())?;
        Ok(Self { inner, snaplen })
    }

    /// Append one record, truncating to the snap length if needed.
    pub fn write_record(&mut self, ts_micros: u64, frame: &[u8]) -> io::Result<()> {
        let ts_sec = (ts_micros / 1_000_000) as u32;
        let ts_usec = (ts_micros % 1_000_000) as u32;
        let incl = frame.len().min(self.snaplen as usize);
        self.inner.write_all(&ts_sec.to_le_bytes())?;
        self.inner.write_all(&ts_usec.to_le_bytes())?;
        self.inner.write_all(&(incl as u32).to_le_bytes())?;
        self.inner.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.inner.write_all(&frame[..incl])?;
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl PcapWriter<Vec<u8>> {
    /// Bytes emitted so far (header plus records) when writing to memory —
    /// lets rewriters compute exact tear offsets without re-deriving framing.
    pub fn buffered_len(&self) -> usize {
        self.inner.len()
    }
}

/// Read as many bytes as the source can give, stopping only at EOF. Returns
/// the byte count, so callers can tell a clean boundary (0) from a torn one.
/// Non-EOF I/O errors surface as a short read too — sans-I/O consumers treat
/// an unreadable tail exactly like a truncated one.
fn read_fully<R: Read>(reader: &mut R, buf: &mut [u8]) -> usize {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    filled
}

/// Little-endian `u32` at a fixed offset of a fixed-size header buffer.
/// Infallible by construction — this replaces the `try_into().unwrap()`
/// slicing the reader used to do on header bytes.
fn u32_at(buf: &[u8], offset: usize, swapped: bool) -> u32 {
    let v = u32::from_le_bytes([
        buf[offset],
        buf[offset + 1],
        buf[offset + 2],
        buf[offset + 3],
    ]);
    if swapped {
        v.swap_bytes()
    } else {
        v
    }
}

/// The decoded global header of a classic pcap stream: byte order, timestamp
/// resolution, and link type. Shared by the `Read`-based [`PcapReader`] and
/// the slice-based [`crate::ingest::PcapSlice`] so both accept exactly the
/// same set of captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalHeader {
    /// Whether every multi-byte field is byte-swapped relative to the host.
    pub swapped: bool,
    /// Whether timestamps carry nanosecond (rather than microsecond) fractions.
    pub nanos: bool,
    /// The declared link type (e.g. [`LINKTYPE_ETHERNET`]).
    pub linktype: u32,
}

impl GlobalHeader {
    /// Decode and validate a 24-byte global header.
    pub fn parse(header: &[u8; GLOBAL_HEADER_LEN]) -> Result<Self, PcapError> {
        let magic = u32_at(header, 0, false);
        let (swapped, nanos) = match magic {
            MAGIC_MICROS => (false, false),
            MAGIC_NANOS => (false, true),
            m if m.swap_bytes() == MAGIC_MICROS => (true, false),
            m if m.swap_bytes() == MAGIC_NANOS => (true, true),
            m => return Err(PcapError::BadMagic(m)),
        };
        Ok(Self {
            swapped,
            nanos,
            linktype: u32_at(header, 20, swapped),
        })
    }
}

/// Little-endian `u32` at a fixed offset, swapped when the capture is
/// opposite-endian. Crate-internal: the batched ingest layer decodes record
/// headers with the same primitive the streaming reader uses.
pub(crate) fn header_u32(buf: &[u8], offset: usize, swapped: bool) -> u32 {
    u32_at(buf, offset, swapped)
}

/// Streaming pcap reader handling both byte orders and both time resolutions.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
    nanos: bool,
    linktype: u32,
}

impl<R: Read> PcapReader<R> {
    /// Open a pcap stream, parsing and validating the global header.
    pub fn new(mut inner: R) -> Result<Self, PcapError> {
        let mut header = [0u8; GLOBAL_HEADER_LEN];
        if read_fully(&mut inner, &mut header) < header.len() {
            return Err(PcapError::TruncatedGlobalHeader);
        }
        let meta = GlobalHeader::parse(&header)?;
        Ok(Self {
            inner,
            swapped: meta.swapped,
            nanos: meta.nanos,
            linktype: meta.linktype,
        })
    }

    /// The link type declared in the global header.
    pub fn linktype(&self) -> u32 {
        self.linktype
    }

    /// Read the next record; `Ok(None)` signals a clean end of stream.
    ///
    /// After a [`PcapError::recoverable`] error the reader is still aligned
    /// on the next record boundary and may be called again; after any other
    /// error the framing is lost and further reads yield garbage.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>, PcapError> {
        let mut rec_header = [0u8; RECORD_HEADER_LEN];
        match read_fully(&mut self.inner, &mut rec_header) {
            0 => return Ok(None),
            n if n < rec_header.len() => {
                return Err(PcapError::TruncatedRecordHeader { got: n as u32 })
            }
            _ => {}
        }
        let ts_sec = u64::from(u32_at(&rec_header, 0, self.swapped));
        let ts_frac = u64::from(u32_at(&rec_header, 4, self.swapped));
        let incl_len = u32_at(&rec_header, 8, self.swapped);
        let orig_len = u32_at(&rec_header, 12, self.swapped);
        // Defend against corrupt length fields before allocating or reading.
        if incl_len > MAX_SNAPLEN {
            return Err(PcapError::SnapLenOverflow(incl_len));
        }
        let mut data = vec![0u8; incl_len as usize];
        let got = read_fully(&mut self.inner, &mut data);
        if got < data.len() {
            return Err(PcapError::TruncatedRecordBody {
                expected: incl_len,
                got: got as u32,
            });
        }
        // The body is consumed either way, so this check runs after the
        // read: a skip-faults consumer stays aligned on the next record.
        if orig_len == 0 && incl_len > 0 {
            return Err(PcapError::ZeroLengthRecord { incl: incl_len });
        }
        let ts_micros = if self.nanos {
            ts_sec * 1_000_000 + ts_frac / 1000
        } else {
            ts_sec * 1_000_000 + ts_frac
        };
        Ok(Some(PcapRecord {
            ts_micros,
            orig_len,
            data,
        }))
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<PcapRecord, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn write_capture(records: &[(u64, Vec<u8>)]) -> Vec<u8> {
        let mut writer = PcapWriter::new(Vec::new(), LINKTYPE_ETHERNET).unwrap();
        for (ts, frame) in records {
            writer.write_record(*ts, frame).unwrap();
        }
        writer.into_inner().unwrap()
    }

    #[test]
    fn write_read_round_trip() {
        let records = vec![
            (1_000_000u64, vec![1u8, 2, 3, 4]),
            (1_000_500, vec![5u8; 60]),
            (2_123_456, vec![0u8; 0]),
        ];
        let bytes = write_capture(&records);
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.linktype(), LINKTYPE_ETHERNET);
        for (ts, frame) in &records {
            let rec = reader.next_record().unwrap().unwrap();
            assert_eq!(rec.ts_micros, *ts);
            assert_eq!(&rec.data, frame);
            assert_eq!(rec.orig_len as usize, frame.len());
        }
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn iterator_interface() {
        let bytes = write_capture(&[(1, vec![9u8; 3]), (2, vec![8u8; 2])]);
        let reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        let frames: Vec<_> = reader.map(|r| r.unwrap().data).collect();
        assert_eq!(frames, vec![vec![9u8; 3], vec![8u8; 2]]);
    }

    #[test]
    fn big_endian_capture_is_readable() {
        // Hand-build a big-endian (swapped) capture with one 4-byte record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_MICROS.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0i32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&65535u32.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&13u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&4u32.to_be_bytes()); // incl_len
        bytes.extend_from_slice(&4u32.to_be_bytes()); // orig_len
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.linktype(), LINKTYPE_RAW);
        let rec = reader.next_record().unwrap().unwrap();
        assert_eq!(rec.ts_micros, 7_000_013);
        assert_eq!(rec.data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nanosecond_capture_timestamps_are_scaled() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_NANOS.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&0i32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&65535u32.to_le_bytes());
        bytes.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&999_999_000u32.to_le_bytes()); // nanos
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0xaa);
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        let rec = reader.next_record().unwrap().unwrap();
        assert_eq!(rec.ts_micros, 1_999_999);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = vec![0u8; 24];
        assert_eq!(
            PcapReader::new(Cursor::new(bytes)).unwrap_err(),
            PcapError::BadMagic(0)
        );
    }

    #[test]
    fn truncated_global_header_is_rejected() {
        let bytes = write_capture(&[])[..10].to_vec();
        assert_eq!(
            PcapReader::new(Cursor::new(bytes)).unwrap_err(),
            PcapError::TruncatedGlobalHeader
        );
    }

    #[test]
    fn truncated_record_header_is_an_error_not_a_clean_eof() {
        let mut bytes = write_capture(&[]);
        bytes.extend_from_slice(&[0u8; 7]); // 7 of 16 header bytes
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        let err = reader.next_record().unwrap_err();
        assert_eq!(err, PcapError::TruncatedRecordHeader { got: 7 });
        assert_eq!(err.bytes_lost(), 7, "the torn bytes are accounted");
        assert!(err.to_string().contains("7 of 16"));
    }

    #[test]
    fn truncated_record_body_is_an_error() {
        let mut bytes = write_capture(&[(1, vec![1u8; 8])]);
        bytes.truncate(bytes.len() - 4);
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(
            reader.next_record().unwrap_err(),
            PcapError::TruncatedRecordBody {
                expected: 8,
                got: 4
            }
        );
    }

    #[test]
    fn absurd_incl_len_is_rejected() {
        let mut bytes = write_capture(&[]);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&(1u32 << 30).to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(
            reader.next_record().unwrap_err(),
            PcapError::SnapLenOverflow(1 << 30)
        );
    }

    #[test]
    fn zero_length_record_is_recoverable() {
        // header claims orig_len == 0 while carrying 4 bytes; the record
        // after it must still parse (the reader stays aligned).
        let mut bytes = write_capture(&[]);
        bytes.extend_from_slice(&1u32.to_le_bytes()); // ts_sec
        bytes.extend_from_slice(&0u32.to_le_bytes()); // ts_usec
        bytes.extend_from_slice(&4u32.to_le_bytes()); // incl_len
        bytes.extend_from_slice(&0u32.to_le_bytes()); // orig_len = 0: bogus
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&[7, 8, 9]);
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        let err = reader.next_record().unwrap_err();
        assert_eq!(err, PcapError::ZeroLengthRecord { incl: 4 });
        assert!(err.recoverable());
        assert_eq!(err.bytes_lost(), 4);
        let rec = reader.next_record().unwrap().unwrap();
        assert_eq!(rec.data, vec![7, 8, 9]);
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn empty_frames_with_zero_wire_length_remain_valid() {
        // (incl 0, orig 0) is a legitimate empty record, not a fault.
        let bytes = write_capture(&[(5, Vec::new())]);
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        let rec = reader.next_record().unwrap().unwrap();
        assert!(rec.data.is_empty());
        assert_eq!(rec.orig_len, 0);
    }

    #[test]
    fn error_display_names_the_fault() {
        assert!(PcapError::BadMagic(0xdead_beef)
            .to_string()
            .contains("0xdeadbeef"));
        assert!(PcapError::TruncatedRecordBody {
            expected: 20,
            got: 5
        }
        .to_string()
        .contains("5 of 20"));
        assert_eq!(
            WireError::from(PcapError::TruncatedGlobalHeader),
            WireError::Truncated
        );
        assert_eq!(
            WireError::from(PcapError::SnapLenOverflow(1 << 20)),
            WireError::Malformed
        );
    }
}

#[cfg(all(test, not(synscan_standalone)))]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    proptest! {
        /// Arbitrary frame payloads with arbitrary timestamps survive the
        /// pcap writer/reader pair byte-for-byte.
        #[test]
        fn arbitrary_captures_round_trip(
            records in prop::collection::vec(
                (0u64..4_000_000_000_000_000, prop::collection::vec(any::<u8>(), 0..200)),
                0..30,
            )
        ) {
            let mut writer = PcapWriter::new(Vec::new(), LINKTYPE_ETHERNET).unwrap();
            for (ts, frame) in &records {
                writer.write_record(*ts, frame).unwrap();
            }
            let bytes = writer.into_inner().unwrap();
            let reader = PcapReader::new(Cursor::new(bytes)).unwrap();
            let back: Vec<(u64, Vec<u8>)> = reader
                .map(|r| {
                    let r = r.unwrap();
                    (r.ts_micros, r.data)
                })
                .collect();
            prop_assert_eq!(back, records);
        }

        /// Truncating a capture anywhere either yields a clean prefix of the
        /// records or a typed truncation error — never garbage records or a
        /// panic.
        #[test]
        fn truncation_is_detected(cut in 24usize..200) {
            let mut writer = PcapWriter::new(Vec::new(), LINKTYPE_ETHERNET).unwrap();
            for i in 0..5u64 {
                writer.write_record(i * 1000, &[0xabu8; 20]).unwrap();
            }
            let mut bytes = writer.into_inner().unwrap();
            prop_assume!(cut < bytes.len());
            bytes.truncate(cut);
            let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
            let mut seen = 0;
            loop {
                match reader.next_record() {
                    Ok(Some(rec)) => {
                        prop_assert_eq!(rec.data.as_slice(), &[0xabu8; 20][..]);
                        seen += 1;
                    }
                    Ok(None) => break,
                    Err(e) => {
                        prop_assert!(matches!(
                            e,
                            PcapError::TruncatedRecordHeader { got: 1..=15 }
                                | PcapError::TruncatedRecordBody { .. }
                        ));
                        prop_assert!(!e.recoverable());
                        break;
                    }
                }
            }
            prop_assert!(seen <= 5);
        }
    }
}
