//! Classic libpcap capture file format (the `.pcap` tcpdump format).
//!
//! The telescope stores raw traffic as pcap; this module implements the
//! format from scratch: the 24-byte global header (magic `0xa1b2c3d4`,
//! microsecond timestamps) and per-record headers, in both byte orders on
//! read, native-order little-endian on write.

use std::io::{self, Read, Write};

use crate::{Result, WireError};

/// Magic number for microsecond-resolution pcap, as written.
pub const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
/// Magic for nanosecond-resolution pcap (accepted on read).
pub const MAGIC_NANOS: u32 = 0xa1b2_3c4d;
/// Link type LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Link type LINKTYPE_RAW (raw IP).
pub const LINKTYPE_RAW: u32 = 101;

/// One captured record: timestamp plus frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Timestamp in microseconds since the epoch.
    pub ts_micros: u64,
    /// Original length of the frame on the wire.
    pub orig_len: u32,
    /// Captured bytes (may be shorter than `orig_len` if snapped).
    pub data: Vec<u8>,
}

/// Streaming pcap writer.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    inner: W,
    snaplen: u32,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header for the given link type.
    pub fn new(mut inner: W, linktype: u32) -> io::Result<Self> {
        let snaplen: u32 = 65535;
        inner.write_all(&MAGIC_MICROS.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&snaplen.to_le_bytes())?;
        inner.write_all(&linktype.to_le_bytes())?;
        Ok(Self { inner, snaplen })
    }

    /// Append one record, truncating to the snap length if needed.
    pub fn write_record(&mut self, ts_micros: u64, frame: &[u8]) -> io::Result<()> {
        let ts_sec = (ts_micros / 1_000_000) as u32;
        let ts_usec = (ts_micros % 1_000_000) as u32;
        let incl = frame.len().min(self.snaplen as usize);
        self.inner.write_all(&ts_sec.to_le_bytes())?;
        self.inner.write_all(&ts_usec.to_le_bytes())?;
        self.inner.write_all(&(incl as u32).to_le_bytes())?;
        self.inner.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.inner.write_all(&frame[..incl])?;
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming pcap reader handling both byte orders and both time resolutions.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
    nanos: bool,
    linktype: u32,
}

impl<R: Read> PcapReader<R> {
    /// Open a pcap stream, parsing and validating the global header.
    pub fn new(mut inner: R) -> Result<Self> {
        let mut header = [0u8; 24];
        inner
            .read_exact(&mut header)
            .map_err(|_| WireError::Truncated)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let (swapped, nanos) = match magic {
            MAGIC_MICROS => (false, false),
            MAGIC_NANOS => (false, true),
            m if m.swap_bytes() == MAGIC_MICROS => (true, false),
            m if m.swap_bytes() == MAGIC_NANOS => (true, true),
            _ => return Err(WireError::Malformed),
        };
        let read_u32 = |bytes: &[u8]| -> u32 {
            let v = u32::from_le_bytes(bytes.try_into().unwrap());
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let linktype = read_u32(&header[20..24]);
        Ok(Self {
            inner,
            swapped,
            nanos,
            linktype,
        })
    }

    /// The link type declared in the global header.
    pub fn linktype(&self) -> u32 {
        self.linktype
    }

    /// Read the next record; `Ok(None)` signals a clean end of stream.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>> {
        let mut rec_header = [0u8; 16];
        match self.inner.read_exact(&mut rec_header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(_) => return Err(WireError::Truncated),
        }
        let read_u32 = |bytes: &[u8]| -> u32 {
            let v = u32::from_le_bytes(bytes.try_into().unwrap());
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let ts_sec = read_u32(&rec_header[0..4]) as u64;
        let ts_frac = read_u32(&rec_header[4..8]) as u64;
        let incl_len = read_u32(&rec_header[8..12]) as usize;
        let orig_len = read_u32(&rec_header[12..16]);
        // Defend against corrupt length fields: pcap snap lengths never
        // exceed 256 KiB in practice.
        if incl_len > 1 << 18 {
            return Err(WireError::Malformed);
        }
        let mut data = vec![0u8; incl_len];
        self.inner
            .read_exact(&mut data)
            .map_err(|_| WireError::Truncated)?;
        let ts_micros = if self.nanos {
            ts_sec * 1_000_000 + ts_frac / 1000
        } else {
            ts_sec * 1_000_000 + ts_frac
        };
        Ok(Some(PcapRecord {
            ts_micros,
            orig_len,
            data,
        }))
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<PcapRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn write_capture(records: &[(u64, Vec<u8>)]) -> Vec<u8> {
        let mut writer = PcapWriter::new(Vec::new(), LINKTYPE_ETHERNET).unwrap();
        for (ts, frame) in records {
            writer.write_record(*ts, frame).unwrap();
        }
        writer.into_inner().unwrap()
    }

    #[test]
    fn write_read_round_trip() {
        let records = vec![
            (1_000_000u64, vec![1u8, 2, 3, 4]),
            (1_000_500, vec![5u8; 60]),
            (2_123_456, vec![0u8; 0]),
        ];
        let bytes = write_capture(&records);
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.linktype(), LINKTYPE_ETHERNET);
        for (ts, frame) in &records {
            let rec = reader.next_record().unwrap().unwrap();
            assert_eq!(rec.ts_micros, *ts);
            assert_eq!(&rec.data, frame);
            assert_eq!(rec.orig_len as usize, frame.len());
        }
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn iterator_interface() {
        let bytes = write_capture(&[(1, vec![9u8; 3]), (2, vec![8u8; 2])]);
        let reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        let frames: Vec<_> = reader.map(|r| r.unwrap().data).collect();
        assert_eq!(frames, vec![vec![9u8; 3], vec![8u8; 2]]);
    }

    #[test]
    fn big_endian_capture_is_readable() {
        // Hand-build a big-endian (swapped) capture with one 4-byte record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_MICROS.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0i32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&65535u32.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&13u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&4u32.to_be_bytes()); // incl_len
        bytes.extend_from_slice(&4u32.to_be_bytes()); // orig_len
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.linktype(), LINKTYPE_RAW);
        let rec = reader.next_record().unwrap().unwrap();
        assert_eq!(rec.ts_micros, 7_000_013);
        assert_eq!(rec.data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nanosecond_capture_timestamps_are_scaled() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_NANOS.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&0i32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&65535u32.to_le_bytes());
        bytes.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&999_999_000u32.to_le_bytes()); // nanos
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0xaa);
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        let rec = reader.next_record().unwrap().unwrap();
        assert_eq!(rec.ts_micros, 1_999_999);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = vec![0u8; 24];
        assert_eq!(
            PcapReader::new(Cursor::new(bytes)).unwrap_err(),
            WireError::Malformed
        );
    }

    #[test]
    fn truncated_record_body_is_an_error() {
        let mut bytes = write_capture(&[(1, vec![1u8; 8])]);
        bytes.truncate(bytes.len() - 4);
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.next_record().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn absurd_incl_len_is_rejected() {
        let mut bytes = write_capture(&[]);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&(1u32 << 30).to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.next_record().unwrap_err(), WireError::Malformed);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    proptest! {
        /// Arbitrary frame payloads with arbitrary timestamps survive the
        /// pcap writer/reader pair byte-for-byte.
        #[test]
        fn arbitrary_captures_round_trip(
            records in prop::collection::vec(
                (0u64..4_000_000_000_000_000, prop::collection::vec(any::<u8>(), 0..200)),
                0..30,
            )
        ) {
            let mut writer = PcapWriter::new(Vec::new(), LINKTYPE_ETHERNET).unwrap();
            for (ts, frame) in &records {
                writer.write_record(*ts, frame).unwrap();
            }
            let bytes = writer.into_inner().unwrap();
            let reader = PcapReader::new(Cursor::new(bytes)).unwrap();
            let back: Vec<(u64, Vec<u8>)> = reader
                .map(|r| {
                    let r = r.unwrap();
                    (r.ts_micros, r.data)
                })
                .collect();
            prop_assert_eq!(back, records);
        }

        /// Truncating a capture anywhere either yields a clean prefix of the
        /// records or a Truncated error — never garbage records or a panic.
        #[test]
        fn truncation_is_detected(cut in 24usize..200) {
            let mut writer = PcapWriter::new(Vec::new(), LINKTYPE_ETHERNET).unwrap();
            for i in 0..5u64 {
                writer.write_record(i * 1000, &[0xabu8; 20]).unwrap();
            }
            let mut bytes = writer.into_inner().unwrap();
            prop_assume!(cut < bytes.len());
            bytes.truncate(cut);
            let mut reader = PcapReader::new(Cursor::new(bytes)).unwrap();
            let mut seen = 0;
            loop {
                match reader.next_record() {
                    Ok(Some(rec)) => {
                        prop_assert_eq!(rec.data.as_slice(), &[0xabu8; 20][..]);
                        seen += 1;
                    }
                    Ok(None) => break,
                    Err(e) => {
                        prop_assert_eq!(e, WireError::Truncated);
                        break;
                    }
                }
            }
            prop_assert!(seen <= 5);
        }
    }
}
