//! Distributed-runtime equivalence, end to end through the real binary:
//! a 4-process distributed decade must be **byte-identical** to the
//! sequential decade — the rendered `table1.json` artifact and every
//! on-disk store slice — including when a worker is killed mid-slice and
//! the coordinator recovers from its last checkpoint. Plus the protocol
//! hardening matrix: malformed and truncated SYNDIST frames yield typed
//! errors at both the frame layer and a live `--worker` process, and
//! nothing ever panics.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

use synscan::core::Message;
use synscan::distrib::send;
use synscan::wire::frame::{FRAME_HEADER_BYTES, FRAME_MAGIC, FRAME_VERSION, MAX_FRAME_PAYLOAD};
use synscan::wire::{read_frame, write_frame, FrameError};

const REPRO: &str = env!("CARGO_BIN_EXE_repro");

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synscan-distrib-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Run `repro --scale tiny table1` with extra flags into `out`; panic with
/// the child's stderr on failure so CI logs explain themselves.
fn repro_table1(out: &Path, extra: &[&str]) -> Output {
    let output = Command::new(REPRO)
        .arg("--scale")
        .arg("tiny")
        .arg("--out")
        .arg(out)
        .args(extra)
        .arg("table1")
        .output()
        .expect("spawn repro");
    assert!(
        output.status.success(),
        "repro {extra:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

/// Every `*.store` slice in a store directory, name -> bytes.
fn store_slices(store_dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut slices: Vec<(String, Vec<u8>)> = std::fs::read_dir(store_dir)
        .expect("store dir exists")
        .map(|entry| entry.expect("store entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "store"))
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            (name, std::fs::read(&p).expect("read slice"))
        })
        .collect();
    slices.sort_by(|a, b| a.0.cmp(&b.0));
    slices
}

/// The distributed run (with `extra` flags) must leave artifacts
/// byte-identical to the sequential reference: same `table1.json` bytes,
/// same store slice file names, same slice bytes.
fn assert_matches_sequential(name: &str, extra: &[&str]) -> Output {
    let seq = temp_dir(&format!("{name}-seq"));
    let dist = temp_dir(&format!("{name}-dist"));
    repro_table1(&seq, &["--pipeline", "sequential"]);
    let output = repro_table1(&dist, extra);

    let seq_table = std::fs::read(seq.join("table1.json")).expect("sequential table1.json");
    let dist_table = std::fs::read(dist.join("table1.json")).expect("distributed table1.json");
    assert!(
        seq_table == dist_table,
        "{name}: table1.json diverges from the sequential run"
    );

    let seq_slices = store_slices(&seq.join("store"));
    let dist_slices = store_slices(&dist.join("store"));
    assert!(
        !seq_slices.is_empty(),
        "{name}: sequential run wrote no slices"
    );
    let names = |s: &[(String, Vec<u8>)]| s.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
    assert_eq!(
        names(&seq_slices),
        names(&dist_slices),
        "{name}: store slice file sets differ (left sequential, right distributed)"
    );
    for ((slice, seq_bytes), (_, dist_bytes)) in seq_slices.iter().zip(&dist_slices) {
        assert!(
            seq_bytes == dist_bytes,
            "{name}: store slice {slice} diverges from the sequential run"
        );
    }

    let _ = std::fs::remove_dir_all(&seq);
    let _ = std::fs::remove_dir_all(&dist);
    output
}

#[test]
fn four_process_distributed_decade_is_byte_identical_to_sequential() {
    assert_matches_sequential(
        "4proc",
        &["--distributed", "4", "--checkpoint-every", "2000"],
    );
}

#[test]
fn kill_drill_recovers_from_checkpoint_and_stays_byte_identical() {
    // The first assigned worker aborts (as SIGKILL would) right after its
    // first checkpoint; the coordinator must respawn, resume the slice
    // from that checkpoint, and still produce the sequential bytes. The
    // tight cadence guarantees a checkpoint cuts — and the drill fires —
    // even inside the smallest tiny-scale slice (the low-volume 2015
    // stream is assigned first).
    let output = assert_matches_sequential(
        "killdrill",
        &[
            "--distributed",
            "4",
            "--checkpoint-every",
            "25",
            "--distributed-kill-drill",
            "1",
        ],
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("respawning worker"),
        "the kill drill must cost a worker its life:\n{stderr}"
    );
    assert!(
        stderr.contains("distributed supervision:"),
        "the recovery must be reported as a supervision event:\n{stderr}"
    );
}

#[test]
fn cross_host_kill_drill_resumes_without_the_dead_workers_disk() {
    // The cross-host resume proof: workers spill their checkpoints to
    // per-worker local directories (stand-ins for per-host disks), the
    // drilled worker aborts mid-slice, and the coordinator scrubs the dead
    // worker's spill before the respawn. The replacement — conceptually on
    // a different host with no shared filesystem — must resume from the
    // coordinator-held checkpoint in the retry Assign and still produce
    // the sequential bytes.
    let spill = temp_dir("xhost-spill");
    let spill_arg = spill.to_string_lossy().into_owned();
    let output = assert_matches_sequential(
        "xhost",
        &[
            "--distributed",
            "4",
            "--checkpoint-every",
            "25",
            "--distributed-kill-drill",
            "1",
            "--checkpoint-dir",
            &spill_arg,
        ],
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("respawning worker"),
        "the kill drill must cost a worker its life:\n{stderr}"
    );
    let scrub_line = stderr
        .lines()
        .find(|l| l.contains("scrubbed dead worker checkpoint dir"))
        .unwrap_or_else(|| panic!("no scrub line in stderr:\n{stderr}"));
    // The scrubbed directory must actually be gone — resume cannot have
    // read anything from it.
    let scrubbed = scrub_line
        .split("checkpoint dir ")
        .nth(1)
        .and_then(|rest| rest.split(" (resume").next())
        .expect("scrub line names the directory");
    assert!(
        !Path::new(scrubbed).exists(),
        "scrubbed spill {scrubbed} still exists"
    );
    // Surviving workers did spill: the audit trail exists for them.
    let spilled_dirs = std::fs::read_dir(&spill)
        .map(|entries| entries.count())
        .unwrap_or(0);
    assert!(
        spilled_dirs > 0,
        "no surviving worker left a checkpoint spill in {}",
        spill.display()
    );
    let _ = std::fs::remove_dir_all(&spill);
}

#[test]
fn benign_net_chaos_is_byte_identical() {
    // Short writes and sub-deadline stalls on every worker connection must
    // be absorbed by the frame layer with zero effect on the results.
    let output = assert_matches_sequential(
        "netchaos",
        &[
            "--distributed",
            "2",
            "--checkpoint-every",
            "2000",
            "--net-chaos-seed",
            "42",
            "--net-chaos-profile",
            "benign",
        ],
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("net-chaos plan armed"),
        "chaos was requested but never armed:\n{stderr}"
    );
}

// ---------------------------------------------------------------------------
// Protocol-frame hardening matrix
// ---------------------------------------------------------------------------

fn valid_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, kind, payload).expect("in-memory frame");
    bytes
}

fn read_back(bytes: &[u8]) -> Result<Option<synscan::wire::FramedMessage>, FrameError> {
    read_frame(&mut std::io::Cursor::new(bytes), MAX_FRAME_PAYLOAD)
}

#[test]
fn malformed_and_truncated_frames_yield_typed_errors_never_panics() {
    let frame = valid_frame(3, b"have you SYN me?");
    assert!(matches!(read_back(&frame), Ok(Some(_))));

    // Truncation at every byte boundary: empty input is a clean close,
    // dying inside the header is Truncated, dying inside the payload is a
    // typed I/O error. No cut may panic.
    for cut in 0..frame.len() {
        match read_back(&frame[..cut]) {
            Ok(None) => assert_eq!(cut, 0, "only EOF-between-frames is a clean close"),
            Err(FrameError::Truncated) => {
                assert!((1..FRAME_HEADER_BYTES).contains(&cut), "Truncated at {cut}")
            }
            Err(FrameError::Io(_)) => {
                assert!(cut >= FRAME_HEADER_BYTES, "Io mid-header at {cut}")
            }
            other => panic!("cut at {cut}: unexpected {other:?}"),
        }
    }

    // Corrupted magic.
    let mut bad = frame.clone();
    bad[0] ^= 0xff;
    assert!(matches!(read_back(&bad), Err(FrameError::BadMagic)));

    // Unsupported protocol version.
    let mut bad = frame.clone();
    bad[8..12].copy_from_slice(&(FRAME_VERSION + 9).to_le_bytes());
    assert!(matches!(
        read_back(&bad),
        Err(FrameError::UnsupportedVersion(v)) if v == FRAME_VERSION + 9
    ));

    // A length field past the cap must be rejected before any allocation.
    let mut bad = frame.clone();
    bad[13..21].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        read_back(&bad),
        Err(FrameError::Oversized {
            announced: u64::MAX,
            ..
        })
    ));

    // Payload corruption and checksum corruption both fail the checksum.
    let mut bad = frame.clone();
    bad[FRAME_HEADER_BYTES] ^= 0x01;
    assert!(matches!(read_back(&bad), Err(FrameError::ChecksumMismatch)));
    let mut bad = frame.clone();
    bad[21] ^= 0x01;
    assert!(matches!(read_back(&bad), Err(FrameError::ChecksumMismatch)));

    // The kind byte is deliberately outside the checksum (the protocol
    // layer validates it): flipping it still reads as a whole frame.
    let mut flipped = frame;
    flipped[12] = 250;
    let message = read_back(&flipped).expect("frame").expect("whole");
    assert_eq!(message.kind, 250);
    assert_eq!(message.payload, b"have you SYN me?");
}

/// Feed a live `repro --worker` process hostile stdin bytes; the worker
/// must exit non-zero with a diagnosed error on stderr — and never panic.
fn worker_rejects(name: &str, stdin_bytes: &[u8]) {
    let mut child = Command::new(REPRO)
        .arg("--worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn worker");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(stdin_bytes)
        .expect("write hostile bytes");
    // stdin drops here: the worker sees EOF after the hostile bytes.
    let output = child.wait_with_output().expect("worker exits");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !output.status.success(),
        "{name}: worker accepted hostile input"
    );
    assert!(
        stderr.contains("repro: worker:"),
        "{name}: expected a diagnosed worker error, got:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{name}: the worker panicked:\n{stderr}"
    );
}

#[test]
fn a_live_worker_survives_the_hostile_stdin_matrix_with_typed_errors() {
    // Garbage that is long enough to fill a header but is no frame.
    worker_rejects("bad-magic", b"this is not a SYNDIST frame, not even close");

    // A half-written header: death mid-frame.
    worker_rejects("truncated-header", &FRAME_MAGIC[..6]);

    // A whole, checksum-valid frame whose payload is not a decodable
    // protocol message.
    worker_rejects("undecodable-payload", &valid_frame(2, b"junk payload"));

    // A valid message the worker must refuse mid-handshake: workers serve
    // Assign/Shutdown, they do not receive Hello.
    let mut hello = Vec::new();
    send(
        &mut hello,
        &Message::Hello {
            proto: synscan::core::PROTO_VERSION,
            worker: "imposter".into(),
        },
    )
    .expect("encode hello");
    worker_rejects("out-of-protocol-message", &hello);

    // An announced payload length past the frame cap.
    let mut oversized = valid_frame(2, b"");
    oversized[13..21].copy_from_slice(&u64::MAX.to_le_bytes());
    worker_rejects("oversized-length", &oversized);

    // A corrupted checksum on an otherwise valid frame.
    let mut corrupt = valid_frame(2, b"junk payload");
    corrupt[21] ^= 0x01;
    worker_rejects("checksum-mismatch", &corrupt);
}
