//! Fault-injection equivalence and robustness, end to end.
//!
//! Two families of guarantees:
//!
//! 1. **Benign-fault equivalence**: a stream decayed with faults the fault
//!    policy recovers from *losslessly* (injected adjacent duplicates at the
//!    record level, inserted garbage frames at the pcap level) must produce
//!    a `YearAnalysis` — and capture statistics — byte-identical to the
//!    clean run, in every execution shape: sequential and sharded, streamed
//!    and materialized.
//! 2. **Fatal faults are errors, not panics**: under the strict `Fail`
//!    policy a truncation surfaces as a typed `Err` from both pipeline
//!    drivers, and no file in the malformed-pcap corpus can panic any code
//!    path under any policy.

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

use synscan::analyze::{analyze_pcap, AnalyzeError, AnalyzeOptions};
use synscan::core::pipeline::PipelineError;
use synscan::core::PipelineMode;
use synscan::experiment::Experiment;
use synscan::wire::chaos::{corrupt_pcap, ChaosPlan, Fault};
use synscan::wire::pcap::PcapReader;
use synscan::wire::stream::{FaultPolicy, StreamError};
use synscan::wire::PcapError;
use synscan::GeneratorConfig;

fn corpus_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data/corrupt")
        .join(name)
}

fn corpus_file(name: &str) -> BufReader<File> {
    BufReader::new(File::open(corpus_path(name)).expect("corpus file exists"))
}

/// A small clean capture for the pcap-level drills.
fn clean_capture() -> Vec<u8> {
    use synscan::telescope::capture::export_pcap;
    let experiment = Experiment::new(GeneratorConfig::tiny());
    let output = synscan::synthesis::generate::generate_year(
        &synscan::YearConfig::for_year(2020),
        experiment.config(),
        experiment.registry(),
        experiment.dark(),
    );
    export_pcap(&output.records, Vec::new()).expect("export to Vec")
}

// ---------------------------------------------------------------------------
// 1. Benign-fault equivalence matrix
// ---------------------------------------------------------------------------

#[test]
fn benign_record_faults_are_invisible_in_every_execution_shape() {
    let run_with = |chaos: Option<ChaosPlan>, mode: PipelineMode, materialize: bool| {
        let mut experiment = Experiment::new(GeneratorConfig::tiny())
            .with_pipeline_mode(mode)
            .with_materialize(materialize)
            .with_fault_policy(FaultPolicy::SkipRecord);
        if let Some(plan) = chaos {
            experiment = experiment.with_chaos(plan);
        }
        experiment.run_year(2020)
    };
    let clean = run_with(None, PipelineMode::Sequential, false);
    assert!(!clean.faults.any());
    for materialize in [false, true] {
        for mode in [
            PipelineMode::Sequential,
            PipelineMode::Sharded { workers: 3 },
        ] {
            let chaotic = run_with(Some(ChaosPlan::benign(0xbead)), mode, materialize);
            let label = format!("mode={mode:?} materialize={materialize}");
            assert_eq!(
                clean.analysis, chaotic.analysis,
                "{label}: benign faults leaked into the analysis"
            );
            assert_eq!(
                clean.capture, chaotic.capture,
                "{label}: benign faults leaked into the capture statistics"
            );
            assert!(
                chaotic.faults.duplicates_dropped > 0,
                "{label}: the drill must actually have injected something"
            );
            assert_eq!(chaotic.faults.records_skipped, 0, "{label}");
            assert_eq!(chaotic.faults.streams_truncated, 0, "{label}");
        }
    }
}

#[test]
fn garbage_frames_in_a_pcap_are_counted_but_do_not_change_the_analysis() {
    // Inserted garbage frames parse as valid pcap records but not as
    // Ethernet/IPv4/TCP — consumers count them as non-TCP frames and move
    // on. Benign even under the strict policy.
    let bytes = clean_capture();
    let plan = ChaosPlan {
        seed: 0x5eed,
        faults: vec![Fault::InsertGarbage { period: 9 }],
    };
    let (dirty, log) = corrupt_pcap(&bytes, &plan).expect("clean input rewrites");
    assert!(log.garbage_frames > 0);

    let options = AnalyzeOptions::default();
    let clean = analyze_pcap(std::io::Cursor::new(bytes), &options).expect("clean capture");
    let decayed = analyze_pcap(std::io::Cursor::new(dirty), &options).expect("garbage is benign");
    assert_eq!(clean.analysis, decayed.analysis);
    assert!(!decayed.faults.any(), "nothing was skipped — only ignored");
}

#[test]
fn duplicated_pcap_records_are_dropped_under_skip_and_match_the_clean_run() {
    let bytes = clean_capture();
    let plan = ChaosPlan {
        seed: 0xd0d0,
        faults: vec![Fault::DuplicateRecord { period: 11 }],
    };
    let (dirty, log) = corrupt_pcap(&bytes, &plan).expect("clean input rewrites");
    assert!(log.duplicates > 0);

    let options = AnalyzeOptions {
        policy: FaultPolicy::SkipRecord,
        ..AnalyzeOptions::default()
    };
    let clean = analyze_pcap(std::io::Cursor::new(bytes), &options).expect("clean capture");
    let decayed = analyze_pcap(std::io::Cursor::new(dirty), &options).expect("skip drops dupes");
    assert_eq!(clean.analysis, decayed.analysis);
    // Any duplicates native to the capture are dropped in both runs; the
    // decayed run drops the injected ones on top.
    assert_eq!(
        decayed.faults.duplicates_dropped,
        clean.faults.duplicates_dropped + log.duplicates
    );
}

// ---------------------------------------------------------------------------
// 2. Fatal faults: typed errors from both drivers, never panics
// ---------------------------------------------------------------------------

#[test]
fn mid_stream_eof_is_an_error_from_both_drivers_under_fail() {
    let plan = ChaosPlan {
        seed: 0xe0f0,
        faults: vec![Fault::MidStreamEof { after_records: 500 }],
    };
    for materialize in [false, true] {
        for mode in [
            PipelineMode::Sequential,
            PipelineMode::Sharded { workers: 3 },
        ] {
            let result = Experiment::new(GeneratorConfig::tiny())
                .with_pipeline_mode(mode)
                .with_materialize(materialize)
                .with_chaos(plan.clone())
                .try_run_year(2020);
            match result {
                Err(PipelineError::Stream(StreamError::Truncated { records_seen })) => {
                    assert_eq!(
                        records_seen, 500,
                        "mode={mode:?} materialize={materialize}: cut offset is exact"
                    );
                }
                other => panic!(
                    "mode={mode:?} materialize={materialize}: expected a truncation error, \
                     got {other:?}"
                ),
            }
        }
    }
}

#[test]
fn mid_stream_eof_under_stop_clean_keeps_the_prefix() {
    let plan = ChaosPlan {
        seed: 0xe0f0,
        faults: vec![Fault::MidStreamEof { after_records: 500 }],
    };
    for mode in [
        PipelineMode::Sequential,
        PipelineMode::Sharded { workers: 3 },
    ] {
        let run = Experiment::new(GeneratorConfig::tiny())
            .with_pipeline_mode(mode)
            .with_fault_policy(FaultPolicy::StopClean)
            .with_chaos(plan.clone())
            .try_run_year(2020)
            .expect("stop-clean turns the cut into a clean end");
        assert_eq!(run.faults.streams_truncated, 1, "{mode:?}");
        assert!(
            run.analysis.total_packets <= 500,
            "{mode:?}: only the prefix survives"
        );
    }
}

#[test]
fn heavy_timestamp_jitter_never_panics_under_skip() {
    // Jitter large enough to guarantee order regressions; the skip policy
    // drops the regressing records and completes.
    let plan = ChaosPlan {
        seed: 0x717e,
        faults: vec![Fault::JitterTimestamp {
            period: 3,
            max_micros: 3_600_000_000, // one hour
        }],
    };
    for mode in [
        PipelineMode::Sequential,
        PipelineMode::Sharded { workers: 3 },
    ] {
        let run = Experiment::new(GeneratorConfig::tiny())
            .with_pipeline_mode(mode)
            .with_fault_policy(FaultPolicy::SkipRecord)
            .with_chaos(plan.clone())
            .try_run_year(2020)
            .expect("skip policy survives jitter");
        assert!(run.analysis.total_packets > 0, "{mode:?}");
    }
}

// ---------------------------------------------------------------------------
// 3. Malformed-pcap corpus: exact error taxonomy, no panics anywhere
// ---------------------------------------------------------------------------

#[test]
fn corpus_files_map_to_their_exact_pcap_error() {
    // Header-level faults error at open.
    match PcapReader::new(corpus_file("bad_magic.pcap")) {
        Err(PcapError::BadMagic(magic)) => assert_eq!(magic, 0xdead_beef),
        other => panic!("bad_magic.pcap: {other:?}"),
    }
    assert!(matches!(
        PcapReader::new(corpus_file("truncated_header.pcap")),
        Err(PcapError::TruncatedGlobalHeader)
    ));

    // Record-level faults error on the first pull.
    let first_error = |name: &str| {
        PcapReader::new(corpus_file(name))
            .expect("global header is valid")
            .next_record()
            .expect_err("first record is malformed")
    };
    assert_eq!(
        first_error("truncated_record.pcap"),
        PcapError::TruncatedRecordBody {
            expected: 20,
            got: 5
        }
    );
    assert_eq!(
        first_error("snaplen_overflow.pcap"),
        PcapError::SnapLenOverflow(1 << 30)
    );
    let zero = first_error("zero_length.pcap");
    assert_eq!(zero, PcapError::ZeroLengthRecord { incl: 8 });
    assert!(zero.recoverable(), "zero-length records are skippable");
    assert!(!PcapError::TruncatedGlobalHeader.recoverable());
}

#[test]
fn no_corpus_file_panics_any_policy_or_pipeline_path() {
    let corpus = [
        "bad_magic.pcap",
        "truncated_header.pcap",
        "truncated_record.pcap",
        "snaplen_overflow.pcap",
        "zero_length.pcap",
    ];
    for name in corpus {
        for policy in [
            FaultPolicy::Fail,
            FaultPolicy::SkipRecord,
            FaultPolicy::StopClean,
        ] {
            for materialize in [false, true] {
                let options = AnalyzeOptions {
                    monitored: Some(64),
                    policy,
                    materialize,
                    ..AnalyzeOptions::default()
                };
                // Ok (recovered to an empty/partial analysis) or a typed
                // error — anything but a panic.
                let _ = analyze_pcap(corpus_file(name), &options);
            }
        }
    }
}

#[test]
fn skip_policy_recovers_what_the_corpus_allows() {
    // Records behind an unrecoverable fault are lost (the stream ends
    // cleanly); records behind a recoverable fault are analyzed.
    let options = AnalyzeOptions {
        monitored: Some(64),
        policy: FaultPolicy::SkipRecord,
        ..AnalyzeOptions::default()
    };
    let torn = analyze_pcap(corpus_file("truncated_record.pcap"), &options)
        .expect("skip policy survives a torn record");
    assert_eq!(torn.analysis.total_packets, 0);
    assert_eq!(torn.faults.streams_truncated, 1);

    let zero = analyze_pcap(corpus_file("zero_length.pcap"), &options)
        .expect("skip policy steps over a zero-length record");
    assert_eq!(zero.faults.records_skipped, 1);
    assert_eq!(zero.faults.bytes_dropped, 8);

    // And the strict policy refuses both, with the matching variant.
    let strict = AnalyzeOptions {
        policy: FaultPolicy::Fail,
        ..options
    };
    assert!(matches!(
        analyze_pcap(corpus_file("truncated_record.pcap"), &strict),
        Err(AnalyzeError::Pcap(PcapError::TruncatedRecordBody { .. }))
    ));
    assert!(matches!(
        analyze_pcap(corpus_file("zero_length.pcap"), &strict),
        Err(AnalyzeError::Pcap(PcapError::ZeroLengthRecord { .. }))
    ));
}
