//! Mapped-ingest equivalence: the zero-copy mapped reader (single-queue and
//! multi-queue) must be observably identical to the Read-based
//! `PcapStream` — same records in the same order, same fault counters, same
//! terminal errors — on clean captures and on the corrupt corpus, under
//! every fault policy, in every pipeline shape.
//!
//! Plus a record-boundary fuzz drill: for pseudo-random captures of mixed
//! frame sizes, `PcapSlice::partition` must tile the record area exactly,
//! and the multi-queue merge must reproduce the sequential drain for every
//! queue count.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use synscan::analyze::{analyze_pcap, analyze_pcap_mapped, AnalyzeOptions};
use synscan::core::PipelineMode;
use synscan::experiment::Experiment;
use synscan::telescope::capture::{export_pcap, import_pcap_mapped, import_pcap_with_policy};
use synscan::wire::ingest::{IngestMode, IngestQueues, MappedCapture, MappedPcapStream, PcapSlice};
use synscan::wire::pcap::{PcapWriter, GLOBAL_HEADER_LEN, LINKTYPE_ETHERNET};
use synscan::wire::stream::{FaultCounters, FaultPolicy, StreamError, TryRecordStream};
use synscan::wire::ProbeRecord;
use synscan::GeneratorConfig;

const POLICIES: [FaultPolicy; 3] = [
    FaultPolicy::Fail,
    FaultPolicy::SkipRecord,
    FaultPolicy::StopClean,
];

const CORPUS: [&str; 5] = [
    "bad_magic.pcap",
    "truncated_header.pcap",
    "truncated_record.pcap",
    "snaplen_overflow.pcap",
    "zero_length.pcap",
];

fn corpus_bytes(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data/corrupt")
        .join(name);
    fs::read(path).expect("corpus file exists")
}

/// A small clean telescope capture.
fn clean_capture() -> Vec<u8> {
    let experiment = Experiment::new(GeneratorConfig::tiny());
    let output = synscan::synthesis::generate::generate_year(
        &synscan::YearConfig::for_year(2020),
        experiment.config(),
        experiment.registry(),
        experiment.dark(),
    );
    export_pcap(&output.records, Vec::new()).expect("export to Vec")
}

type ImportOutcome = Result<(Vec<ProbeRecord>, FaultCounters), StreamError>;

fn import_read(bytes: &[u8], policy: FaultPolicy) -> ImportOutcome {
    import_pcap_with_policy(bytes, policy)
}

fn import_mapped(bytes: &[u8], policy: FaultPolicy, queues: usize) -> ImportOutcome {
    let capture = Arc::new(MappedCapture::from_bytes(bytes.to_vec()));
    import_pcap_mapped(&capture, policy, queues)
}

// ---------------------------------------------------------------------------
// 1. Corrupt corpus: identical records, counters, and terminal errors
// ---------------------------------------------------------------------------

#[test]
fn corrupt_corpus_is_identical_across_every_ingest_path() {
    for name in CORPUS {
        let bytes = corpus_bytes(name);
        for policy in POLICIES {
            let reference = import_read(&bytes, policy);
            for queues in [1, 2, 3] {
                assert_eq!(
                    reference,
                    import_mapped(&bytes, policy, queues),
                    "{name} under {policy:?} with {queues} queue(s) diverged \
                     from the Read-based stream"
                );
            }
        }
    }
}

#[test]
fn clean_capture_imports_identically_across_every_ingest_path() {
    let bytes = clean_capture();
    for policy in POLICIES {
        let reference = import_read(&bytes, policy);
        let (records, faults) = reference.as_ref().expect("clean capture imports");
        assert!(!records.is_empty() && !faults.any());
        for queues in [1, 4] {
            assert_eq!(
                reference,
                import_mapped(&bytes, policy, queues),
                "clean capture under {policy:?} with {queues} queue(s)"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Full analysis equivalence, sequential and sharded
// ---------------------------------------------------------------------------

#[test]
fn analysis_is_identical_for_read_and_mapped_ingest_in_every_shape() {
    let bytes = clean_capture();
    for pipeline in [
        PipelineMode::Sequential,
        PipelineMode::Sharded { workers: 3 },
    ] {
        for materialize in [false, true] {
            let base = AnalyzeOptions {
                monitored: Some(64),
                year: 2020,
                pipeline,
                materialize,
                ..AnalyzeOptions::default()
            };
            let reference =
                analyze_pcap(bytes.as_slice(), &base).expect("read-based analysis succeeds");
            for ingest in [
                IngestMode::Mapped { queues: 1 },
                IngestMode::Mapped { queues: 3 },
            ] {
                let options = AnalyzeOptions {
                    ingest,
                    ..base.clone()
                };
                let mapped =
                    analyze_pcap_mapped(bytes.clone(), &options).expect("mapped analysis succeeds");
                let label = format!("{pipeline:?} materialize={materialize} ingest={ingest}");
                assert_eq!(reference.analysis, mapped.analysis, "{label}: analysis");
                assert_eq!(
                    serde_json::to_value(&reference.summary).unwrap(),
                    serde_json::to_value(&mapped.summary).unwrap(),
                    "{label}: summary"
                );
                assert_eq!(reference.faults, mapped.faults, "{label}: faults");
                assert_eq!(
                    reference.non_tcp_frames, mapped.non_tcp_frames,
                    "{label}: non-TCP tally"
                );
            }
        }
    }
}

#[test]
fn corrupt_corpus_analysis_matches_read_ingest_under_every_policy() {
    for name in CORPUS {
        let bytes = corpus_bytes(name);
        for policy in POLICIES {
            for queues in [1, 3] {
                let base = AnalyzeOptions {
                    monitored: Some(64),
                    policy,
                    ..AnalyzeOptions::default()
                };
                let reference = analyze_pcap(bytes.as_slice(), &base);
                let mapped = analyze_pcap_mapped(
                    bytes.clone(),
                    &AnalyzeOptions {
                        ingest: IngestMode::Mapped { queues },
                        ..base
                    },
                );
                let label = format!("{name} under {policy:?} with {queues} queue(s)");
                match (reference, mapped) {
                    (Ok(r), Ok(m)) => {
                        assert_eq!(r.analysis, m.analysis, "{label}: analysis");
                        assert_eq!(r.faults, m.faults, "{label}: faults");
                    }
                    (Err(r), Err(m)) => assert_eq!(r, m, "{label}: error"),
                    (r, m) => panic!("{label}: read={r:?} vs mapped={m:?}"),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Record-boundary partition fuzz
// ---------------------------------------------------------------------------

/// Deterministic xorshift so the drill needs no RNG dependency.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A capture of `n` records with pseudo-random frame sizes (including many
/// non-TCP frames, so decode outcomes vary across partition points).
fn fuzz_capture(seed: u64, n: usize) -> Vec<u8> {
    let mut state = seed | 1;
    let mut writer = PcapWriter::new(Vec::new(), LINKTYPE_ETHERNET).expect("in-memory header");
    for i in 0..n {
        let len = 1 + (xorshift(&mut state) % 120) as usize;
        let frame: Vec<u8> = (0..len)
            .map(|j| (xorshift(&mut state) ^ j as u64) as u8)
            .collect();
        writer
            .write_record(1_000_000 + i as u64, &frame)
            .expect("in-memory record");
    }
    writer.into_inner().expect("in-memory flush")
}

#[test]
fn partition_tiles_every_fuzzed_capture_exactly() {
    for seed in [3, 0x5eed, 0xdead_beef] {
        for n in [0, 1, 2, 7, 40] {
            let bytes = fuzz_capture(seed, n);
            let slice = PcapSlice::new(&bytes).expect("valid header");
            for parts in 1..=8 {
                let ranges = slice.partition(parts);
                assert_eq!(ranges.len(), parts, "seed={seed:#x} n={n} parts={parts}");
                assert_eq!(
                    ranges[0].0, GLOBAL_HEADER_LEN,
                    "first range starts at the record area"
                );
                assert_eq!(
                    ranges[parts - 1].1,
                    bytes.len(),
                    "last range ends at the capture end"
                );
                for pair in ranges.windows(2) {
                    assert_eq!(
                        pair[0].1, pair[1].0,
                        "seed={seed:#x} n={n} parts={parts}: ranges must tile"
                    );
                }
            }
        }
    }
}

#[test]
fn fuzzed_captures_drain_identically_sequential_and_parallel() {
    let drain = |stream: &mut dyn TryRecordStream| {
        let mut records = Vec::new();
        let terminal = loop {
            match stream.try_next_batch() {
                Ok(Some(batch)) => records.extend_from_slice(batch),
                Ok(None) => break None,
                Err(e) => break Some(e),
            }
        };
        (records, terminal)
    };
    for seed in [7, 0xf00d, 0xfeed_5eed] {
        for n in [1, 13, 64] {
            let bytes = fuzz_capture(seed, n);
            for policy in POLICIES {
                let mut sequential =
                    MappedPcapStream::with_policy(&bytes, policy).expect("valid header");
                let reference = drain(&mut sequential);
                let reference_counts = (
                    sequential.non_tcp_frames(),
                    sequential.order_violations(),
                    sequential.faults(),
                );
                let capture = Arc::new(MappedCapture::from_bytes(bytes.clone()));
                for queues in [1, 2, 3, 5] {
                    // `exact` bypasses the core-count clamp so the threaded
                    // merge paths (and the queues=1 inline backend) are
                    // exercised whatever box runs the suite.
                    let mut parallel = IngestQueues::exact(Arc::clone(&capture), queues, policy)
                        .expect("valid header")
                        .spawn();
                    let label = format!("seed={seed:#x} n={n} {policy:?} queues={queues}");
                    assert_eq!(reference, drain(&mut parallel), "{label}: records/terminal");
                    assert_eq!(
                        reference_counts,
                        (
                            parallel.non_tcp_frames(),
                            parallel.order_violations(),
                            parallel.faults(),
                        ),
                        "{label}: counters"
                    );
                }
            }
        }
    }
}
