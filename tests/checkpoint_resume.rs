//! End-to-end crash-safety: experiment-level interrupt/resume equivalence,
//! chaos interplay with checkpointed fault counters, and worker-panic
//! recovery via the single retry-from-checkpoint.
//!
//! The contract under test: a run that is interrupted (stop flag or drill)
//! and then resumed from its on-disk checkpoint produces output
//! bit-identical to an uninterrupted run — analysis, capture statistics,
//! and fault counters alike — in both pipeline modes, with and without
//! injected stream chaos.

use std::path::PathBuf;
use std::sync::atomic::AtomicBool;

use synscan::core::InjectedFaults;
use synscan::experiment::{CheckpointSpec, DecadeStatus, Experiment, YearRun, YearStatus};
use synscan::wire::{ChaosPlan, FaultPolicy};
use synscan::{GeneratorConfig, PipelineMode, YearConfig};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synscan-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp checkpoint dir");
    dir
}

fn assert_same_run(resumed: &YearRun, baseline: &YearRun) {
    assert_eq!(resumed.analysis, baseline.analysis);
    assert_eq!(resumed.capture, baseline.capture);
    assert_eq!(resumed.faults, baseline.faults);
    assert_eq!(resumed.truth, baseline.truth);
}

/// Interrupt after the first checkpoint, resume, and demand bit-identical
/// output versus the uninterrupted run.
fn interrupt_resume_roundtrip(name: &str, experiment: &Experiment, mode: PipelineMode) {
    let cfg = YearConfig::for_year(2020);
    let baseline = experiment
        .try_run_year_cfg_mode(&cfg, mode)
        .expect("baseline year runs clean");

    let dir = temp_dir(name);
    let interrupted = experiment
        .try_run_year_checkpointed(
            &cfg,
            mode,
            &CheckpointSpec::new(&dir).every(1).interrupt_after(Some(1)),
            None,
        )
        .expect("interrupt drill is not an error");
    let YearStatus::Interrupted { checkpoints, .. } = interrupted else {
        panic!("the drill must interrupt the run, got {interrupted:?}");
    };
    assert_eq!(checkpoints, 1, "interrupted right after the first cut");

    let resumed = experiment
        .try_run_year_checkpointed(&cfg, mode, &CheckpointSpec::new(&dir).resume(true), None)
        .expect("resume completes");
    let YearStatus::Completed { run, report, .. } = resumed else {
        panic!("resumed run must complete, got {resumed:?}");
    };
    assert!(report.failures.is_empty());
    assert_eq!(report.retried, 0);
    assert_same_run(&run, &baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sequential_interrupt_and_resume_is_bit_identical() {
    let experiment = Experiment::new(GeneratorConfig::tiny());
    interrupt_resume_roundtrip("ckpt-seq", &experiment, PipelineMode::Sequential);
}

#[test]
fn sharded_interrupt_and_resume_is_bit_identical() {
    let experiment = Experiment::new(GeneratorConfig::tiny());
    interrupt_resume_roundtrip(
        "ckpt-shard",
        &experiment,
        PipelineMode::Sharded { workers: 3 },
    );
}

#[test]
fn chaotic_interrupted_run_equals_uninterrupted_chaotic_run() {
    // Satellite of the robustness story: the fault counters accumulated
    // before the interruption are checkpointed with everything else, so an
    // interrupted-and-resumed chaotic run reports exactly the same drops as
    // an uninterrupted chaotic run — nothing double-counted, nothing lost.
    for mode in [
        PipelineMode::Sequential,
        PipelineMode::Sharded { workers: 3 },
    ] {
        let experiment = Experiment::new(GeneratorConfig::tiny())
            .with_fault_policy(FaultPolicy::SkipRecord)
            .with_chaos(ChaosPlan::benign(0xfeed));
        let cfg = YearConfig::for_year(2020);
        let baseline = experiment
            .try_run_year_cfg_mode(&cfg, mode)
            .expect("chaotic year survives under skip");
        assert!(
            baseline.faults.duplicates_dropped > 0,
            "the chaos plan must actually fire for this test to mean anything"
        );

        let dir = temp_dir(&format!("ckpt-chaos-{mode}"));
        let interrupted = experiment
            .try_run_year_checkpointed(
                &cfg,
                mode,
                &CheckpointSpec::new(&dir).every(1).interrupt_after(Some(1)),
                None,
            )
            .expect("interrupt drill is not an error");
        assert!(matches!(interrupted, YearStatus::Interrupted { .. }));

        let resumed = experiment
            .try_run_year_checkpointed(&cfg, mode, &CheckpointSpec::new(&dir).resume(true), None)
            .expect("chaotic resume completes");
        let YearStatus::Completed { run, .. } = resumed else {
            panic!("resumed chaotic run must complete, got {resumed:?}");
        };
        assert_same_run(&run, &baseline);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn injected_worker_panic_recovers_via_one_retry_from_checkpoint() {
    // A shard worker panics mid-run; the supervisor contains it, the
    // experiment layer retries once from the last on-disk checkpoint, and
    // the final result is indistinguishable from a clean run (the injected
    // fault is one-shot, so the retry succeeds).
    let mode = PipelineMode::Sharded { workers: 3 };
    let clean = Experiment::new(GeneratorConfig::tiny());
    let cfg = YearConfig::for_year(2020);
    let baseline = clean
        .try_run_year_cfg_mode(&cfg, mode)
        .expect("clean baseline");

    let experiment = clean.with_injected_faults(InjectedFaults::panic_once(1));
    let dir = temp_dir("ckpt-panic-retry");
    let status = experiment
        .try_run_year_checkpointed(&cfg, mode, &CheckpointSpec::new(&dir).every(1), None)
        .expect("the contained panic is retried, not surfaced");
    let YearStatus::Completed { run, report, .. } = status else {
        panic!("retried run must complete, got {status:?}");
    };
    assert_eq!(report.retried, 1, "exactly one retry was spent");
    assert_same_run(&run, &baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stop_flag_interrupts_the_decade_and_resume_finishes_it_byte_identically() {
    // The SIGINT path end to end, minus the actual signal: a pre-raised
    // stop flag makes every year checkpoint and stop immediately; a second
    // invocation with --resume semantics finishes the decade, and the
    // rendered report (the actual table1.json bytes) equals the
    // uninterrupted run's.
    let plain = Experiment::new(GeneratorConfig::tiny())
        .try_run_decade()
        .expect("plain decade runs clean");
    let plain_json = serde_json::to_string(&plain.report()).unwrap();

    let dir = temp_dir("ckpt-decade");
    let stop = AtomicBool::new(true);
    let spec = CheckpointSpec::new(&dir).every(1);
    let status = Experiment::new(GeneratorConfig::tiny())
        .try_run_decade_checkpointed(&spec, Some(&stop))
        .expect("stopping is not an error");
    let DecadeStatus::Interrupted {
        completed,
        interrupted,
    } = status
    else {
        panic!("a pre-raised stop flag must interrupt, got completed years");
    };
    assert_eq!(completed, 0);
    assert_eq!(
        interrupted.len(),
        10,
        "all ten years stopped and checkpointed"
    );

    let status = Experiment::new(GeneratorConfig::tiny())
        .try_run_decade_checkpointed(&spec.clone().resume(true), None)
        .expect("resumed decade completes");
    let DecadeStatus::Completed { run, supervision } = status else {
        panic!("resumed decade must complete");
    };
    assert!(supervision.failures.is_empty());
    assert_eq!(supervision.retried, 0);
    let resumed_json = serde_json::to_string(&run.report()).unwrap();
    assert_eq!(
        resumed_json, plain_json,
        "table1 bytes identical across kill+resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
