//! Differential sketch suite: space-saving top-K and count-min against a
//! naive dense reference, over zipf / uniform / flood / interleaved-shard
//! workloads.
//!
//! The cases live in `tools/standalone/sketch_cases.rs` so the exact same
//! assertions run registry-free under `tools/standalone/run.sh` (bare
//! `rustc`, `--cfg synscan_standalone`); this file is the cargo mount.
//!
//! Knobs (also honored by the standalone harness):
//! * `SKETCH_FUZZ_ITERS` — checkpoint-fuzz iterations (default 25; CI's
//!   `sketch-drill` deep lane runs 200).
//! * `SKETCH_SEED_BASE` — base seed for the fuzz loop (default 0xf).
//!
//! Every assert message carries the failing seed, so a red run reproduces
//! with `SKETCH_SEED_BASE=<seed> cargo test -q --test sketch_equivalence`.

#[path = "../tools/standalone/sketch_cases.rs"]
mod cases;

use cases::{Workload, SEED_MATRIX, WORKLOADS};

fn fuzz_iters() -> u64 {
    std::env::var("SKETCH_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

fn fuzz_seed() -> u64 {
    std::env::var("SKETCH_SEED_BASE")
        .ok()
        .and_then(|v| parse_seed(&v))
        .unwrap_or(0xf)
}

fn parse_seed(v: &str) -> Option<u64> {
    match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

fn sweep(case: impl Fn(Workload, u64)) {
    for kind in WORKLOADS {
        for seed in SEED_MATRIX {
            case(kind, seed);
        }
    }
}

#[test]
fn count_min_never_undercounts_and_overcount_stays_bounded() {
    sweep(|kind, seed| cases::count_min_bounds(kind, seed, 20_000));
}

#[test]
fn space_saving_recalls_every_heavy_key_within_epsilon() {
    sweep(|kind, seed| {
        cases::space_saving_recall(kind, seed, 20_000, 16);
        cases::space_saving_recall(kind, seed, 20_000, 2048);
    });
}

#[test]
fn shard_merge_is_byte_identical_below_capacity() {
    sweep(|kind, seed| cases::shard_merge_matches_sequential(kind, seed, 20_000));
}

#[test]
fn shard_merge_keeps_the_bounds_past_capacity() {
    sweep(|kind, seed| cases::shard_merge_bounds_past_capacity(kind, seed, 20_000));
}

#[test]
fn conservative_update_is_tighter_and_still_an_upper_bound() {
    sweep(|kind, seed| cases::conservative_update_tightens(kind, seed, 8_000));
}

#[test]
fn checkpoint_snapshots_round_trip_under_fuzz() {
    cases::checkpoint_round_trip_fuzz(fuzz_iters(), fuzz_seed());
}
