//! Cross-crate fingerprinting: every tool implementation, projected onto a
//! telescope through the thinning machinery, must be attributed correctly
//! by the measurement pipeline — and fingerprint-free tools must not.

use rand::rngs::StdRng;
use rand::SeedableRng;

use synscan::core::analysis::YearCollector;
use synscan::core::CampaignConfig;
use synscan::scanners::custom::CustomScanner;
use synscan::scanners::masscan::MasscanScanner;
use synscan::scanners::mirai::MiraiScanner;
use synscan::scanners::nmap::NmapScanner;
use synscan::scanners::thinning::{project_onto_telescope, ScanSpec, TargetSpace};
use synscan::scanners::traits::{ProbeCrafter, TargetOrder};
use synscan::scanners::unicorn::UnicornScanner;
use synscan::scanners::zmap::ZmapScanner;
use synscan::telescope::{AddressSet, TelescopeConfig};
use synscan::wire::Ipv4Address;
use synscan::ToolKind;

fn dark() -> AddressSet {
    AddressSet::build(&TelescopeConfig::paper_scaled(32))
}

fn run_scan<C: ProbeCrafter>(
    crafter: &C,
    src: u32,
    order: TargetOrder,
    ports: Vec<u16>,
) -> Option<ToolKind> {
    let dark = dark();
    let mut rng = StdRng::seed_from_u64(u64::from(src));
    let spec = ScanSpec {
        start_micros: 0,
        rate_pps: 50_000.0,
        targets: TargetSpace::internet_wide(ports),
        order,
        coverage: 1.0,
    };
    let projected = project_onto_telescope(&mut rng, crafter, Ipv4Address(src), &spec, &dark, 10);
    assert!(
        projected.records.len() > 100,
        "an internet-wide scan hits a /32-scale telescope plenty"
    );
    let mut collector = YearCollector::new(2024, CampaignConfig::scaled(dark.len() as u64));
    for record in &projected.records {
        collector.offer(record);
    }
    let analysis = collector.finish();
    assert_eq!(analysis.campaigns.len(), 1, "one scan, one campaign");
    analysis.campaigns[0].tool()
}

#[test]
fn zmap_attributed_through_projection() {
    let tool = run_scan(
        &ZmapScanner::new(1),
        0x0101_0101,
        TargetOrder::CyclicGroup,
        vec![443],
    );
    assert_eq!(tool, Some(ToolKind::Zmap));
}

#[test]
fn unmarked_zmap_is_not_attributed() {
    let tool = run_scan(
        &ZmapScanner::unmarked(1),
        0x0101_0102,
        TargetOrder::CyclicGroup,
        vec![443],
    );
    assert_eq!(
        tool, None,
        "post-2023 institutional builds evade the ip.id rule"
    );
}

#[test]
fn masscan_attributed_through_projection() {
    let tool = run_scan(
        &MasscanScanner::new(2),
        0x0202_0202,
        TargetOrder::BlackRock,
        vec![80, 8080],
    );
    assert_eq!(tool, Some(ToolKind::Masscan));
}

#[test]
fn mirai_attributed_through_projection() {
    let tool = run_scan(
        &MiraiScanner::with_ports(3, vec![2323]),
        0x0303_0303,
        TargetOrder::UniformRandom,
        vec![2323],
    );
    assert_eq!(tool, Some(ToolKind::Mirai));
}

#[test]
fn nmap_attributed_through_projection() {
    let tool = run_scan(
        &NmapScanner::new(4),
        0x0404_0404,
        TargetOrder::Sequential,
        vec![22],
    );
    assert_eq!(tool, Some(ToolKind::Nmap));
}

#[test]
fn unicorn_attributed_through_projection() {
    let tool = run_scan(
        &UnicornScanner::new(5),
        0x0505_0505,
        TargetOrder::Sequential,
        vec![80],
    );
    assert_eq!(tool, Some(ToolKind::Unicorn));
}

#[test]
fn custom_tool_stays_unattributed() {
    let tool = run_scan(
        &CustomScanner::new(6),
        0x0606_0606,
        TargetOrder::Sequential,
        vec![9999],
    );
    assert_eq!(tool, None);
}

#[test]
fn interleaved_tools_do_not_cross_contaminate() {
    // Two scanners interleaved in one stream: each campaign attributes to
    // its own tool even though their packets alternate at the telescope.
    let dark = dark();
    let mut rng = StdRng::seed_from_u64(7);
    let zmap = ZmapScanner::new(7);
    let nmap = NmapScanner::new(8);
    let spec = ScanSpec {
        start_micros: 0,
        rate_pps: 50_000.0,
        targets: TargetSpace::internet_wide(vec![443]),
        order: TargetOrder::CyclicGroup,
        coverage: 1.0,
    };
    let a = project_onto_telescope(&mut rng, &zmap, Ipv4Address(0x0707_0707), &spec, &dark, 10);
    let b = project_onto_telescope(&mut rng, &nmap, Ipv4Address(0x0808_0808), &spec, &dark, 10);
    let mut merged: Vec<_> = a.records.iter().chain(b.records.iter()).cloned().collect();
    merged.sort_by_key(|r| r.ts_micros);

    let mut collector = YearCollector::new(2024, CampaignConfig::scaled(dark.len() as u64));
    for record in &merged {
        collector.offer(record);
    }
    let analysis = collector.finish();
    assert_eq!(analysis.campaigns.len(), 2);
    for campaign in &analysis.campaigns {
        let expected = if campaign.src_ip == Ipv4Address(0x0707_0707) {
            ToolKind::Zmap
        } else {
            ToolKind::Nmap
        };
        assert_eq!(
            campaign.tool(),
            Some(expected),
            "campaign {}",
            campaign.src_ip
        );
        // Attribution is near-unanimous, not a marginal majority.
        let total_votes: u64 = campaign.tool_votes.values().sum();
        let winning = campaign.tool_votes[&expected];
        assert!(
            winning * 10 >= total_votes * 9,
            "votes: {:?}",
            campaign.tool_votes
        );
    }
}
