//! The versioned analysis store end to end: slices written from every
//! pipeline and ingest mode are byte-identical; damaged files come back as
//! typed errors, never panics; and eight concurrent readers answering
//! queries *during* live store reloads stay byte-identical to the batch
//! `report` output.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use synscan::analyze::{analyze_pcap, analyze_pcap_mapped, AnalyzeOptions};
use synscan::core::report::DecadeReport;
use synscan::core::store::query::{answer_line, body_of, TOP_N};
use synscan::core::store::{AnalysisStore, ImageCell, StoreError, StoreImage};
use synscan::experiment::Experiment;
use synscan::wire::Ipv4Address;
use synscan::{GeneratorConfig, PipelineMode, YearConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synscan-store-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Persist `analysis` into a throwaway store and return the slice bytes.
fn slice_bytes(tag: &str, analysis: &synscan::core::analysis::YearAnalysis) -> Vec<u8> {
    let dir = tmp_dir(tag);
    let store = AnalysisStore::open(&dir).expect("open store");
    let path = store.write_year(analysis).expect("write slice");
    let bytes = std::fs::read(&path).expect("read slice back");
    let loaded = store.load_year(analysis.year).expect("load slice");
    assert_eq!(&loaded, analysis, "store load round-trips the analysis");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

#[test]
fn slices_are_byte_identical_across_pipeline_modes() {
    let experiment = Experiment::new(GeneratorConfig::tiny());
    let cfg = YearConfig::for_year(2020);
    let modes = [
        ("seq", PipelineMode::Sequential),
        ("sh2", PipelineMode::Sharded { workers: 2 }),
        ("sh4", PipelineMode::Sharded { workers: 4 }),
    ];
    let mut all = Vec::new();
    for (tag, mode) in modes {
        let run = experiment.run_year_cfg_mode(&cfg, mode);
        all.push(slice_bytes(tag, &run.analysis));
    }
    assert!(
        all.windows(2).all(|w| w[0] == w[1]),
        "sequential and sharded runs must persist identical slice bytes"
    );
}

#[test]
fn slices_are_byte_identical_across_ingest_modes() {
    // Export a small capture, then analyze it through the streaming reader
    // and the zero-copy mapped reader: the persisted slices must match.
    let experiment = Experiment::new(GeneratorConfig::tiny());
    let output = synscan::synthesis::generate::generate_year(
        &YearConfig::for_year(2020),
        experiment.config(),
        experiment.registry(),
        experiment.dark(),
    );
    let dir = tmp_dir("pcap");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let pcap = dir.join("capture.pcap");
    let file = std::fs::File::create(&pcap).expect("create pcap");
    synscan::telescope::capture::export_pcap(&output.records, file).expect("export pcap");

    let options = AnalyzeOptions {
        year: 2020,
        ..AnalyzeOptions::default()
    };
    let streamed = analyze_pcap(
        std::io::BufReader::new(std::fs::File::open(&pcap).expect("open pcap")),
        &options,
    )
    .expect("streamed analysis");
    let mapped = analyze_pcap_mapped(std::fs::read(&pcap).expect("read pcap"), &options)
        .expect("mapped analysis");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        slice_bytes("ingest-read", &streamed.analysis),
        slice_bytes("ingest-mmap", &mapped.analysis),
        "streamed and mapped ingest must persist identical slice bytes"
    );
}

#[test]
fn damaged_slices_are_typed_errors_never_panics() {
    let experiment = Experiment::new(GeneratorConfig::tiny());
    let run = experiment.run_year(2020);
    let dir = tmp_dir("damage");
    let store = AnalysisStore::open(&dir).expect("open store");
    let path = store.write_year(&run.analysis).expect("write slice");
    let clean = std::fs::read(&path).expect("read slice");

    let reload = |bytes: &[u8]| -> StoreError {
        std::fs::write(&path, bytes).expect("rewrite slice");
        store
            .load_year(2020)
            .expect_err("damaged slice must not load")
    };

    // Magic byte flipped.
    let mut bad = clean.clone();
    bad[0] = b'X';
    assert!(matches!(reload(&bad), StoreError::BadMagic));

    // Future format version.
    let mut bad = clean.clone();
    bad[8] = 0xEE;
    assert!(matches!(reload(&bad), StoreError::UnsupportedVersion(_)));

    // Payload bit rot.
    let mut bad = clean.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xFF;
    assert!(matches!(reload(&bad), StoreError::ChecksumMismatch));

    // Truncated inside the envelope and inside the payload.
    assert!(matches!(reload(&clean[..10]), StoreError::Truncated));
    let cut = clean.len() - clean.len() / 3;
    assert!(matches!(reload(&clean[..cut]), StoreError::Truncated));

    // And a missing year is its own error, not a panic.
    std::fs::write(&path, &clean).expect("restore slice");
    assert!(matches!(
        store.load_year(1999),
        Err(StoreError::MissingYear(1999))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Build a two-year store and the query set the drill fires at it.
fn drill_store(dir: &Path) -> (AnalysisStore, Vec<String>) {
    let experiment = Experiment::new(GeneratorConfig::tiny());
    let store = AnalysisStore::open(dir).expect("open store");
    let mut probe_ip = None;
    let mut probe_port = None;
    for year in [2019u16, 2020] {
        let run = experiment.run_year(year);
        if probe_ip.is_none() {
            probe_ip = run.analysis.source_packets.keys().min().copied();
            probe_port = run.analysis.port_packets.keys().min().copied();
        }
        store.write_year(&run.analysis).expect("write slice");
    }
    let ip = Ipv4Address(probe_ip.expect("tiny run has sources"));
    let port = probe_port.expect("tiny run has ports");
    let queries = vec![
        "{\"op\":\"table1\"}".to_string(),
        "{\"op\":\"summary\",\"year\":2020}".to_string(),
        format!("{{\"op\":\"source\",\"ip\":\"{ip}\"}}"),
        format!("{{\"op\":\"port\",\"port\":{port}}}"),
        format!("{{\"op\":\"campaigns\",\"ip\":\"{ip}\"}}"),
    ];
    (store, queries)
}

#[test]
fn eight_readers_stay_byte_identical_during_live_reloads() {
    let dir = tmp_dir("drill");
    let (store, queries) = drill_store(&dir);

    // The batch reference: every expected line comes from a plain
    // store-load, exactly how the offline client and `repro` render.
    let reference = StoreImage::load(&store).expect("load image");
    let expected: Vec<String> = queries.iter().map(|q| answer_line(&reference, q)).collect();
    // The table1 body IS the batch `report` artifact, byte for byte.
    assert_eq!(
        body_of(&expected[0]).expect("table1 body"),
        DecadeReport::from_years(&reference.years, TOP_N).to_json()
    );

    let cell = ImageCell::new(StoreImage::load(&store).expect("load image"));
    let stop = Arc::new(AtomicBool::new(false));

    // One writer thread reloading the image from disk, hot.
    let writer = {
        let cell = Arc::clone(&cell);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut installs = 0u64;
            while !stop.load(Ordering::Acquire) {
                let image = StoreImage::load(&store).expect("reload image");
                installs = cell.install(image);
            }
            installs
        })
    };

    // Eight reader threads hammering the query set through cached readers.
    let readers: Vec<_> = (0..8)
        .map(|_| {
            let cell = Arc::clone(&cell);
            let queries = queries.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut reader = cell.reader();
                for round in 0..100 {
                    for (query, want) in queries.iter().zip(&expected) {
                        let got = answer_line(reader.image(), query);
                        assert_eq!(
                            &got, want,
                            "round {round}: answer diverged during live reload"
                        );
                    }
                }
            })
        })
        .collect();

    for handle in readers {
        handle.join().expect("reader thread");
    }
    stop.store(true, Ordering::Release);
    let installs = writer.join().expect("writer thread");
    assert!(installs >= 1, "the drill must see at least one live reload");
    let _ = std::fs::remove_dir_all(&dir);
}
