//! Streaming ↔ materialized ↔ sharded pipeline equivalence at generator
//! scale.
//!
//! Both execution knobs must be pure performance knobs: for any worker count
//! and for either record flow (the streaming default, where the generator
//! plan feeds the pipeline one batch at a time, or `--materialize`, where
//! the full year vector is built and sorted first), the `YearAnalysis` —
//! campaign list, every aggregate map, noise statistics, window bounds —
//! the capture statistics and the generator ground truth must be
//! bit-identical to the materialized sequential reference. 2017 is included
//! so the year-dependent ingress-policy path (telnet blocking) runs under
//! every combination.

use synscan::core::PipelineMode;
use synscan::experiment::Experiment;
use synscan::GeneratorConfig;

fn run(year: u16, mode: PipelineMode, materialize: bool) -> synscan::experiment::YearRun {
    Experiment::new(GeneratorConfig::tiny())
        .with_pipeline_mode(mode)
        .with_materialize(materialize)
        .run_year(year)
}

#[test]
fn streaming_and_sharding_are_bit_identical_to_the_materialized_sequential_reference() {
    // The full {streaming, materialized} x {sequential, sharded} matrix,
    // anchored on the materialized sequential run (the pre-streaming shape).
    for year in [2017u16, 2020] {
        let reference = run(year, PipelineMode::Sequential, true);
        for materialize in [false, true] {
            for mode in [
                PipelineMode::Sequential,
                PipelineMode::Sharded { workers: 1 },
                PipelineMode::Sharded { workers: 4 },
            ] {
                let other = run(year, mode, materialize);
                let label = format!("{year} mode={mode:?} materialize={materialize}");
                assert_eq!(
                    reference.capture, other.capture,
                    "{label}: capture stats diverged"
                );
                assert_eq!(
                    reference.truth, other.truth,
                    "{label}: generation is flow-independent"
                );
                assert_eq!(
                    reference.analysis, other.analysis,
                    "{label}: analysis diverged"
                );
            }
        }
    }
}

#[test]
fn sharded_run_still_detects_real_structure() {
    // Not just equal — equal and non-trivial: campaigns, tool attributions
    // and the 2017 ingress policy all survive the fan-out, streamed.
    let run = run(2017, PipelineMode::Sharded { workers: 4 }, false);
    assert!(run.capture.admitted > 0);
    assert!(run.capture.ingress_blocked > 0, "2017 blocks telnet");
    assert!(!run.analysis.campaigns.is_empty());
    assert!(!run.analysis.port_packets.contains_key(&23));
    assert!(run.analysis.total_packets == run.capture.admitted);
}

#[test]
fn decade_budget_composes_with_sharding() {
    // A sharded decade run equals the sequential decade run year by year
    // (with_budget may collapse the per-year share to sequential on small
    // machines — that is exactly the point).
    let sequential = Experiment::new(GeneratorConfig::tiny()).run_decade();
    let sharded = Experiment::new(GeneratorConfig::tiny())
        .with_pipeline_mode(PipelineMode::Sharded { workers: 8 })
        .run_decade();
    assert_eq!(sequential.years.len(), sharded.years.len());
    for (a, b) in sequential.years.iter().zip(&sharded.years) {
        assert_eq!(a.analysis, b.analysis, "year {}", a.analysis.year);
        assert_eq!(a.capture, b.capture);
    }
}

#[test]
fn materialized_decade_equals_the_streamed_decade() {
    let streamed = Experiment::new(GeneratorConfig::tiny()).run_decade();
    let materialized = Experiment::new(GeneratorConfig::tiny())
        .with_materialize(true)
        .run_decade();
    assert_eq!(streamed.years.len(), materialized.years.len());
    for (a, b) in streamed.years.iter().zip(&materialized.years) {
        assert_eq!(a.analysis, b.analysis, "year {}", a.analysis.year);
        assert_eq!(a.capture, b.capture);
        assert_eq!(a.truth, b.truth);
    }
}
