//! Sequential ↔ sharded pipeline equivalence at generator scale.
//!
//! The source-sharded year pipeline must be a pure performance knob: for any
//! worker count, the merged `YearAnalysis` — campaign list, every aggregate
//! map, noise statistics, window bounds — and the capture statistics must be
//! bit-identical to the sequential reference. 2017 is included so the
//! year-dependent ingress-policy path (telnet blocking) runs under both
//! modes.

use synscan::core::PipelineMode;
use synscan::experiment::Experiment;
use synscan::GeneratorConfig;

fn run(year: u16, mode: PipelineMode) -> synscan::experiment::YearRun {
    Experiment::new(GeneratorConfig::tiny())
        .with_pipeline_mode(mode)
        .run_year(year)
}

#[test]
fn sharded_year_analysis_is_bit_identical_to_sequential() {
    for year in [2017u16, 2020] {
        let sequential = run(year, PipelineMode::Sequential);
        for workers in [1usize, 4] {
            let sharded = run(year, PipelineMode::Sharded { workers });
            assert_eq!(
                sequential.capture, sharded.capture,
                "{year}: capture stats diverged at {workers} workers"
            );
            assert_eq!(
                sequential.truth, sharded.truth,
                "{year}: generation is mode-independent"
            );
            assert_eq!(
                sequential.analysis, sharded.analysis,
                "{year}: analysis diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn sharded_run_still_detects_real_structure() {
    // Not just equal — equal and non-trivial: campaigns, tool attributions
    // and the 2017 ingress policy all survive the fan-out.
    let run = run(2017, PipelineMode::Sharded { workers: 4 });
    assert!(run.capture.admitted > 0);
    assert!(run.capture.ingress_blocked > 0, "2017 blocks telnet");
    assert!(!run.analysis.campaigns.is_empty());
    assert!(!run.analysis.port_packets.contains_key(&23));
    assert!(run.analysis.total_packets == run.capture.admitted);
}

#[test]
fn decade_budget_composes_with_sharding() {
    // A sharded decade run equals the sequential decade run year by year
    // (with_budget may collapse the per-year share to sequential on small
    // machines — that is exactly the point).
    let sequential = Experiment::new(GeneratorConfig::tiny()).run_decade();
    let sharded = Experiment::new(GeneratorConfig::tiny())
        .with_pipeline_mode(PipelineMode::Sharded { workers: 8 })
        .run_decade();
    assert_eq!(sequential.years.len(), sharded.years.len());
    for (a, b) in sequential.years.iter().zip(&sharded.years) {
        assert_eq!(a.analysis, b.analysis, "year {}", a.analysis.year);
        assert_eq!(a.capture, b.capture);
    }
}
