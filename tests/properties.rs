//! Cross-crate property-based tests (proptest), plus a deterministic
//! seed-matrix replay of the load-bearing properties.
//!
//! The per-crate unit suites already property-test local invariants; these
//! properties span crate boundaries: wire round trips through pcap, crafted
//! fingerprints through the detection engine, permutation generators
//! against set semantics, and campaign accounting under arbitrary streams.
//!
//! The proptest runner draws its own RNG, so a red run reproduces only
//! through its persistence file. The [`seed_matrix`] module at the bottom
//! complements it: the same properties replayed over a splitmix64-derived
//! seed matrix (base overridable via `PROPERTIES_SEED_BASE`), with the
//! failing seed printed in every assert. Setting `PROPERTIES_SEED_BASE` to a
//! printed failing seed collapses the matrix to exactly that seed, so a red
//! run reproduces with one copy-pasteable command:
//! `PROPERTIES_SEED_BASE=0xdeadbeef cargo test -q --test properties seed_matrix`.

use proptest::prelude::*;

use synscan::core::analysis::YearCollector;
use synscan::core::fingerprint::rules::single_packet_verdict;
use synscan::core::CampaignConfig;
use synscan::scanners::blackrock::BlackRock;
use synscan::scanners::masscan::MasscanScanner;
use synscan::scanners::mirai::MiraiScanner;
use synscan::scanners::traits::craft_record;
use synscan::scanners::zmap::ZmapScanner;
use synscan::scanners::CyclicIter;
use synscan::telescope::capture::{export_pcap, import_pcap};
use synscan::wire::{Ipv4Address, ProbeRecord, TcpFlags};
use synscan::ToolKind;

fn arb_record() -> impl Strategy<Value = ProbeRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u16>(),
        any::<u8>(),
        any::<u16>(),
        0u64..=253_402_300_799_000_000, // pcap ts_sec fits u32
    )
        .prop_map(
            |(src, dst, sport, dport, seq, ip_id, ttl, window, ts)| ProbeRecord {
                ts_micros: ts % (u64::from(u32::MAX) * 1_000_000),
                src_ip: Ipv4Address(src),
                dst_ip: Ipv4Address(dst),
                src_port: sport,
                dst_port: dport,
                seq,
                ip_id,
                ttl,
                flags: TcpFlags::SYN,
                window,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary records survive frame building, pcap export and re-import.
    #[test]
    fn pcap_round_trip_arbitrary_records(records in prop::collection::vec(arb_record(), 1..50)) {
        let mut sorted = records;
        sorted.sort_by_key(|r| r.ts_micros);
        let bytes = export_pcap(&sorted, Vec::new()).unwrap();
        let back = import_pcap(std::io::Cursor::new(bytes)).unwrap();
        prop_assert_eq!(back, sorted);
    }

    /// BlackRock is a bijection for arbitrary domain sizes and keys.
    #[test]
    fn blackrock_bijective(range in 1u64..5_000, seed in any::<u64>()) {
        let br = BlackRock::new(range, seed);
        let mut seen = vec![false; range as usize];
        for i in 0..range {
            let c = br.shuffle(i);
            prop_assert!(c < range);
            prop_assert!(!seen[c as usize], "collision at {}", c);
            seen[c as usize] = true;
            prop_assert_eq!(br.unshuffle(c), i);
        }
    }

    /// The cyclic-group walk is a permutation for arbitrary domains.
    #[test]
    fn cyclic_iter_permutes(domain in 1u64..3_000, seed in any::<u64>()) {
        let values: Vec<u64> = CyclicIter::new(domain, seed).collect();
        prop_assert_eq!(values.len() as u64, domain);
        let set: std::collections::HashSet<u64> = values.iter().copied().collect();
        prop_assert_eq!(set.len() as u64, domain);
    }

    /// ZMap shards partition the permutation for any shard count.
    #[test]
    fn shards_partition(domain in 1u64..2_000, shards in 1u32..9, seed in any::<u64>()) {
        let mut all: Vec<u64> = Vec::new();
        for s in 0..shards {
            all.extend(ZmapScanner::shard_targets(domain, seed, s, shards));
        }
        all.sort_unstable();
        let expected: Vec<u64> = (0..domain).collect();
        prop_assert_eq!(all, expected);
    }

    /// Every probe crafted by a single-packet-fingerprint tool is attributed
    /// to that tool, regardless of destination and index.
    #[test]
    fn crafted_fingerprints_always_match(
        seed in any::<u64>(),
        dst in any::<u32>(),
        port in any::<u16>(),
        idx in any::<u64>(),
    ) {
        let dst = Ipv4Address(dst);
        let src = Ipv4Address(1);

        let zmap = craft_record(&ZmapScanner::new(seed), src, dst, port, idx, 0, 5);
        prop_assert_eq!(single_packet_verdict(&zmap), Some(ToolKind::Zmap));

        let mirai = craft_record(&MiraiScanner::new(seed), src, dst, port, idx, 0, 5);
        prop_assert_eq!(single_packet_verdict(&mirai), Some(ToolKind::Mirai));

        let masscan = craft_record(&MasscanScanner::new(seed), src, dst, port, idx, 0, 5);
        // Masscan's relation may coincidentally also be Mirai's (seq == dst)
        // with probability 2^-32; the verdict is then Mirai by specificity.
        let verdict = single_packet_verdict(&masscan);
        prop_assert!(verdict == Some(ToolKind::Masscan) || verdict == Some(ToolKind::Mirai));
    }

    /// The campaign detector conserves packets for arbitrary streams:
    /// campaigns + noise == offered.
    #[test]
    fn campaign_accounting_conserves_packets(records in prop::collection::vec(arb_record(), 1..300)) {
        let mut sorted = records;
        sorted.sort_by_key(|r| r.ts_micros);
        let mut collector = YearCollector::new(
            2020,
            CampaignConfig {
                min_distinct_dests: 5,
                min_rate_pps: 1.0,
                expiry_secs: 3600.0,
                monitored_addresses: 1 << 16,
            },
        );
        for r in &sorted {
            collector.offer(r);
        }
        let analysis = collector.finish();
        let campaign_packets: u64 = analysis.campaigns.iter().map(|c| c.packets).sum();
        prop_assert_eq!(
            campaign_packets + analysis.noise.rejected_packets,
            sorted.len() as u64
        );
        // Aggregates agree.
        prop_assert_eq!(analysis.total_packets, sorted.len() as u64);
        let port_sum: u64 = analysis.port_packets.values().sum();
        prop_assert_eq!(port_sum, sorted.len() as u64);
    }

    /// Telescope extrapolation is monotone: more distinct destinations never
    /// estimate fewer targets.
    #[test]
    fn extrapolation_is_monotone(monitored in 100u64..100_000, hits in 0u64..1_000) {
        let model = synscan::stats::TelescopeModel::new(monitored);
        let a = model.extrapolate_targets(hits.min(monitored));
        let b = model.extrapolate_targets((hits + 1).min(monitored));
        prop_assert!(b >= a);
        prop_assert!(model.coverage_fraction(hits.min(monitored)) <= 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The detector neither panics nor loses packets on UNSORTED streams
    /// (merged pcaps deliver mild reordering in practice).
    #[test]
    fn campaign_accounting_survives_unsorted_input(records in prop::collection::vec(arb_record(), 1..200)) {
        let mut collector = YearCollector::new(
            2020,
            CampaignConfig {
                min_distinct_dests: 5,
                min_rate_pps: 1.0,
                expiry_secs: 3600.0,
                monitored_addresses: 1 << 16,
            },
        );
        for r in &records {
            collector.offer(r);
        }
        let analysis = collector.finish();
        let campaign_packets: u64 = analysis.campaigns.iter().map(|c| c.packets).sum();
        prop_assert_eq!(
            campaign_packets + analysis.noise.rejected_packets,
            records.len() as u64
        );
        for campaign in &analysis.campaigns {
            prop_assert!(campaign.first_ts_micros <= campaign.last_ts_micros);
            prop_assert!(campaign.duration_secs() >= 0.0);
        }
    }

    /// The capture session accounts for every frame exactly once, for any
    /// flag combination and destination.
    #[test]
    fn capture_accounting_is_exhaustive(
        records in prop::collection::vec(arb_record(), 1..100),
        flags in prop::collection::vec(0u8..=0x3f, 100),
    ) {
        use synscan::telescope::{AddressSet, CaptureSession, TelescopeConfig};
        use synscan::wire::TcpFlags;
        let set = AddressSet::build(&TelescopeConfig::paper_scaled(256));
        let mut session = CaptureSession::new(&set, 2020);
        for (i, r) in records.iter().enumerate() {
            let mut r = *r;
            r.flags = TcpFlags(flags[i % flags.len()]);
            session.offer(&r);
        }
        let stats = session.stats();
        prop_assert_eq!(
            stats.offered,
            stats.admitted
                + stats.not_dark
                + stats.ingress_blocked
                + stats.backscatter
                + stats.other_scan_techniques
                + stats.outage_lost
        );
    }
}

/// Deterministic replay of the seeded properties over a derived seed matrix.
///
/// The proptest blocks above draw seeds from the runner's own RNG, so a
/// failure only reproduces through proptest's persistence file — useless in
/// a bug report. Here every seed is derived by splitmix64 from one base
/// (`DEFAULT_SEED_BASE`, overridable via `PROPERTIES_SEED_BASE` as decimal
/// or `0x`-hex), and every assertion message carries the seed that failed.
/// When the env var is set the matrix collapses to exactly that one seed,
/// so the printed seed IS the repro command.
mod seed_matrix {
    use super::*;

    const DEFAULT_SEED_BASE: u64 = 0x5eed_ba5e;
    const MATRIX_LEN: usize = 6;

    /// splitmix64 finalizer: the same derivation the sketch differential
    /// suite uses, so one mental model covers both harnesses.
    fn mix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// The seed matrix: derived from the default base, or exactly the
    /// override so a printed failing seed replays verbatim.
    fn seeds() -> Vec<u64> {
        if let Ok(raw) = std::env::var("PROPERTIES_SEED_BASE") {
            let parsed = raw
                .strip_prefix("0x")
                .map(|hex| u64::from_str_radix(hex, 16))
                .unwrap_or_else(|| raw.parse());
            match parsed {
                Ok(seed) => return vec![seed],
                Err(err) => panic!("PROPERTIES_SEED_BASE={raw:?} did not parse: {err}"),
            }
        }
        (0..MATRIX_LEN as u64)
            .map(|i| mix64(DEFAULT_SEED_BASE.wrapping_add(i)))
            .collect()
    }

    /// Deterministic record stream: the seed fans out through splitmix64
    /// into every field, with timestamps kept sorted.
    fn seeded_records(seed: u64, n: usize) -> Vec<ProbeRecord> {
        (0..n as u64)
            .map(|i| {
                let r = mix64(seed ^ mix64(i));
                ProbeRecord {
                    ts_micros: 1_577_836_800_000_000 + i * 250_000 + (r >> 56),
                    src_ip: Ipv4Address((r >> 32) as u32 & 0xff), // few sources => campaigns form
                    dst_ip: Ipv4Address(r as u32),
                    src_port: 32_768 | (r >> 16) as u16,
                    dst_port: [23u16, 80, 443, 2323][(r & 3) as usize],
                    seq: (r >> 8) as u32,
                    ip_id: (r >> 24) as u16,
                    ttl: 32 + (r & 63) as u8,
                    flags: TcpFlags::SYN,
                    window: 1024,
                }
            })
            .collect()
    }

    #[test]
    fn blackrock_bijective_across_the_matrix() {
        for seed in seeds() {
            for range in [1u64, 2, 255, 1024, 4099] {
                let br = BlackRock::new(range, seed);
                let mut seen = vec![false; range as usize];
                for i in 0..range {
                    let c = br.shuffle(i);
                    assert!(c < range, "seed={seed:#x} range={range}: {c} out of range");
                    assert!(
                        !seen[c as usize],
                        "seed={seed:#x} range={range}: collision at {c}"
                    );
                    seen[c as usize] = true;
                    assert_eq!(
                        br.unshuffle(c),
                        i,
                        "seed={seed:#x} range={range}: unshuffle({c}) != {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn cyclic_iter_permutes_across_the_matrix() {
        for seed in seeds() {
            for domain in [1u64, 7, 64, 2047] {
                let values: Vec<u64> = CyclicIter::new(domain, seed).collect();
                assert_eq!(
                    values.len() as u64,
                    domain,
                    "seed={seed:#x} domain={domain}: wrong walk length"
                );
                let set: std::collections::HashSet<u64> = values.iter().copied().collect();
                assert_eq!(
                    set.len() as u64,
                    domain,
                    "seed={seed:#x} domain={domain}: walk repeated a value"
                );
            }
        }
    }

    #[test]
    fn shards_partition_across_the_matrix() {
        for seed in seeds() {
            for (domain, shards) in [(1u64, 1u32), (1000, 3), (1999, 8)] {
                let mut all: Vec<u64> = Vec::new();
                for s in 0..shards {
                    all.extend(ZmapScanner::shard_targets(domain, seed, s, shards));
                }
                all.sort_unstable();
                let expected: Vec<u64> = (0..domain).collect();
                assert_eq!(
                    all, expected,
                    "seed={seed:#x} domain={domain} shards={shards}: not a partition"
                );
            }
        }
    }

    #[test]
    fn crafted_fingerprints_match_across_the_matrix() {
        for seed in seeds() {
            let dst = Ipv4Address(mix64(seed) as u32);
            let port = (mix64(seed ^ 1) & 0xffff) as u16;
            let idx = mix64(seed ^ 2);
            let src = Ipv4Address(1);

            let zmap = craft_record(&ZmapScanner::new(seed), src, dst, port, idx, 0, 5);
            assert_eq!(
                single_packet_verdict(&zmap),
                Some(ToolKind::Zmap),
                "seed={seed:#x}: zmap probe misattributed"
            );
            let mirai = craft_record(&MiraiScanner::new(seed), src, dst, port, idx, 0, 5);
            assert_eq!(
                single_packet_verdict(&mirai),
                Some(ToolKind::Mirai),
                "seed={seed:#x}: mirai probe misattributed"
            );
            let masscan = craft_record(&MasscanScanner::new(seed), src, dst, port, idx, 0, 5);
            let verdict = single_packet_verdict(&masscan);
            assert!(
                verdict == Some(ToolKind::Masscan) || verdict == Some(ToolKind::Mirai),
                "seed={seed:#x}: masscan probe misattributed as {verdict:?}"
            );
        }
    }

    #[test]
    fn campaign_accounting_conserves_packets_across_the_matrix() {
        for seed in seeds() {
            let records = seeded_records(seed, 400);
            let mut collector = YearCollector::new(
                2020,
                CampaignConfig {
                    min_distinct_dests: 5,
                    min_rate_pps: 1.0,
                    expiry_secs: 3600.0,
                    monitored_addresses: 1 << 16,
                },
            );
            for r in &records {
                collector.offer(r);
            }
            let analysis = collector.finish();
            let campaign_packets: u64 = analysis.campaigns.iter().map(|c| c.packets).sum();
            assert_eq!(
                campaign_packets + analysis.noise.rejected_packets,
                records.len() as u64,
                "seed={seed:#x}: campaigns + noise != offered"
            );
            assert_eq!(
                analysis.total_packets,
                records.len() as u64,
                "seed={seed:#x}: total_packets drifted"
            );
            let port_sum: u64 = analysis.port_packets.values().sum();
            assert_eq!(
                port_sum,
                records.len() as u64,
                "seed={seed:#x}: port aggregation lost packets"
            );
        }
    }

    #[test]
    fn pcap_round_trip_across_the_matrix() {
        for seed in seeds() {
            let records = seeded_records(seed, 64);
            let bytes = export_pcap(&records, Vec::new())
                .unwrap_or_else(|e| panic!("seed={seed:#x}: export failed: {e}"));
            let back = import_pcap(std::io::Cursor::new(bytes))
                .unwrap_or_else(|e| panic!("seed={seed:#x}: import failed: {e}"));
            assert_eq!(back, records, "seed={seed:#x}: pcap round trip diverged");
        }
    }
}
