//! pcap interoperability: a generated year written to the classic tcpdump
//! format and re-imported must yield the identical analysis.

use synscan::core::analysis::YearCollector;
use synscan::experiment::Experiment;
use synscan::telescope::capture::{export_pcap, import_pcap};
use synscan::telescope::CaptureSession;
use synscan::GeneratorConfig;

#[test]
fn analysis_survives_a_pcap_round_trip() {
    let experiment = Experiment::new(GeneratorConfig::tiny());
    let year_cfg = synscan::YearConfig::for_year(2020);
    let output = synscan::synthesis::generate::generate_year(
        &year_cfg,
        experiment.config(),
        experiment.registry(),
        experiment.dark(),
    );

    // Write the raw arrival stream to pcap (as the real telescope stores it).
    let pcap_bytes = export_pcap(&output.records, Vec::new()).expect("export");
    assert!(pcap_bytes.len() > 24 + output.records.len() * 16);

    // Re-import and compare record for record.
    let replayed = import_pcap(std::io::Cursor::new(&pcap_bytes)).expect("import");
    assert_eq!(replayed.len(), output.records.len());
    assert_eq!(replayed, output.records, "lossless frame round trip");

    // The full §3 pipeline gives identical results on both streams.
    let analyze = |records: &[synscan::wire::ProbeRecord]| {
        let mut session = CaptureSession::new(experiment.dark(), 2020);
        let mut collector = YearCollector::new(2020, experiment.campaign_config());
        for record in records {
            if session.offer(record) {
                collector.offer(record);
            }
        }
        collector.finish()
    };
    let direct = analyze(&output.records);
    let roundtripped = analyze(&replayed);
    assert_eq!(direct.total_packets, roundtripped.total_packets);
    assert_eq!(direct.campaigns, roundtripped.campaigns);
    assert_eq!(direct.port_packets, roundtripped.port_packets);
}

#[test]
fn a_noop_chaos_reader_is_a_byte_identical_passthrough() {
    use synscan::wire::chaos::{ChaosPlan, ChaosReader};
    let experiment = Experiment::new(GeneratorConfig::tiny());
    let output = synscan::synthesis::generate::generate_year(
        &synscan::YearConfig::for_year(2020),
        experiment.config(),
        experiment.registry(),
        experiment.dark(),
    );
    let pcap_bytes = export_pcap(&output.records, Vec::new()).expect("export");

    // Importing through a ChaosReader with an empty fault plan must be
    // indistinguishable from importing the raw bytes.
    let wrapped = ChaosReader::new(std::io::Cursor::new(&pcap_bytes), ChaosPlan::noop(42));
    let replayed = import_pcap(wrapped).expect("no-op chaos import");
    assert_eq!(replayed, output.records, "identity adapter");

    let mut probe = ChaosReader::new(std::io::Cursor::new(&pcap_bytes), ChaosPlan::noop(42));
    let mut copied = Vec::new();
    std::io::Read::read_to_end(&mut probe, &mut copied).expect("read through");
    assert_eq!(copied, pcap_bytes, "bytes untouched");
    assert!(!probe.log().any(), "nothing was injected");
}

#[test]
fn pcap_files_are_readable_by_struct_layout() {
    // The global header must be the classic libpcap layout so external
    // tools (tcpdump, wireshark) can open our files.
    let experiment = Experiment::new(GeneratorConfig::tiny());
    let run_records = synscan::synthesis::generate::generate_year(
        &synscan::YearConfig::for_year(2015),
        experiment.config(),
        experiment.registry(),
        experiment.dark(),
    )
    .records;
    let bytes = export_pcap(&run_records[..10.min(run_records.len())], Vec::new()).unwrap();
    assert_eq!(&bytes[0..4], &0xa1b2_c3d4u32.to_le_bytes(), "magic");
    assert_eq!(&bytes[4..6], &2u16.to_le_bytes(), "version major");
    assert_eq!(&bytes[6..8], &4u16.to_le_bytes(), "version minor");
    assert_eq!(&bytes[20..24], &1u32.to_le_bytes(), "LINKTYPE_ETHERNET");
    // Each record is 16 bytes of header + 58 bytes of frame.
    let expected = 24 + 10 * (16 + synscan::wire::ProbeRecord::frame_len());
    assert_eq!(bytes.len(), expected);
}
