//! Hostile-client matrix against a live `synscan-serve` daemon: slow-loris,
//! oversized requests, garbage bytes, mid-request disconnects, and
//! connection bursts past the admission gate must all end in a typed
//! rejection (or a typed shed reply) within the configured deadlines —
//! never a panic, never a hung daemon — while well-behaved clients on the
//! same daemon keep getting correct answers. Plus the control-plane
//! drills: graceful drain and reload-failure isolation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use synscan::experiment::Experiment;
use synscan::serve::{Endpoint, Listen, ServeOptions, Server};
use synscan::GeneratorConfig;

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synscan-resil-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = synscan::core::store::AnalysisStore::open(&dir).expect("open store");
    let run = Experiment::new(GeneratorConfig::tiny()).run_year(2020);
    store.write_year(&run.analysis).expect("write slice");
    dir
}

/// Tight budgets so the hostile cases resolve in test time: 300 ms per
/// request, 1 s idle, 2 connections in flight.
fn tight_options() -> ServeOptions {
    ServeOptions {
        readers: 2,
        max_in_flight: 2,
        request_deadline: Duration::from_millis(300),
        stall_timeout: Duration::from_secs(1),
    }
}

fn start(dir: &Path, options: ServeOptions) -> (Server, SocketAddr) {
    let server = Server::start(dir, &Listen::Tcp("127.0.0.1:0".to_string()), options)
        .expect("daemon starts");
    let addr = match server.endpoint() {
        Endpoint::Tcp(addr) => *addr,
        other => panic!("unexpected endpoint {other}"),
    };
    (server, addr)
}

fn read_reply(stream: &TcpStream) -> String {
    let mut lines = BufReader::new(stream);
    let mut line = String::new();
    lines.read_line(&mut line).expect("reply line");
    line.trim_end().to_string()
}

fn query(addr: &SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("send");
    read_reply(&stream)
}

/// Query like a well-behaved client under load: a typed `overloaded` shed
/// while earlier connections are still being reaped is an invitation to
/// retry, not a failure — but the gate must reopen within the budget.
fn query_retry(addr: &SocketAddr, request: &str) -> String {
    let started = Instant::now();
    loop {
        let reply = query(addr, request);
        if !reply.contains("overloaded") || started.elapsed() > Duration::from_secs(5) {
            return reply;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn slow_loris_is_cut_off_with_a_typed_deadline_reply() {
    let dir = temp_store("loris");
    let (server, addr) = start(&dir, tight_options());

    // Trickle a request that never finishes its line.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"{\"op\":\"tab").expect("partial request");
    let started = Instant::now();
    let reply = read_reply(&stream);
    assert!(
        reply.starts_with("{\"ok\":false"),
        "slow-loris got a success reply: {reply}"
    );
    assert!(
        reply.contains("deadline exceeded"),
        "rejection is not typed as a deadline: {reply}"
    );
    // Cut off by the request budget (300 ms), not the idle cutoff or worse.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "slow-loris held a reader for {:?}",
        started.elapsed()
    );
    // The daemon is unharmed.
    assert!(query(&addr, "{\"op\":\"years\"}").starts_with("{\"ok\":true"));

    server.stop();
    server.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_request_is_rejected_without_being_buffered() {
    let dir = temp_store("oversized");
    let (server, addr) = start(&dir, tight_options());

    let mut stream = TcpStream::connect(addr).expect("connect");
    // 80 KiB with no newline: past the 64 KiB admission cap, but small
    // enough for loopback buffers so the typed reply is not lost to an RST
    // racing our still-in-progress send.
    let blob = vec![b'x'; 80 * 1024];
    let _ = stream.write_all(&blob);
    let reply = read_reply(&stream);
    assert!(
        reply.contains("exceeds the") && reply.contains("-byte limit"),
        "oversized request not rejected typed: {reply}"
    );
    assert!(query(&addr, "{\"op\":\"years\"}").starts_with("{\"ok\":true"));

    server.stop();
    server.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_bytes_get_a_parse_error_and_the_connection_survives() {
    let dir = temp_store("garbage");
    let (server, addr) = start(&dir, tight_options());

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"\x00\xff\xfenot json at all\n")
        .expect("garbage");
    let reply = read_reply(&stream);
    assert!(
        reply.starts_with("{\"ok\":false"),
        "garbage got a success reply: {reply}"
    );
    // Same connection, next line: a valid request still answers.
    stream
        .write_all(b"{\"op\":\"years\"}\n")
        .expect("valid request after garbage");
    let reply = read_reply(&stream);
    assert!(
        reply.starts_with("{\"ok\":true"),
        "connection did not survive garbage: {reply}"
    );

    server.stop();
    server.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_request_disconnect_leaves_the_daemon_serving() {
    let dir = temp_store("disconnect");
    let (server, addr) = start(&dir, tight_options());

    for _ in 0..5 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"{\"op\":\"tab").expect("partial");
        drop(stream); // vanish mid-request
    }
    // The corpses hold gate slots only until the readers reap them; a
    // retrying client must get service back within the budget.
    assert!(query_retry(&addr, "{\"op\":\"years\"}").starts_with("{\"ok\":true"));

    server.stop();
    server.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connections_past_the_gate_are_shed_typed_and_counted() {
    let dir = temp_store("burst");
    let (server, addr) = start(&dir, tight_options());
    let control = server.control();

    // Two idle connections occupy the whole gate (max_in_flight = 2).
    let hold_a = TcpStream::connect(addr).expect("hold a");
    let hold_b = TcpStream::connect(addr).expect("hold b");
    // Wait until the acceptor has admitted both.
    let started = Instant::now();
    while control.counters().in_flight < 2 {
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "gate never filled: {:?}",
            control.counters()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The burst: every further connection gets the typed shed reply.
    let mut shed_seen = 0;
    for _ in 0..3 {
        let stream = TcpStream::connect(addr).expect("burst connect");
        let reply = read_reply(&stream);
        assert!(
            reply.contains("overloaded"),
            "expected a typed shed reply, got: {reply}"
        );
        shed_seen += 1;
    }
    assert_eq!(shed_seen, 3);
    drop(hold_a);
    drop(hold_b);

    // Once the held connections die, the gate reopens and health reports
    // what happened.
    let started = Instant::now();
    loop {
        let mut stream = TcpStream::connect(addr).expect("health connect");
        stream
            .write_all(b"{\"op\":\"health\"}\n")
            .expect("health request");
        let reply = read_reply(&stream);
        if reply.starts_with("{\"ok\":true") {
            assert!(
                reply.contains("\\\"shed\\\": 3") || reply.contains("\"shed\": 3"),
                "health does not report the 3 shed connections: {reply}"
            );
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "gate never reopened; last reply: {reply}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    server.stop();
    server.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_finishes_in_flight_and_refuses_new_connections() {
    let dir = temp_store("drain");
    let (server, addr) = start(&dir, tight_options());
    let control = server.control();

    // An in-flight conversation, mid-stream.
    let mut veteran = TcpStream::connect(addr).expect("veteran connect");
    veteran
        .write_all(b"{\"op\":\"years\"}\n")
        .expect("first request");
    assert!(read_reply(&veteran).starts_with("{\"ok\":true"));

    control.drain();

    // New connections are refused with the typed draining reply.
    let newcomer = TcpStream::connect(addr).expect("newcomer connect");
    let reply = read_reply(&newcomer);
    assert!(
        reply.contains("draining"),
        "newcomer not refused typed during drain: {reply}"
    );

    // The in-flight conversation still finishes.
    veteran
        .write_all(b"{\"op\":\"table1\"}\n")
        .expect("second request");
    assert!(
        read_reply(&veteran).starts_with("{\"ok\":true"),
        "drain killed an in-flight conversation"
    );
    drop(veteran);

    assert!(
        control.drain_then_stop(Duration::from_secs(5)),
        "daemon did not go idle within the grace period"
    );
    server.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_failed_reload_keeps_the_last_good_image() {
    let dir = temp_store("reload");
    let (server, addr) = start(&dir, tight_options());

    let before = query(&addr, "{\"op\":\"table1\"}");
    assert!(before.starts_with("{\"ok\":true"));

    // Corrupt every slice on disk: the next reload must fail...
    for entry in std::fs::read_dir(&dir).expect("store dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "store") {
            std::fs::write(&path, b"not a store slice").expect("corrupt slice");
        }
    }
    let reply = query(&addr, "{\"op\":\"reload\"}");
    assert!(
        reply.starts_with("{\"ok\":false") && reply.contains("reload failed"),
        "reload over a corrupt store must fail typed: {reply}"
    );

    // ...and the daemon must keep answering from the last good image.
    assert_eq!(
        query(&addr, "{\"op\":\"table1\"}"),
        before,
        "a failed reload replaced the last-good image"
    );

    server.stop();
    server.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn health_reports_liveness_counters() {
    let dir = temp_store("health");
    let (server, addr) = start(&dir, tight_options());

    query(&addr, "{\"op\":\"years\"}");
    let reply = query(&addr, "{\"op\":\"health\"}");
    assert!(reply.starts_with("{\"ok\":true"), "health failed: {reply}");
    for field in [
        "generation",
        "uptime_ms",
        "in_flight",
        "served",
        "shed",
        "draining",
    ] {
        assert!(reply.contains(field), "health lacks {field}: {reply}");
    }

    server.stop();
    server.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_connections_are_reaped_by_the_stall_cutoff() {
    let dir = temp_store("idle");
    let (server, addr) = start(&dir, tight_options());
    let control = server.control();

    // Connect and say nothing. The 1 s idle cutoff must reap it.
    let stream = TcpStream::connect(addr).expect("idle connect");
    let started = Instant::now();
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    // The daemon sends a typed idle rejection, then closes.
    let n = reader.read_line(&mut line).expect("idle reply");
    assert!(n > 0, "connection closed with no typed reply");
    assert!(
        line.contains("deadline exceeded"),
        "idle cutoff reply not typed: {line}"
    );
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("eof");
    assert!(rest.is_empty(), "daemon kept talking after the cutoff");
    assert!(
        started.elapsed() >= Duration::from_millis(900),
        "idle cutoff fired before the stall budget"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "idle cutoff took {:?}",
        started.elapsed()
    );

    // The reader slot is free again.
    let settled = Instant::now();
    while control.counters().in_flight > 0 {
        assert!(
            settled.elapsed() < Duration::from_secs(5),
            "slot never freed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    server.stop();
    server.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&dir);
}
