//! End-to-end pipeline invariants: generator → telescope capture →
//! fingerprinting → campaign detection → analysis, across crates.

use synscan::experiment::Experiment;
use synscan::GeneratorConfig;

fn experiment() -> Experiment {
    Experiment::new(GeneratorConfig::tiny())
}

#[test]
fn capture_accounting_balances() {
    let run = experiment().run_year(2020);
    let stats = run.capture;
    assert_eq!(
        stats.offered,
        stats.admitted + stats.not_dark + stats.ingress_blocked + stats.backscatter,
        "every offered frame is accounted for exactly once"
    );
    assert_eq!(stats.not_dark, 0, "the generator only targets dark space");
    assert_eq!(stats.backscatter, run.truth.backscatter_packets);
    assert_eq!(run.analysis.total_packets, stats.admitted);
}

#[test]
fn campaigns_plus_noise_cover_all_admitted_packets() {
    let run = experiment().run_year(2019);
    let campaign_packets: u64 = run.analysis.campaigns.iter().map(|c| c.packets).sum();
    assert_eq!(
        campaign_packets + run.analysis.noise.rejected_packets,
        run.analysis.total_packets,
        "admitted packets are split exactly between campaigns and noise"
    );
}

#[test]
fn campaign_metrics_are_internally_consistent() {
    let run = experiment().run_year(2021);
    let config = Experiment::new(GeneratorConfig::tiny()).campaign_config();
    for campaign in &run.analysis.campaigns {
        assert!(campaign.first_ts_micros <= campaign.last_ts_micros);
        assert!(campaign.distinct_dests >= config.min_distinct_dests);
        assert!(campaign.distinct_dests <= campaign.packets);
        let per_port: u64 = campaign.port_packets.values().sum();
        assert_eq!(per_port, campaign.packets, "port breakdown sums to total");
        let votes: u64 = campaign.tool_votes.values().sum();
        assert!(votes <= campaign.packets, "at most one vote per packet");
    }
}

#[test]
fn per_port_aggregates_match_totals() {
    let run = experiment().run_year(2022);
    let port_total: u64 = run.analysis.port_packets.values().sum();
    assert_eq!(port_total, run.analysis.total_packets);
    let per_source_total: u64 = run.analysis.source_packets.values().sum();
    assert_eq!(per_source_total, run.analysis.total_packets);
    assert_eq!(
        run.analysis.source_packets.len() as u64,
        run.analysis.distinct_sources
    );
    // Every port with packets has at least one source and vice versa.
    for port in run.analysis.port_packets.keys() {
        assert!(run.analysis.port_sources.get(port).copied().unwrap_or(0) >= 1);
    }
}

#[test]
fn week_cells_sum_to_totals() {
    let run = experiment().run_year(2018);
    let week_packets: u64 = run.analysis.week_blocks.values().map(|c| c.packets).sum();
    assert_eq!(week_packets, run.analysis.total_packets);
    let week_campaigns: u64 = run.analysis.week_blocks.values().map(|c| c.campaigns).sum();
    assert_eq!(week_campaigns, run.analysis.campaigns.len() as u64);
}

#[test]
fn blocked_ports_never_reach_analysis_after_2016() {
    for year in [2017u16, 2020, 2024] {
        let run = experiment().run_year(year);
        assert!(!run.analysis.port_packets.contains_key(&23), "year {year}");
        assert!(!run.analysis.port_packets.contains_key(&445), "year {year}");
    }
    // 2016 still admits Telnet.
    let run2016 = experiment().run_year(2016);
    assert!(run2016.capture.ingress_blocked == 0);
}

#[test]
fn determinism_across_runs() {
    let a = experiment().run_year(2020);
    let b = experiment().run_year(2020);
    assert_eq!(a.analysis.total_packets, b.analysis.total_packets);
    assert_eq!(a.analysis.campaigns.len(), b.analysis.campaigns.len());
    assert_eq!(a.analysis.campaigns, b.analysis.campaigns);
    assert_eq!(a.capture, b.capture);
}

#[test]
fn different_seeds_differ() {
    let a = experiment().run_year(2020);
    let mut gen = GeneratorConfig::tiny();
    gen.seed ^= 0xdead;
    let b = Experiment::new(gen).run_year(2020);
    assert_ne!(a.analysis.campaigns, b.analysis.campaigns);
}

#[test]
fn timestamps_are_monotone_within_window() {
    let gen = GeneratorConfig::tiny();
    let run = Experiment::new(gen).run_year(2015);
    let window_micros = (gen.days * 86_400.0 * 1e6) as u64;
    assert!(run.analysis.start_micros <= run.analysis.end_micros);
    assert!(
        run.analysis.end_micros <= window_micros + 1,
        "nothing exceeds the configured window"
    );
}

#[test]
fn outage_windows_drop_frames_but_preserve_accounting() {
    use synscan::core::analysis::YearCollector;
    use synscan::telescope::CaptureSession;

    let experiment = Experiment::new(GeneratorConfig::tiny());
    let output = synscan::synthesis::generate::generate_year(
        &synscan::YearConfig::for_year(2020),
        experiment.config(),
        experiment.registry(),
        experiment.dark(),
    );
    // A 12-hour outage on day 1.
    let outage = (129_600_000_000u64, 172_800_000_000u64);
    let mut session = CaptureSession::with_outages(experiment.dark(), 2020, vec![outage]);
    let mut collector = YearCollector::new(2020, experiment.campaign_config());
    for record in &output.records {
        if session.offer(record) {
            collector.offer(record);
        }
    }
    let stats = session.stats();
    assert!(stats.outage_lost > 0, "a 12h outage loses traffic");
    assert_eq!(
        stats.offered,
        stats.admitted
            + stats.not_dark
            + stats.ingress_blocked
            + stats.backscatter
            + stats.other_scan_techniques
            + stats.outage_lost
    );
    let analysis = collector.finish();
    let no_outage = experiment.run_year(2020);
    assert!(
        analysis.total_packets < no_outage.analysis.total_packets,
        "outage must reduce admitted volume ({} vs {})",
        analysis.total_packets,
        no_outage.analysis.total_packets
    );
}
