//! The paper's headline claims, asserted against a reduced-scale decade run.
//!
//! These are *shape* assertions (who wins, what grows, where the modes sit),
//! not absolute-number matches — the full-scale comparison lives in
//! EXPERIMENTS.md. The run uses a 1/16 telescope with 1/1200 of the
//! population over 5 days so the whole suite stays test-suite fast.

use std::sync::OnceLock;

use synscan::core::analysis::{portspread, recurrence, speedcov, toolports, types, volatility};
use synscan::experiment::{DecadeRun, Experiment};
use synscan::netmodel::ScannerClass;
use synscan::{GeneratorConfig, ToolKind};

fn decade() -> &'static DecadeRun {
    static RUN: OnceLock<DecadeRun> = OnceLock::new();
    RUN.get_or_init(|| {
        let gen = GeneratorConfig {
            telescope_denominator: 16,
            population_denominator: 1200,
            days: 5.0,
            ..GeneratorConfig::default()
        };
        Experiment::new(gen).run_decade()
    })
}

fn year(y: u16) -> &'static synscan::core::analysis::YearAnalysis {
    &decade()
        .years
        .iter()
        .find(|r| r.analysis.year == y)
        .expect("year simulated")
        .analysis
}

#[test]
fn claim_scanning_grew_dramatically_over_the_decade() {
    // Paper: 11M packets/day (2015) -> 345M (2024), a ~30x increase.
    let report = decade().report();
    let growth = report.packets_per_day_growth().unwrap();
    assert!(
        growth > 10.0 && growth < 100.0,
        "packets/day growth = {growth}, paper ~31x"
    );
    // Scans grew even faster in count terms.
    let scan_growth = report.scans_per_month_growth().unwrap();
    assert!(scan_growth > 8.0, "scan growth = {scan_growth}, paper ~39x");
}

#[test]
fn claim_growth_stalls_after_2020() {
    // Paper §5: exponential growth halts in 2020; 2020-2022 volumes are flat.
    let p2015 = year(2015).packets_per_day();
    let p2020 = year(2020).packets_per_day();
    let p2022 = year(2022).packets_per_day();
    assert!(p2020 / p2015 > 8.0, "2015->2020 is the explosive era");
    assert!(
        p2022 / p2020 < 2.5,
        "2020->2022 is nearly flat ({:.1}x)",
        p2022 / p2020
    );
}

#[test]
fn claim_mirai_dominates_2017_scans() {
    // Paper: "in 2017 more than half of all scans originated from Mirai";
    // Table 1 row: 46.5%.
    let mirai_2017 = year(2017)
        .campaigns
        .iter()
        .filter(|c| c.tool() == Some(ToolKind::Mirai))
        .count() as f64
        / year(2017).campaigns.len().max(1) as f64;
    assert!(
        mirai_2017 > 0.25,
        "Mirai share of 2017 scans = {mirai_2017}, paper 46.5%"
    );
    // And it is absent in 2015 (pre-Mirai).
    let mirai_2015 = year(2015)
        .campaigns
        .iter()
        .filter(|c| c.tool() == Some(ToolKind::Mirai))
        .count();
    assert_eq!(mirai_2015, 0, "Mirai did not exist in 2015");
}

#[test]
fn claim_zmap_fleet_surge_in_2024() {
    // Paper §4.1: ZMap scans explode in 2024 (min/day 17,122 vs 3,448 in
    // 2023; Table 1: 22% -> 59% of scans).
    let zmap_count = |y: u16| {
        year(y)
            .campaigns
            .iter()
            .filter(|c| c.tool() == Some(ToolKind::Zmap))
            .count() as f64
    };
    assert!(
        zmap_count(2024) > 2.0 * zmap_count(2023),
        "2024 ZMap campaigns ({}) must dwarf 2023 ({})",
        zmap_count(2024),
        zmap_count(2023)
    );
}

#[test]
fn claim_tracked_tool_traffic_peaks_then_collapses() {
    // Paper §6.1: 25% of packets from tracked tools in 2015, >90% in 2020,
    // under 40% in 2024 after de-fingerprinting.
    let t2015 = toolports::tracked_tool_traffic_share(year(2015));
    let t2020 = toolports::tracked_tool_traffic_share(year(2020));
    let t2024 = toolports::tracked_tool_traffic_share(year(2024));
    assert!(
        t2020 > t2015,
        "adoption rises into 2020 ({t2015} -> {t2020})"
    );
    assert!(t2020 > 0.5, "2020 is the fingerprintable peak ({t2020})");
    assert!(
        t2024 < t2020 * 0.6,
        "2024 collapses after de-fingerprinting ({t2020} -> {t2024})"
    );
}

#[test]
fn claim_single_port_scanning_erodes() {
    // Paper Figure 3: 83% single-port sources in 2015 -> 74% (2020) -> 65%
    // (2022), continuing down.
    let s2015 = portspread::single_port_fraction(year(2015));
    let s2020 = portspread::single_port_fraction(year(2020));
    let s2024 = portspread::single_port_fraction(year(2024));
    assert!(
        s2015 > s2020 && s2020 > s2024,
        "{s2015} > {s2020} > {s2024}"
    );
    assert!(s2015 > 0.75, "2015 is single-port dominated ({s2015})");
    assert!(s2024 < 0.75, "2024 is diversified ({s2024})");
}

#[test]
fn claim_the_ecosystem_is_weekly_volatile() {
    // Paper Figure 2 + §4.4: in more than 50% of /16s, activity changes by
    // a factor >= 2 period over period; only 20-30% of blocks are stable.
    let v = volatility::weekly_change(year(2022));
    let (sources, _, packets) = v.fraction_changing_by(2.0);
    assert!(sources > 0.5, "source volatility {sources}");
    assert!(packets > 0.5, "packet volatility {packets}");
}

#[test]
fn claim_institutional_scanners_punch_far_above_their_weight() {
    // Paper Table 2: 0.16% of sources send 32.63% of packets.
    let run = decade();
    let mut inst_sources = 0.0;
    let mut inst_packets = 0.0;
    let mut total_years = 0.0;
    for yr in &run.years {
        let shares = types::class_shares(&yr.analysis, &run.registry);
        let inst = shares[&ScannerClass::Institutional];
        inst_sources += inst.sources;
        inst_packets += inst.packets;
        total_years += 1.0;
    }
    let avg_sources = inst_sources / total_years;
    let avg_packets = inst_packets / total_years;
    assert!(
        avg_sources < 0.05,
        "institutional sources are rare ({avg_sources})"
    );
    assert!(
        avg_packets > 0.10,
        "institutional packets are heavy ({avg_packets})"
    );
    assert!(
        avg_packets / avg_sources > 10.0,
        "the asymmetry is the headline ({avg_packets} / {avg_sources})"
    );
}

#[test]
fn claim_institutional_scanners_recur_daily_others_do_not() {
    // Paper Figure 6 / §6.6.
    let run = decade();
    let campaigns: Vec<synscan::Campaign> = run
        .years
        .iter()
        .flat_map(|y| y.analysis.campaigns.iter().cloned())
        .collect();
    let rec = recurrence::recurrence(&campaigns, &run.registry);
    let inst = rec.fraction_with_more_than(ScannerClass::Institutional, 3.0);
    let res = rec.fraction_with_more_than(ScannerClass::Residential, 3.0);
    assert!(
        inst > 0.3,
        "institutional sources run many campaigns ({inst})"
    );
    assert!(res < 0.1, "residential sources do not return ({res})");
    // The daily downtime mode exists only for institutional sources.
    let inst_daily = rec.downtime_mode_fraction(ScannerClass::Institutional, 57_600.0, 115_200.0);
    assert!(inst_daily > 0.3, "daily re-scan mode ({inst_daily})");
}

#[test]
fn claim_institutional_scanning_is_fastest() {
    // Paper §6.8: institutions scan ~92x faster than the average scanner;
    // 84% of institutional scans exceed 1,000 pps.
    let run = decade();
    let campaigns: Vec<synscan::Campaign> = run
        .years
        .iter()
        .flat_map(|y| y.analysis.campaigns.iter().cloned())
        .collect();
    let sc = speedcov::by_class(&campaigns, &run.registry, run.monitored);
    let inst = sc.mean_speed(&ScannerClass::Institutional).unwrap();
    let res = sc.mean_speed(&ScannerClass::Residential).unwrap();
    assert!(
        inst > 3.0 * res,
        "institutional {inst} vs residential {res}"
    );
    let fast = sc
        .fraction_faster_than(&ScannerClass::Institutional, 1000.0)
        .unwrap();
    assert!(fast > 0.8, "institutional >1000 pps fraction = {fast}");
}

#[test]
fn claim_speed_correlates_with_port_breadth() {
    // Paper §5.3: R = 0.88 between scan speed and ports targeted.
    let run = decade();
    let campaigns: Vec<synscan::Campaign> = run
        .years
        .iter()
        .flat_map(|y| y.analysis.campaigns.iter().cloned())
        .collect();
    let r = speedcov::speed_ports_correlation(&campaigns, run.monitored).unwrap();
    assert!(r.r > 0.15, "positive correlation, got {}", r.r);
    assert!(r.significant_at(0.05));
}

#[test]
fn claim_vertical_scans_multiply_from_2015_to_2020() {
    // Paper §5.2: 1 scan targeting >10k ports in 2015 vs 2,134 in 2020.
    use synscan::core::analysis::vertical::vertical_stats;
    let run = decade();
    let v2015 = vertical_stats(&year(2015).campaigns, run.monitored);
    let v2020 = vertical_stats(&year(2020).campaigns, run.monitored);
    assert!(
        v2020.over_1000_ports >= v2015.over_1000_ports,
        "vertical scanning grows: {} -> {}",
        v2015.over_1000_ports,
        v2020.over_1000_ports
    );
    assert!(v2020.max_ports > 1_000, "2020 has large vertical scans");
}

#[test]
fn claim_co_scanning_of_alias_ports_rises() {
    // Paper §5.1: 18% of port-80 scans also touch 8080 in 2015; 87% by 2020.
    let co2015 = portspread::campaign_co_scan_fraction(year(2015), 80, 8080);
    let co2020 = portspread::campaign_co_scan_fraction(year(2020), 80, 8080);
    if let (Some(a), Some(b)) = (co2015, co2020) {
        assert!(b > a, "co-scanning rises: {a} -> {b}");
    }
}

#[test]
fn claim_known_orgs_blanket_the_port_range_by_2024() {
    // Paper Figure 8: Censys and Palo Alto cover all 65,536 ports in 2024;
    // universities stay at a handful.
    use synscan::core::analysis::institutions;
    let run = decade();
    let rows = institutions::org_port_coverage(&year(2024).campaigns, &run.registry);
    assert!(!rows.is_empty(), "known orgs are visible in 2024");
    // At this reduced scale the leaders' packet budgets bound the observable
    // union (covering 65,536 ports needs >= 65k packets); the full-range
    // coverage of Figure 8 emerges at the default scale (see EXPERIMENTS.md).
    // Here we assert the *ordering*: the broadest org dwarfs the narrowest.
    let max_ports = rows.iter().map(|r| r.ports_scanned).max().unwrap();
    let min_ports = rows.iter().map(|r| r.ports_scanned).min().unwrap();
    assert!(
        max_ports > 1_000,
        "the leaders scan thousands of ports ({max_ports})"
    );
    assert!(
        max_ports >= 20 * min_ports.max(1),
        "breadth varies by orders of magnitude across orgs ({min_ports}..{max_ports})"
    );
    // 2023 vs 2024: coverage grows or holds for the leaders.
    let rows23 = institutions::org_port_coverage(&year(2023).campaigns, &run.registry);
    let top23 = rows23.first().map(|r| r.ports_scanned).unwrap_or(0);
    let top24 = rows.first().map(|r| r.ports_scanned).unwrap_or(0);
    assert!(top24 as f64 >= top23 as f64 * 0.8);
}
