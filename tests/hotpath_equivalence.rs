//! Randomized equivalence: the compact hot path (interned sources, fx-hashed
//! packed-key maps, sorted-vec/bitmap sets, enum-keyed noise) against a naive
//! std-collection reference over fuzzed record streams.
//!
//! The reference implementation below is deliberately the *old* shape of the
//! collector: the address-keyed [`FingerprintEngine`], an IP-keyed open-scan
//! map, and per-aggregate `HashMap`/`HashSet`s — one lookup per aggregate per
//! record. Both sides consume ~50k pseudo-random records (tool marks, shared
//! destinations, port sets wide enough to spill every hybrid-set
//! representation, idle gaps spanning the campaign expiry) and must produce
//! an identical [`YearAnalysis`], sequentially and through the sharded merge.

use std::collections::{BTreeMap, HashMap, HashSet};

use synscan_core::analysis::{WeekCell, YearAnalysis, YearCollector};
use synscan_core::campaign::{Campaign, CampaignConfig, NoiseStats, RejectReason};
use synscan_core::fingerprint::FingerprintEngine;
use synscan_core::pipeline::SizeHints;
use synscan_core::{collect_year_sharded, ToolKind};
use synscan_wire::{Ipv4Address, ProbeRecord, TcpFlags};

const YEAR: u16 = 2020;
const PERIOD_DAYS: f64 = 0.5;
const DAY_MICROS: u64 = 86_400 * 1_000_000;
const RECORDS: usize = 50_000;
const SOURCE_POOL: usize = 256;

fn config() -> CampaignConfig {
    CampaignConfig {
        min_distinct_dests: 8,
        min_rate_pps: 100.0,
        expiry_secs: 600.0,
        monitored_addresses: 1 << 16,
    }
}

/// splitmix64: deterministic, dependency-free stream of fuzz words.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// ~50k records from a 256-source pool: nondecreasing timestamps with
/// occasional six-hour gaps (splits campaigns, advances the day index), tool
/// marks on a subset (ZMap constant, Mirai seq=dst, Masscan relation), narrow
/// and wide port behaviors (spilling both `IdSet` and `PortSet` to bitmaps),
/// and destination reuse (exercising distinct-dest dedup).
fn fuzz_records(seed: u64) -> Vec<ProbeRecord> {
    // Source pool spread over a handful of /16s so week cells collide;
    // low bits stride by a constant so all 256 addresses are distinct.
    let sources: Vec<u32> = (0..SOURCE_POOL as u32)
        .map(|i| ((i % 8) << 16) | 0x0a00_0000 | (i * 251))
        .collect();

    let mut records = Vec::with_capacity(RECORDS);
    let mut ts = 1_000u64;
    for n in 0..RECORDS as u64 {
        let r = mix64(seed.wrapping_add(n.wrapping_mul(0x51_7c_c1_b7)));
        ts += r % 50_000;
        if n > 0 && n % 8_192 == 0 {
            ts += 6 * 3600 * 1_000_000; // past expiry, into the next day-ish
        }
        let src_idx = (r >> 8) as usize % SOURCE_POOL;
        let src = sources[src_idx];
        // A quarter of the pool scans few destinations (noise candidates);
        // the rest range widely (campaign candidates).
        let dst = if src_idx % 4 == 0 {
            0x0100_0000 + (r >> 16) as u32 % 6
        } else {
            0x0100_0000 + (r >> 16) as u32 % 4_096
        };
        // Half the pool sticks to popular ports (many sources per port:
        // IdSet spills); the other half sprays ports (PortSet spills).
        let dst_port = if src_idx % 2 == 0 {
            [22u16, 23, 80, 443, 7547, 8080][(r >> 24) as usize % 6]
        } else {
            1024 + ((r >> 24) % 5_000) as u16
        };
        let mut seq = (r >> 13) as u32;
        let mut ip_id = ((r >> 40) % 54_000) as u16;
        match n % 16 {
            0 | 1 => ip_id = 54_321, // ZMap mark
            2 => seq = dst,          // Mirai quirk
            3 => ip_id = ((dst ^ u32::from(dst_port) ^ seq) & 0xffff) as u16, // Masscan
            _ => {}
        }
        records.push(ProbeRecord {
            ts_micros: ts,
            src_ip: Ipv4Address(src),
            dst_ip: Ipv4Address(dst),
            src_port: 30_000 + (r % 20_000) as u16,
            dst_port,
            seq,
            ip_id,
            ttl: 32 + (r % 200) as u8,
            flags: TcpFlags::SYN,
            window: (r >> 48) as u16,
        });
    }
    records
}

/// The pre-compaction open-scan state, IP-keyed.
#[derive(Default)]
struct NaiveScan {
    first_ts: u64,
    last_ts: u64,
    packets: u64,
    dests: HashSet<u32>,
    port_packets: BTreeMap<u16, u64>,
    tool_votes: BTreeMap<ToolKind, u64>,
}

/// The pre-compaction collector: every aggregate its own std map, the
/// fingerprint engine keyed by address, reject reasons counted per close.
struct NaiveCollector {
    config: CampaignConfig,
    expiry_micros: u64,
    engine: FingerprintEngine,
    open: HashMap<u32, NaiveScan>,
    campaigns: Vec<Campaign>,
    noise: NoiseStats,
    t0: Option<u64>,
    end: u64,
    total: u64,
    period_micros: u64,
    sources: HashSet<u32>,
    port_packets: BTreeMap<u16, u64>,
    port_source_sets: HashMap<u16, HashSet<u32>>,
    source_ports: HashMap<u32, HashSet<u16>>,
    source_packets: HashMap<u32, u64>,
    day_port_packets: HashMap<(u32, u16), u64>,
    tool_port_packets: HashMap<(Option<ToolKind>, u16), u64>,
    week_cells: HashMap<(u32, u16), (u64, HashSet<u32>)>,
}

impl NaiveCollector {
    fn new(config: CampaignConfig, period_days: f64) -> Self {
        let expiry_micros = (config.expiry_secs * 1e6) as u64;
        Self {
            config,
            expiry_micros,
            engine: FingerprintEngine::with_expiry(expiry_micros),
            open: HashMap::new(),
            campaigns: Vec::new(),
            noise: NoiseStats::default(),
            t0: None,
            end: 0,
            total: 0,
            period_micros: (period_days * DAY_MICROS as f64) as u64,
            sources: HashSet::new(),
            port_packets: BTreeMap::new(),
            port_source_sets: HashMap::new(),
            source_ports: HashMap::new(),
            source_packets: HashMap::new(),
            day_port_packets: HashMap::new(),
            tool_port_packets: HashMap::new(),
            week_cells: HashMap::new(),
        }
    }

    fn close(&mut self, src: u32) {
        let scan = self.open.remove(&src).expect("open scan");
        let reject = if (scan.dests.len() as u64) < self.config.min_distinct_dests {
            Some(RejectReason::TooFewDestinations)
        } else {
            let duration = (scan.last_ts - scan.first_ts) as f64 / 1e6;
            let slow = duration > 0.0 && {
                let est = self
                    .config
                    .model()
                    .extrapolate_rate(scan.packets as f64 / duration);
                est < self.config.min_rate_pps
            };
            slow.then_some(RejectReason::TooSlow)
        };
        match reject {
            None => self.campaigns.push(Campaign {
                src_ip: Ipv4Address(src),
                first_ts_micros: scan.first_ts,
                last_ts_micros: scan.last_ts,
                packets: scan.packets,
                distinct_dests: scan.dests.len() as u64,
                port_packets: scan.port_packets,
                tool_votes: scan.tool_votes,
            }),
            Some(reason) => {
                *self.noise.rejected_sequences.entry(reason).or_default() += 1;
                self.noise.rejected_packets += scan.packets;
            }
        }
    }

    fn offer(&mut self, record: &ProbeRecord) {
        let verdict = self.engine.classify(record);
        let src = record.src_ip.0;

        // Campaign detection, IP-keyed.
        if let Some(scan) = self.open.get(&src) {
            if record.ts_micros.saturating_sub(scan.last_ts) > self.expiry_micros {
                self.close(src);
            }
        }
        let scan = self.open.entry(src).or_insert_with(|| NaiveScan {
            first_ts: record.ts_micros,
            last_ts: record.ts_micros,
            ..NaiveScan::default()
        });
        scan.first_ts = scan.first_ts.min(record.ts_micros);
        scan.last_ts = scan.last_ts.max(record.ts_micros);
        scan.packets += 1;
        scan.dests.insert(record.dst_ip.0);
        *scan.port_packets.entry(record.dst_port).or_default() += 1;
        if let Some(tool) = verdict.tool() {
            *scan.tool_votes.entry(tool).or_default() += 1;
        }

        // Aggregation, one std container per aggregate.
        let t0 = *self.t0.get_or_insert(record.ts_micros);
        self.end = self.end.max(record.ts_micros);
        self.total += 1;
        self.sources.insert(src);
        *self.port_packets.entry(record.dst_port).or_default() += 1;
        self.port_source_sets
            .entry(record.dst_port)
            .or_default()
            .insert(src);
        self.source_ports
            .entry(src)
            .or_default()
            .insert(record.dst_port);
        *self.source_packets.entry(src).or_default() += 1;
        let rel = record.ts_micros.saturating_sub(t0);
        *self
            .day_port_packets
            .entry(((rel / DAY_MICROS) as u32, record.dst_port))
            .or_default() += 1;
        *self
            .tool_port_packets
            .entry((verdict.tool(), record.dst_port))
            .or_default() += 1;
        let cell = self
            .week_cells
            .entry(((rel / self.period_micros) as u32, record.src_ip.slash16()))
            .or_insert_with(|| (0, HashSet::new()));
        cell.0 += 1;
        cell.1.insert(src);
    }

    fn finish(mut self) -> YearAnalysis {
        let srcs: Vec<u32> = self.open.keys().copied().collect();
        for src in srcs {
            self.close(src);
        }
        self.campaigns
            .sort_by_key(|c| (c.first_ts_micros, c.src_ip));
        let t0 = self.t0.unwrap_or(0);

        let mut week_blocks: HashMap<(u32, u16), WeekCell> = self
            .week_cells
            .into_iter()
            .map(|(key, (packets, sources))| {
                (
                    key,
                    WeekCell {
                        sources: sources.len() as u64,
                        packets,
                        campaigns: 0,
                    },
                )
            })
            .collect();
        for campaign in &self.campaigns {
            let week = (campaign.first_ts_micros.saturating_sub(t0) / self.period_micros) as u32;
            week_blocks
                .entry((week, campaign.src_ip.slash16()))
                .or_default()
                .campaigns += 1;
        }

        YearAnalysis {
            year: YEAR,
            start_micros: t0,
            end_micros: self.end,
            total_packets: self.total,
            distinct_sources: self.sources.len() as u64,
            port_sources: self
                .port_source_sets
                .iter()
                .map(|(&port, set)| (port, set.len() as u64))
                .collect(),
            port_packets: self.port_packets,
            source_port_counts: self
                .source_ports
                .into_iter()
                .map(|(src, ports)| (src, ports.len() as u32))
                .collect(),
            source_packets: self.source_packets,
            port_source_sets: self.port_source_sets,
            day_port_packets: self.day_port_packets,
            tool_port_packets: self.tool_port_packets,
            week_blocks,
            campaigns: self.campaigns,
            noise: self.noise,
            monitored: self.config.monitored_addresses,
            heavy: None,
        }
    }
}

fn fast_pass(records: &[ProbeRecord], hints: SizeHints) -> YearAnalysis {
    let mut collector = YearCollector::with_period(YEAR, config(), PERIOD_DAYS);
    hints.apply_to(&mut collector);
    for (i, record) in records.iter().enumerate() {
        collector.offer(record);
        // Aggressive housekeeping cadence: expiry sweeps must never shift
        // a single verdict or campaign boundary.
        if i % 1_024 == 0 {
            collector.housekeeping(record.ts_micros);
        }
    }
    collector.finish()
}

#[test]
fn compact_collector_matches_naive_reference_on_fuzzed_records() {
    for seed in [0x5eed_0001u64, 0xdead_beef_cafe] {
        let records = fuzz_records(seed);
        let mut naive = NaiveCollector::new(config(), PERIOD_DAYS);
        for record in &records {
            naive.offer(record);
        }
        let reference = naive.finish();
        let fast = fast_pass(&records, SizeHints::none());

        // Sanity: the stream actually exercised the interesting machinery.
        assert_eq!(reference.distinct_sources, SOURCE_POOL as u64);
        assert!(
            !reference.campaigns.is_empty(),
            "no campaigns (seed {seed:#x})"
        );
        assert!(
            reference.noise.rejected_packets > 0,
            "no noise (seed {seed:#x})"
        );
        assert!(
            reference
                .tool_port_packets
                .keys()
                .any(|(tool, _)| tool.is_some()),
            "no tool attributions (seed {seed:#x})"
        );

        assert_eq!(fast, reference, "compact ≠ naive (seed {seed:#x})");

        // Pre-sizing and sharding are pure performance knobs.
        let presized = fast_pass(&records, SizeHints::new(SOURCE_POOL, 64));
        assert_eq!(presized, reference, "pre-sized diverged (seed {seed:#x})");
        for workers in [1usize, 3] {
            let sharded = collect_year_sharded(
                YEAR,
                config(),
                PERIOD_DAYS,
                workers,
                SizeHints::new(SOURCE_POOL, 64),
                &records,
                |_| true,
            );
            assert_eq!(
                sharded, reference,
                "sharded:{workers} diverged (seed {seed:#x})"
            );
        }
    }
}

#[test]
fn naive_reference_rejects_and_splits_like_the_detector() {
    // Focused check that the reference itself is faithful: a slow narrow
    // source is noise; a fast wide source split by an idle gap yields two
    // campaigns — mirrored exactly by the compact path.
    let mk = |src: u32, dst: u32, port: u16, ts: u64| ProbeRecord {
        ts_micros: ts,
        src_ip: Ipv4Address(src),
        dst_ip: Ipv4Address(dst),
        src_port: 40_000,
        dst_port: port,
        seq: dst ^ 0x0f0f_0f0f,
        ip_id: 9,
        ttl: 64,
        flags: TcpFlags::SYN,
        window: 1024,
    };
    let mut records = Vec::new();
    for i in 0..4u32 {
        records.push(mk(1, 100 + i, 80, 1_000 + u64::from(i) * 1_000));
    }
    for i in 0..20u32 {
        records.push(mk(2, 200 + i, 443, 1_500 + u64::from(i) * 1_000));
    }
    let gap = 2 * 600 * 1_000_000u64;
    for i in 0..20u32 {
        records.push(mk(2, 400 + i, 443, gap + u64::from(i) * 1_000));
    }
    records.sort_by_key(|r| r.ts_micros);

    let mut naive = NaiveCollector::new(config(), PERIOD_DAYS);
    for record in &records {
        naive.offer(record);
    }
    let reference = naive.finish();
    assert_eq!(reference.campaigns.len(), 2);
    assert_eq!(
        reference
            .noise
            .rejected_sequences
            .get(&RejectReason::TooFewDestinations),
        Some(&1)
    );
    assert_eq!(fast_pass(&records, SizeHints::none()), reference);
}
