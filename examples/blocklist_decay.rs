//! Does blocking yesterday's scanners help tomorrow? (§4.4 / §6.6)
//!
//! The paper's operational takeaway: because non-institutional scanner IPs
//! are burned after a single campaign, "collecting and sharing lists of IP
//! addresses observed to have participated in scanning ... would in
//! practice be relatively ineffective". This example builds a blocklist
//! from day 0 of a simulated 2022 capture and measures, day by day, how
//! much of the subsequent scanning it would actually have stopped — then
//! shows the one population it *does* catch: institutional scanners, which
//! return daily.
//!
//! ```text
//! cargo run --release --example blocklist_decay
//! ```

use synscan::core::analysis::blocklist;
use synscan::experiment::Experiment;
use synscan::netmodel::ScannerClass;
use synscan::GeneratorConfig;

fn main() {
    let gen = GeneratorConfig {
        telescope_denominator: 8,
        population_denominator: 640,
        days: 7.0,
        ..GeneratorConfig::default()
    };
    println!("simulating one week of 2022 scanning ...");
    let experiment = Experiment::new(gen);
    let run = experiment.run_year(2022);
    let campaigns = &run.analysis.campaigns;
    println!(
        "{} campaigns from {} sources\n",
        campaigns.len(),
        run.analysis.distinct_sources
    );

    const DAY: u64 = 86_400_000_000;
    let t0 = run.analysis.start_micros;

    println!("blocklist built from day 0, evaluated against each later day:");
    println!(
        "{:>6} {:>12} {:>16} {:>16}",
        "day", "list size", "sources blocked", "packets blocked"
    );
    let decay = blocklist::blocklist_decay(campaigns, t0, DAY, 6);
    for (i, eff) in decay.iter().enumerate() {
        println!(
            "{:>6} {:>12} {:>15.1}% {:>15.1}%",
            i + 1,
            eff.list_size,
            eff.sources_blocked * 100.0,
            eff.packets_blocked * 100.0
        );
    }

    // Split the evaluation by scanner class: the recurring institutional
    // fleet is the only population a list reliably catches.
    let registry = &experiment;
    let inst: Vec<synscan::Campaign> = campaigns
        .iter()
        .filter(|c| registry.registry().class(c.src_ip) == ScannerClass::Institutional)
        .cloned()
        .collect();
    let rest: Vec<synscan::Campaign> = campaigns
        .iter()
        .filter(|c| registry.registry().class(c.src_ip) != ScannerClass::Institutional)
        .cloned()
        .collect();
    let inst_eff = blocklist::blocklist_efficacy(&inst, (t0, t0 + DAY), (t0 + DAY, t0 + 2 * DAY));
    let rest_eff = blocklist::blocklist_efficacy(&rest, (t0, t0 + DAY), (t0 + DAY, t0 + 2 * DAY));
    println!(
        "\nday-1 efficacy by population: institutional {:.0}% of sources blocked, everyone else {:.1}%",
        inst_eff.sources_blocked * 100.0,
        rest_eff.sources_blocked * 100.0
    );

    let avg_decay: f64 =
        decay.iter().map(|e| e.sources_blocked).sum::<f64>() / decay.len().max(1) as f64;
    assert!(
        avg_decay < 0.25,
        "a scanner blocklist must be mostly useless ({avg_decay})"
    );
    assert!(
        inst_eff.sources_blocked > rest_eff.sources_blocked,
        "institutional recurrence is the exception"
    );
    println!(
        "\nconclusion: scanner blocklists are only a real-time feed — the paper's §4.4 point."
    );
}
