//! Quickstart: the full measurement loop on real scans.
//!
//! Two scans hit the telescope:
//!
//! 1. an **Internet-wide** ZMap scan of port 443 at 100,000 pps, projected
//!    onto the dark space (the paper's standard case — the campaign
//!    detector's speed/coverage extrapolations should recover the truth);
//! 2. a **targeted** sweep of a single /16 using the *actual* ZMap
//!    target-selection algorithm (the multiplicative cyclic-group walk over
//!    ℤ*ₚ) — which the pipeline, assuming Internet-wide behaviour, vastly
//!    overestimates: the single-vantage-point bias §7 of the paper warns
//!    about, reproduced live.
//!
//! Both are captured, written to pcap, read back, fingerprinted and grouped
//! into campaigns — §3 of the paper end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use synscan::core::analysis::YearCollector;
use synscan::core::CampaignConfig;
use synscan::scanners::thinning::{project_onto_telescope, ScanSpec, TargetSpace};
use synscan::scanners::traits::{craft_record, TargetOrder};
use synscan::scanners::zmap::ZmapScanner;
use synscan::scanners::CyclicIter;
use synscan::telescope::capture::{export_pcap, import_pcap};
use synscan::telescope::{AddressSet, TelescopeConfig};
use synscan::wire::Ipv4Address;

fn main() {
    // The telescope: dark addresses spread over three /16s (scaled 1/16 so
    // the example runs in milliseconds).
    let telescope = TelescopeConfig::paper_scaled(16);
    let dark = AddressSet::build(&telescope);
    println!(
        "telescope: {} dark addresses across three /16 blocks\n",
        dark.len()
    );

    // ---- Scan 1: Internet-wide ZMap at 100 kpps ------------------------
    let mut rng = StdRng::seed_from_u64(1);
    let zmap_wide = ZmapScanner::new(0xa11);
    let spec = ScanSpec {
        start_micros: 0,
        rate_pps: 100_000.0,
        targets: TargetSpace::internet_wide(vec![443]),
        order: TargetOrder::CyclicGroup,
        coverage: 1.0,
    };
    let wide = project_onto_telescope(
        &mut rng,
        &zmap_wide,
        Ipv4Address::new(198, 51, 100, 7),
        &spec,
        &dark,
        12,
    );
    println!(
        "scan 1 (internet-wide): {:.2e} probes sent, {} hit the telescope over {:.1} h",
        wide.probes_sent as f64,
        wide.records.len(),
        wide.duration_secs / 3600.0
    );

    // ---- Scan 2: a targeted /16 sweep in true cyclic-group order --------
    let zmap_targeted = ZmapScanner::new(0xb22);
    let scanner_ip = Ipv4Address::new(203, 0, 113, 66);
    let block_base = u32::from(dark.blocks()[0]) << 16;
    let offset_base = wide.records.last().unwrap().ts_micros + 3_600_000_000;
    let mut targeted = Vec::new();
    for (i, offset) in CyclicIter::new(1 << 16, 7).enumerate() {
        let dst = Ipv4Address(block_base | offset as u32);
        if !dark.contains(dst) {
            continue; // a populated host: its traffic never reaches us
        }
        let ts = offset_base + (i as f64 / 10_000.0 * 1e6) as u64;
        targeted.push(craft_record(
            &zmap_targeted,
            scanner_ip,
            dst,
            443,
            i as u64,
            ts,
            9,
        ));
    }
    println!(
        "scan 2 (one /16 targeted): 65,536 probes sent, {} hit dark space",
        targeted.len()
    );

    // ---- pcap round trip -------------------------------------------------
    let mut records = wide.records.clone();
    records.extend(targeted);
    records.sort_by_key(|r| r.ts_micros);
    let pcap_bytes = export_pcap(&records, Vec::new()).expect("pcap export");
    let replayed = import_pcap(std::io::Cursor::new(&pcap_bytes)).expect("pcap import");
    assert_eq!(replayed, records);
    println!(
        "pcap: {} bytes round-tripped losslessly\n",
        pcap_bytes.len()
    );

    // ---- The §3 measurement pipeline -------------------------------------
    let mut collector = YearCollector::new(2024, CampaignConfig::scaled(dark.len() as u64));
    for record in &replayed {
        collector.offer(record);
    }
    let analysis = collector.finish();
    let model = analysis.model();

    for campaign in &analysis.campaigns {
        let est = campaign.estimates(&model);
        let which = if campaign.src_ip == scanner_ip {
            "targeted /16"
        } else {
            "internet-wide"
        };
        println!("campaign from {} ({which}):", campaign.src_ip);
        println!(
            "  tool {:?} | {} packets | est. rate {:.0} pps | est. coverage {:.3}% of IPv4",
            campaign.tool(),
            campaign.packets,
            est.rate_pps,
            est.ipv4_coverage * 100.0
        );
    }

    // The Internet-wide campaign's estimates recover the ground truth...
    let wide_campaign = analysis
        .campaigns
        .iter()
        .find(|c| c.src_ip != scanner_ip)
        .expect("wide campaign detected");
    let est = wide_campaign.estimates(&model);
    assert_eq!(wide_campaign.tool(), Some(synscan::ToolKind::Zmap));
    assert!(
        (est.rate_pps / 100_000.0 - 1.0).abs() < 0.25,
        "rate estimate {} should be near 100k pps",
        est.rate_pps
    );
    assert!(est.ipv4_coverage > 0.9, "full IPv4 coverage recovered");

    // ...while the targeted /16 scan is *overestimated* by the Internet-wide
    // assumption — the single-vantage bias of §7.
    let targeted_campaign = analysis
        .campaigns
        .iter()
        .find(|c| c.src_ip == scanner_ip)
        .expect("targeted campaign detected");
    let t_est = targeted_campaign.estimates(&model);
    println!(
        "\nnote: the targeted scan really covered 0.0015% of IPv4, but the\n\
         pipeline, assuming Internet-wide random probing, estimates {:.1}% —\n\
         the geographically-targeted-scan bias the paper's §7 cautions about.",
        t_est.ipv4_coverage * 100.0
    );
    assert!(t_est.ipv4_coverage > 0.1);
    println!("\nquickstart OK");
}
