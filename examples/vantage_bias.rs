//! §7 "Comparing vantage points": how much does the view depend on *where*
//! the telescope sits?
//!
//! The paper closes by cautioning that a single vantage point biases the
//! study and calls for multi-telescope validation. This example runs the
//! same 2022 ecosystem against two telescopes in different /16 blocks and
//! compares what each one measures: global quantities (volume, tool mix,
//! single-port fractions) agree well, while anything driven by individual
//! heavy hitters (exact top-port ranks) wobbles — the shape of the bias the
//! paper predicts.
//!
//! ```text
//! cargo run --release --example vantage_bias
//! ```

use synscan::core::analysis::{portspread, toolports, yearly};
use synscan::telescope::TelescopeConfig;
use synscan::{GeneratorConfig, YearConfig};

fn run_at(blocks: [u16; 3]) -> synscan::core::analysis::YearAnalysis {
    let gen = GeneratorConfig {
        telescope_denominator: 8,
        population_denominator: 640,
        days: 7.0,
        ..GeneratorConfig::default()
    };
    // Same seed, same ecosystem — different dark space.
    let mut telescope = TelescopeConfig::paper_scaled(gen.telescope_denominator);
    telescope.blocks = blocks;
    let dark = synscan::telescope::AddressSet::build(&telescope);
    let registry = synscan::netmodel::InternetRegistry::build(gen.seed, &telescope.blocks);
    let output = synscan::synthesis::generate::generate_year(
        &YearConfig::for_year(2022),
        &gen,
        &registry,
        &dark,
    );
    let mut session = synscan::telescope::CaptureSession::new(&dark, 2022);
    let mut collector = synscan::core::analysis::YearCollector::new(
        2022,
        synscan::CampaignConfig::scaled(dark.len() as u64),
    );
    for record in &output.records {
        if session.offer(record) {
            collector.offer(record);
        }
    }
    collector.finish()
}

fn main() {
    println!("running the same 2022 ecosystem against two telescopes ...\n");
    let a = run_at([0x6442, 0x67e0, 0x920c]); // the default blocks
    let b = run_at([0x2a31, 0x5b14, 0xaf03]); // a telescope elsewhere

    let sa = yearly::summarize(&a, 5);
    let sb = yearly::summarize(&b, 5);

    println!("{:<34} {:>14} {:>14}", "metric", "vantage A", "vantage B");
    println!(
        "{:<34} {:>14.0} {:>14.0}",
        "packets/day", sa.packets_per_day, sb.packets_per_day
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "campaigns", sa.total_scans, sb.total_scans
    );
    println!(
        "{:<34} {:>13.1}% {:>13.1}%",
        "single-port sources",
        portspread::single_port_fraction(&a) * 100.0,
        portspread::single_port_fraction(&b) * 100.0
    );
    println!(
        "{:<34} {:>13.1}% {:>13.1}%",
        "tracked-tool traffic",
        toolports::tracked_tool_traffic_share(&a) * 100.0,
        toolports::tracked_tool_traffic_share(&b) * 100.0
    );
    let top = |s: &yearly::YearSummary| -> String {
        s.top_ports_by_packets
            .iter()
            .take(3)
            .map(|(p, _)| p.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    println!(
        "{:<34} {:>14} {:>14}",
        "top-3 ports by packets",
        top(&sa),
        top(&sb)
    );

    // Global quantities must agree within sampling noise...
    let volume_ratio = sa.packets_per_day / sb.packets_per_day;
    assert!(
        (0.5..2.0).contains(&volume_ratio),
        "volumes comparable across vantages ({volume_ratio})"
    );
    let single_diff =
        (portspread::single_port_fraction(&a) - portspread::single_port_fraction(&b)).abs();
    assert!(single_diff < 0.15, "behavioural CDFs agree ({single_diff})");

    println!(
        "\nglobal quantities agree across vantage points; exact port ranks may not —\n\
         the single-vantage bias §7 of the paper flags for future work."
    );
}
