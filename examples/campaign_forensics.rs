//! Forensics of a sharded ZMap fleet — the §4.1/§6.4 collaboration story.
//!
//! A /24 of cooperating hosts (the paper observes exactly this: "a /24
//! subnet of (academic) scanners collaborating to scan the entire IPv4
//! space") splits one Internet-wide scan with ZMap's `--shards` mechanism.
//! Each host takes every n-th element of the cyclic-group permutation; the
//! shards are disjoint and jointly exhaustive. The telescope sees n small
//! campaigns whose coverage estimates cluster at 1/n of the IPv4 space —
//! the "mode" in the coverage distribution that unmasks fleets (§6.4).
//!
//! ```text
//! cargo run --release --example campaign_forensics
//! ```

use std::collections::HashSet;

use synscan::core::analysis::speedcov;
use synscan::core::analysis::YearCollector;
use synscan::core::CampaignConfig;
use synscan::scanners::traits::craft_record;
use synscan::scanners::zmap::ZmapScanner;
use synscan::telescope::{AddressSet, TelescopeConfig};
use synscan::wire::Ipv4Address;

const SHARDS: u32 = 16;

fn main() {
    let telescope = TelescopeConfig::paper_scaled(16);
    let dark = AddressSet::build(&telescope);

    // Shard verification on a small domain first: disjoint, exhaustive.
    let domain = 100_000u64;
    let mut seen: HashSet<u64> = HashSet::new();
    for shard in 0..SHARDS {
        for target in ZmapScanner::shard_targets(domain, 42, shard, SHARDS) {
            assert!(seen.insert(target), "shards must be disjoint");
        }
    }
    assert_eq!(seen.len() as u64, domain, "shards must cover everything");
    println!("shard check: {SHARDS} shards partition {domain} targets exactly\n");

    // The fleet: one /24 of academic scanners, each probing its shard of
    // the full IPv4 space on port 443 at 50 kpps (joint rate 800 kpps).
    //
    // For the telescope projection we exploit that a fleet's shards jointly
    // form the full cyclic permutation: walk the real ZMap order over a
    // /12-sized sample of the space and assign each element to its shard by
    // position — every telescope hit is crafted by the shard owner that
    // would have sent it.
    let fleet_base = Ipv4Address::new(141, 12, 7, 0);
    let scanners: Vec<ZmapScanner> = (0..SHARDS)
        .map(|s| ZmapScanner::new(900 + u64::from(s)))
        .collect();

    let mut records = Vec::new();
    let block0 = u32::from(dark.blocks()[1]) << 16;
    // Walk a /14 window containing the telescope block in true cyclic order.
    let window_bits = 18u32; // 2^18 addresses around the dark /16
    let window_base = block0 & !((1u32 << window_bits) - 1);
    for (i, offset) in synscan::scanners::CyclicIter::new(1 << window_bits, 77).enumerate() {
        let dst = Ipv4Address(window_base | offset as u32);
        if !dark.contains(dst) {
            continue;
        }
        let shard = (i as u32) % SHARDS;
        let src = Ipv4Address(fleet_base.0 | (shard + 1));
        // Joint fleet rate 800 kpps over the window.
        let ts = (i as f64 / 800_000.0 * 1e6) as u64;
        records.push(craft_record(
            &scanners[shard as usize],
            src,
            dst,
            443,
            i as u64,
            ts,
            14,
        ));
    }
    records.sort_by_key(|r| r.ts_micros);
    println!(
        "fleet scan: {} telescope hits from {} shard hosts",
        records.len(),
        SHARDS
    );

    // Detect the campaigns.
    let mut collector = YearCollector::new(2024, CampaignConfig::scaled(dark.len() as u64));
    for record in &records {
        collector.offer(record);
    }
    let analysis = collector.finish();
    println!("detected {} campaigns:", analysis.campaigns.len());
    for campaign in &analysis.campaigns {
        let est = campaign.estimates(&analysis.model());
        println!(
            "  {} | {:>4} packets | tool {:?} | est. coverage {:.2}%",
            campaign.src_ip,
            campaign.packets,
            campaign.tool(),
            est.ipv4_coverage * 100.0
        );
    }

    // All campaigns attribute to ZMap; every shard host appears.
    assert!(analysis
        .campaigns
        .iter()
        .all(|c| c.tool() == Some(synscan::ToolKind::Zmap)));
    let sources: HashSet<u32> = analysis.campaigns.iter().map(|c| c.src_ip.0).collect();
    assert_eq!(
        sources.len(),
        SHARDS as usize,
        "one campaign per fleet host"
    );
    assert!(
        sources.iter().all(|s| s >> 8 == fleet_base.0 >> 8),
        "same /24"
    );

    // The coverage-mode fingerprint of collaboration (§6.4): the per-host
    // coverages cluster tightly — a spike at 1/SHARDS of the scanned window.
    // Bucket width 0.5%: each shard saw only ~75 telescope hits, so the
    // per-host coverage estimate carries ~10% binomial noise.
    let modes = speedcov::coverage_modes(&analysis.campaigns, analysis.monitored, 0.005);
    let (peak_bucket, peak_count) = modes.iter().max_by_key(|(_, c)| **c).unwrap();
    println!(
        "\ncoverage mode: {} of {} campaigns fall into one 0.5%-wide bucket at {:.1}%",
        peak_count,
        analysis.campaigns.len(),
        *peak_bucket as f64 * 0.5
    );
    assert!(
        *peak_count as usize >= analysis.campaigns.len() * 3 / 4,
        "a fleet shows as a coverage mode"
    );
    println!("forensics OK: the /24 fleet is unmasked by its coverage mode");
}
