//! The decade in one run: a small-scale reproduction of Table 1 plus the
//! paper's headline findings, printed as a report.
//!
//! ```text
//! cargo run --release --example decade_report
//! ```

use synscan::core::analysis::{portspread, toolports, types};
use synscan::experiment::Experiment;
use synscan::netmodel::ScannerClass;
use synscan::GeneratorConfig;

fn main() {
    // Small scale: a 1/8 telescope with 1/640 of the campaign population —
    // a couple of seconds on a laptop.
    let gen = GeneratorConfig {
        telescope_denominator: 8,
        population_denominator: 640,
        days: 7.0,
        ..GeneratorConfig::default()
    };
    println!(
        "simulating 2015-2024: telescope 1/{}, population 1/{}, {} days per year ...\n",
        gen.telescope_denominator, gen.population_denominator, gen.days
    );
    let run = Experiment::new(gen).run_decade();

    let report = run.report();
    println!("{}", report.render_table1());

    println!("--- headline findings ---");
    println!(
        "scanning grew {:.0}x in packets/day (paper: ~30x) and {:.0}x in scans/month (paper: ~39x)",
        report.packets_per_day_growth().unwrap(),
        report.scans_per_month_growth().unwrap()
    );

    // Tool eras.
    let share = |year: u16, tool: &str| -> f64 {
        report
            .years
            .iter()
            .find(|y| y.year == year)
            .and_then(|y| y.tool_scan_shares.get(tool))
            .copied()
            .unwrap_or(0.0)
    };
    println!(
        "NMap led the tracked tools in 2015 ({:.0}% of scans); Mirai exploded in 2017 ({:.0}%); \
         Masscan carried the high-speed era ({:.0}% of 2020 scans); ZMap fleets surged in 2024 ({:.0}%)",
        share(2015, "nmap") * 100.0,
        share(2017, "mirai") * 100.0,
        share(2020, "masscan") * 100.0,
        share(2024, "zmap") * 100.0
    );

    // Single-port focus erodes (Figure 3).
    let single15 = portspread::single_port_fraction(&run.years[0].analysis);
    let single24 = portspread::single_port_fraction(&run.years[9].analysis);
    println!(
        "single-port scanners: {:.0}% of sources in 2015 -> {:.0}% in 2024 (paper: 83% -> ~65%)",
        single15 * 100.0,
        single24 * 100.0
    );

    // Tracked-tool traffic share peaks then collapses (§6.1).
    let tracked20 = toolports::tracked_tool_traffic_share(&run.years[5].analysis);
    let tracked24 = toolports::tracked_tool_traffic_share(&run.years[9].analysis);
    println!(
        "tracked tools carried {:.0}% of 2020 traffic but only {:.0}% of 2024 traffic \
         (paper: 92% -> <40%)",
        tracked20 * 100.0,
        tracked24 * 100.0
    );

    // Institutional scanners: tiny source share, huge packet share (Table 2).
    let shares = types::class_shares(&run.years[9].analysis, &run.registry);
    let inst = shares[&ScannerClass::Institutional];
    println!(
        "institutional scanners in 2024: {:.2}% of sources sent {:.0}% of packets \
         (paper decade-wide: 0.16% / 32.6%)",
        inst.sources * 100.0,
        inst.packets * 100.0
    );

    assert!(report.packets_per_day_growth().unwrap() > 8.0);
    assert!(share(2017, "mirai") > share(2015, "mirai"));
    assert!(tracked20 > tracked24, "fingerprint coverage must collapse");
    println!("\ndecade report OK");
}
