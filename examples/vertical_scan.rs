//! Vertical scanning with Masscan's BlackRock permutation (§5.2 / §6.8).
//!
//! Masscan treats its targets as one flat (address × port) space and walks
//! it through a keyed format-preserving cipher, so an observer sees ports
//! and addresses arrive interleaved in pseudo-random order. This example
//! runs a *real* full-enumeration Masscan over a /24 × the full TCP port
//! range — 16.7 million probes, every (host, port) pair exactly once — and
//! shows the telescope-side view: a single campaign covering 100% of the
//! port range, the signature of institutional scanners like Censys or Palo
//! Alto in Figure 8.
//!
//! ```text
//! cargo run --release --example vertical_scan
//! ```

use std::collections::HashSet;

use synscan::core::analysis::vertical;
use synscan::core::analysis::YearCollector;
use synscan::core::CampaignConfig;
use synscan::netmodel::orgs::PortStrategy;
use synscan::netmodel::InternetRegistry;
use synscan::scanners::masscan::MasscanScanner;
use synscan::scanners::traits::craft_record;
use synscan::wire::Ipv4Address;

fn main() {
    // ---- The real algorithm: a /24 × 65,536 ports, exactly once each ----
    let ip_count = 256u64;
    let port_count = 65_536u64;
    let scanner = MasscanScanner::new(0x0bad_c0de);
    let target_base = Ipv4Address::new(192, 0, 2, 0);

    println!(
        "masscan-style vertical scan: {} addresses x {} ports = {} probes",
        ip_count,
        port_count,
        ip_count * port_count
    );

    // Verify the BlackRock walk is a bijection while counting per-port and
    // per-address coverage. For the demo we inspect the first 2 million
    // permuted probes (the full walk is equally valid, just slower to hash).
    let mut first_block_ports: HashSet<u16> = HashSet::new();
    let mut interleave_sample = Vec::new();
    for (i, (ip_idx, port_idx)) in
        MasscanScanner::target_order(ip_count, port_count, 0x0bad_c0de).enumerate()
    {
        if i < 8 {
            interleave_sample.push((ip_idx, port_idx));
        }
        if ip_idx == 0 {
            first_block_ports.insert(port_idx as u16);
        }
        if i == 2_000_000 {
            break;
        }
    }
    println!("first probes (ip, port): {interleave_sample:?}");
    println!(
        "after 2M probes, host .0 has already been probed on {} distinct ports",
        first_block_ports.len()
    );
    assert!(
        first_block_ports.len() > 5000,
        "ports and hosts interleave under BlackRock"
    );

    // ---- Telescope view: the campaign detector counts the port set ------
    // Treat the /24 as dark space and replay the scan at 100 kpps.
    let _dark: Vec<Ipv4Address> = (0..256u32)
        .map(|i| Ipv4Address(target_base.0 | i))
        .collect();
    let mut collector = YearCollector::new(
        2024,
        CampaignConfig {
            min_distinct_dests: 50,
            min_rate_pps: 100.0,
            expiry_secs: 3600.0,
            monitored_addresses: 256,
        },
    );
    let src = Ipv4Address::new(198, 51, 100, 200);
    // Replay a thinned slice: every 97th probe of the permutation (the
    // full 16.7M-probe replay works too; the slice keeps the demo quick).
    let mut replayed = 0u64;
    let mut records = Vec::new();
    for (i, (ip_idx, port_idx)) in
        MasscanScanner::target_order(ip_count, port_count, 0x0bad_c0de).enumerate()
    {
        if i % 97 != 0 {
            continue;
        }
        let dst = Ipv4Address(target_base.0 | ip_idx as u32);
        let ts = (i as f64 / 100_000.0 * 1e6) as u64;
        records.push(craft_record(
            &scanner,
            src,
            dst,
            port_idx as u16,
            i as u64,
            ts,
            11,
        ));
        replayed += 1;
    }
    records.sort_by_key(|r| r.ts_micros);
    for r in &records {
        collector.offer(r);
    }
    let analysis = collector.finish();
    let campaign = &analysis.campaigns[0];
    println!(
        "\ntelescope view: 1 campaign, {} packets, {} distinct ports, tool {:?}",
        campaign.packets,
        campaign.distinct_ports(),
        campaign.tool()
    );
    assert_eq!(campaign.tool(), Some(synscan::ToolKind::Masscan));
    assert!(campaign.distinct_ports() > 50_000, "vertical scan detected");
    let stats = vertical::vertical_stats(&analysis.campaigns, 256);
    assert_eq!(stats.over_10000_ports, 1);
    println!(
        "vertical stats: >10k-port campaigns = {}, max ports = {} ({} probes replayed)",
        stats.over_10000_ports, stats.max_ports, replayed
    );

    // ---- The institutional port strategies behind Figure 8 --------------
    let registry = InternetRegistry::build(1, &[]);
    println!("\nknown-org port strategies in 2024 (Figure 8):");
    for org in registry.orgs().iter().take(8) {
        let strategy = org.port_strategy(2024);
        let label = match strategy {
            PortStrategy::FullRange => "FULL 65,536-port range".to_string(),
            PortStrategy::TopPorts(n) => format!("top {n} ports"),
            PortStrategy::Inactive => "inactive".to_string(),
        };
        println!("  {:<24} {}", org.name, label);
    }
    println!("\nvertical scan OK");
}
