//! A "live" telescope session: streaming capture, filtering, and on-the-fly
//! fingerprinting of mixed traffic.
//!
//! Simultaneously active against the telescope: a Mirai bot (random targets,
//! Telnet with the 2323 dice-roll, `seq = dstIP`), an NMap session (reused
//! keystream), a Unicornscan rarity, a custom tool nobody can fingerprint,
//! and a DDoS victim's SYN/ACK backscatter. The capture session separates
//! scans from backscatter with the §3.2 SYN filter and applies the 23/445
//! ingress block; the fingerprint engine attributes each admitted probe as
//! it arrives.
//!
//! ```text
//! cargo run --release --example telescope_live
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

use synscan::core::FingerprintEngine;
use synscan::scanners::custom::CustomScanner;
use synscan::scanners::mirai::MiraiScanner;
use synscan::scanners::nmap::NmapScanner;
use synscan::scanners::traits::craft_record;
use synscan::scanners::unicorn::UnicornScanner;
use synscan::telescope::{AddressSet, BackscatterGenerator, CaptureSession, TelescopeConfig};
use synscan::wire::{Ipv4Address, ProbeRecord};
use synscan::ToolKind;

fn main() {
    let telescope = TelescopeConfig::paper_scaled(32);
    let dark = AddressSet::build(&telescope);
    let mut rng = StdRng::seed_from_u64(99);

    // ---- Generate one hour of mixed arrivals ----------------------------
    let mut arrivals: Vec<ProbeRecord> = Vec::new();

    // A Mirai bot probing random dark addresses (Telnet 23/2323).
    let mirai = MiraiScanner::new(1);
    let bot_ip = Ipv4Address::new(77, 88, 99, 3);
    for i in 0..400u64 {
        let dst = dark.addresses()[(i as usize * 131) % dark.len()];
        let port = mirai.pick_port(i);
        arrivals.push(craft_record(&mirai, bot_ip, dst, port, i, i * 9_000_000, 7));
    }

    // An NMap operator sweeping SSH.
    let nmap = NmapScanner::new(2);
    let nmap_ip = Ipv4Address::new(203, 0, 113, 10);
    for i in 0..300u64 {
        let dst = dark.addresses()[(i as usize * 277) % dark.len()];
        arrivals.push(craft_record(
            &nmap,
            nmap_ip,
            dst,
            22,
            i,
            500 + i * 12_000_000,
            9,
        ));
    }

    // The Unicornscan rarity (the paper saw exactly 2 IPs ever use it).
    let unicorn = UnicornScanner::new(3);
    let unicorn_ip = Ipv4Address::new(198, 51, 100, 44);
    for i in 0..150u64 {
        let dst = dark.addresses()[(i as usize * 419) % dark.len()];
        arrivals.push(craft_record(
            &unicorn,
            unicorn_ip,
            dst,
            80,
            i,
            900 + i * 24_000_000,
            6,
        ));
    }

    // A custom tool with no invariant.
    let custom = CustomScanner::new(4);
    let custom_ip = Ipv4Address::new(100, 22, 33, 44);
    for i in 0..300u64 {
        let dst = dark.addresses()[(i as usize * 613) % dark.len()];
        arrivals.push(craft_record(
            &custom,
            custom_ip,
            dst,
            8080,
            i,
            1_300 + i * 12_000_000,
            15,
        ));
    }

    // Backscatter from a victim whose attacker spoofed our dark space.
    let backscatter = BackscatterGenerator {
        victim: Ipv4Address::new(192, 0, 2, 80),
        service_port: 80,
        rate_pps: 0.1,
        syn_ack_fraction: 0.75,
    };
    arrivals.extend(backscatter.generate(&mut rng, &dark, 0, 3600.0));

    arrivals.sort_by_key(|r| r.ts_micros);
    println!(
        "{} frames arrive at the telescope over one hour\n",
        arrivals.len()
    );

    // ---- Stream them through capture + fingerprinting -------------------
    let mut session = CaptureSession::new(&dark, 2020); // 23/445 blocked
    let mut engine = FingerprintEngine::new();
    let mut verdicts: BTreeMap<Ipv4Address, BTreeMap<String, u64>> = BTreeMap::new();
    for record in &arrivals {
        if !session.offer(record) {
            continue;
        }
        let verdict = engine.classify(record);
        let label = verdict
            .tool()
            .map(|t| t.name().to_string())
            .unwrap_or_else(|| "unattributed".to_string());
        *verdicts
            .entry(record.src_ip)
            .or_default()
            .entry(label)
            .or_default() += 1;
    }

    let stats = session.stats();
    println!("capture filter results (§3.2):");
    println!("  offered          {}", stats.offered);
    println!(
        "  ingress-blocked  {} (port 23 after the Mirai advent)",
        stats.ingress_blocked
    );
    println!(
        "  backscatter      {} (SYN/ACK + RST, not scans)",
        stats.backscatter
    );
    println!("  admitted scans   {}\n", stats.admitted);

    println!("per-source attribution (§3.3):");
    for (src, counts) in &verdicts {
        let summary: Vec<String> = counts.iter().map(|(t, c)| format!("{t}:{c}")).collect();
        println!("  {src:<16} {}", summary.join(" "));
    }

    // Sanity: each actor got the right label.
    let majority = |src: Ipv4Address| -> String {
        verdicts[&src]
            .iter()
            .max_by_key(|(_, c)| **c)
            .map(|(t, _)| t.clone())
            .unwrap()
    };
    assert_eq!(majority(bot_ip), ToolKind::Mirai.name());
    assert_eq!(majority(nmap_ip), ToolKind::Nmap.name());
    assert_eq!(majority(unicorn_ip), ToolKind::Unicorn.name());
    assert_eq!(majority(custom_ip), "unattributed");
    assert!(stats.ingress_blocked > 0, "port-23 probes were dropped");
    assert!(stats.backscatter > 0, "backscatter was separated");
    println!("\ntelescope live OK");
}
